//! Online serving demo: concurrent clients resolving a workload over the
//! HTTP front end, with request coalescing, answer caching and a budget.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Four clients POST individual `/match` questions (the workload contains
//! repeated and mirrored pairs, as real traffic does); the service
//! coalesces whatever is in flight into diversity batches, answers
//! repeats from the cache, and keeps total spend under the configured
//! budget. The closing report is read back from `GET /stats`, and the
//! telemetry endpoints are scraped on the way out: `GET /metrics`
//! (Prometheus text, lint-checked) and `GET /trace` (lifecycle spans).
//! Set `SERVING_METRICS_OUT` / `SERVING_TRACE_OUT` to write the scrapes
//! to files (CI uploads them as artifacts). `ER_SHARDS=4` (any power of
//! two) runs the same demo over a fingerprint-sharded serving core —
//! the report gains per-shard queue/lock metrics, nothing else changes.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::Money;
use batcher::er_service::{ErService, MatchServer, ServiceConfig, ServiceStats};
use batcher::llm::SimLlm;
use batcher::llm_service::http::read_response;
use batcher::llm_service::ServeOptions;

const CLIENTS: usize = 4;
const QUESTIONS_PER_CLIENT: usize = 30;
const BUDGET: Money = Money::from_micros(200_000); // $0.20

fn main() {
    // Bootstrap: a labeled slice of the Beer benchmark provides both the
    // demonstration pool and the fallback matcher's training data.
    let dataset = generate(DatasetKind::Beer, 42);
    let bootstrap = dataset.pairs()[..150].to_vec();

    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap,
        ServiceConfig {
            budget: BUDGET,
            batch_size: 8,
            flush_deadline: Duration::from_millis(10),
            workers: 2,
            shards: std::env::var("ER_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
            domain: "Beer".to_owned(),
            ..ServiceConfig::default()
        },
    ));
    let server =
        MatchServer::start(Arc::clone(&service), ServeOptions::default()).expect("front end binds");
    let addr = server.addr();
    println!("er-service listening on http://{addr}");

    // Each client walks a window of test pairs; the windows overlap, so
    // different clients (and revisits within one client) repeat
    // questions — the cache's bread and butter.
    let questions: Vec<String> = dataset.pairs()[150..]
        .iter()
        .map(|p| {
            let schema: Vec<String> = p.pair.a().schema().attributes().to_vec();
            let json = |values: &[String]| {
                values
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                r#"{{"schema":[{}],"left":[{}],"right":[{}]}}"#,
                schema
                    .iter()
                    .map(|s| format!("{s:?}"))
                    .collect::<Vec<_>>()
                    .join(","),
                json(p.pair.a().values()),
                json(p.pair.b().values()),
            )
        })
        .collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let questions = &questions;
            scope.spawn(move || {
                // Overlapping stride-1 windows: client c asks questions
                // c*10 .. c*10 + QUESTIONS_PER_CLIENT.
                for i in 0..QUESTIONS_PER_CLIENT {
                    let body = &questions[(client * 10 + i) % questions.len()];
                    let (status, answer) = post(addr, "/match", body);
                    assert_eq!(status, 200, "match failed: {answer}");
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let (status, stats_json) = get(addr, "/stats");
    assert_eq!(status, 200);
    let stats: ServiceStats = serde_json::from_slice(stats_json.as_bytes()).expect("stats parse");

    println!("\n== workload ==");
    println!(
        "{CLIENTS} clients x {QUESTIONS_PER_CLIENT} questions in {:.2?} \
         ({:.0} questions/s)",
        elapsed,
        (CLIENTS * QUESTIONS_PER_CLIENT) as f64 / elapsed.as_secs_f64()
    );

    println!("\n== /stats ==\n{stats_json}");

    println!("\n== summary ==");
    println!("submitted            {}", stats.submitted);
    println!(
        "cache                {} hits / {} misses (hit rate {:.1}%)",
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hit_rate()
    );
    println!("coalesced duplicates {}", stats.coalesced_duplicates);
    println!(
        "llm / fallback       {} / {}",
        stats.llm_answered, stats.fallback_answered
    );
    println!(
        "batches flushed      {} ({} API calls)",
        stats.batches_flushed, stats.api_calls
    );
    println!("demos labeled        {}", stats.demos_labeled);
    println!(
        "spend                {} of {} budget ({} remaining)",
        stats.spend(),
        stats.budget(),
        Money::from_micros(stats.remaining_micros)
    );

    println!(
        "answer latency       p50 {} us / p99 {} us (histogram-backed)",
        stats.answer_p50_us, stats.answer_p99_us
    );

    // Scrape the telemetry endpoints the way Prometheus would.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let report = batcher::obs::lint(&metrics)
        .unwrap_or_else(|issues| panic!("/metrics fails promlint: {issues:?}"));
    println!(
        "\n== /metrics == {} families ({} histograms), {} samples, lint clean",
        report.families, report.histograms, report.samples
    );
    for line in metrics.lines().filter(|l| l.starts_with("# TYPE")) {
        println!("{line}");
    }

    let (status, trace) = get(addr, "/trace?n=4");
    assert_eq!(status, 200);
    println!("\n== /trace?n=4 (newest spans) ==\n{trace}");

    if let Ok(path) = std::env::var("SERVING_METRICS_OUT") {
        std::fs::write(&path, &metrics).expect("write metrics scrape");
        println!("metrics scrape -> {path}");
    }
    if let Ok(path) = std::env::var("SERVING_TRACE_OUT") {
        std::fs::write(&path, &trace).expect("write trace scrape");
        println!("trace scrape -> {path}");
    }

    assert!(
        stats.cache_hit_rate() > 0.0,
        "workload produced no cache hits"
    );
    assert!(stats.within_budget(), "spend exceeded the budget");
    assert!(report.histograms >= 6, "fewer than 6 histogram families");
    println!("\ncache hit rate > 0, spend <= budget, /metrics lint clean: OK");
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let (status, bytes) = read_response(&mut stream).expect("response");
    (status, String::from_utf8_lossy(&bytes).into_owned())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\n\r\n").expect("send");
    let (status, bytes) = read_response(&mut stream).expect("response");
    (status, String::from_utf8_lossy(&bytes).into_owned())
}
