//! Budgeting an ER workload before spending anything.
//!
//! ```text
//! cargo run --release --example cost_planner
//! ```
//!
//! Reproduces the paper's §I motivation scene: quote the cost of matching
//! a workload under standard prompting, batch prompting, and batch
//! prompting with GPT-4 — without a single API call — then run the
//! cheapest plan and compare the quote to the bill.

use batcher::core::{run, CostEstimate, RunConfig};
use batcher::datagen::{generate, DatasetKind};
use batcher::llm::{ModelKind, SimLlm};

fn main() {
    let dataset = generate(DatasetKind::DblpScholar, 42);
    println!(
        "workload: {} — {} candidate pairs ({} to resolve in the test split)\n",
        dataset.name(),
        dataset.stats().pairs,
        dataset.stats().pairs / 5
    );

    let plans = [
        (
            "standard prompting, GPT-3.5",
            RunConfig::standard_prompting(),
        ),
        ("batch prompting,    GPT-3.5", RunConfig::best_design()),
        (
            "batch prompting,    GPT-4  ",
            RunConfig { model: ModelKind::Gpt4, ..RunConfig::best_design() },
        ),
    ];

    println!(
        "{:<30} {:>8} {:>12} {:>22}",
        "plan", "calls", "API quote", "labeling quote"
    );
    for (name, config) in &plans {
        let quote = CostEstimate::quote(&dataset, config);
        println!(
            "{:<30} {:>8} {:>12} {:>10} – {:<10}",
            name,
            quote.calls,
            format!("{:.2}", quote.api.dollars()),
            format!("{:.2}", quote.labeling.0.dollars()),
            format!("{:.2}", quote.labeling.1.dollars()),
        );
    }

    // Execute the recommended plan and audit the quote.
    let config = RunConfig::best_design();
    let quote = CostEstimate::quote(&dataset, &config);
    let result = run(&dataset, &SimLlm::new(), config);
    println!(
        "\nexecuted best plan: F1 {:.2}, API billed {} (quoted {}), labeling {}",
        result.f1(),
        result.ledger.api,
        quote.api,
        result.ledger.labeling
    );
}
