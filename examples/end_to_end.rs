//! End-to-end ER: raw tables → blocker → BatchER matcher.
//!
//! ```text
//! cargo run --release --example end_to_end
//! ```
//!
//! The paper assumes a blocking stage upstream of the matcher (§II-A).
//! This example builds the whole pipeline: two raw product tables are
//! blocked with the token-overlap blocker, the surviving candidate pairs
//! become the question set, and BatchER answers them through the simulated
//! LLM.

use std::sync::Arc;

use batcher::blocking::{BlockerConfig, TokenBlocker};
use batcher::core::batching::make_batches;
use batcher::core::{
    build_batch_prompt, task_description, BatchingStrategy, ClusteringKind, DistanceKind,
    ExtractorKind, FeatureSpace,
};
use batcher::datagen::make_entity;
use batcher::datagen::DatasetKind;
use batcher::er_core::{EntityPair, Record, RecordId, Schema};
use batcher::llm::{parse_answers, ChatApi, ChatRequest, ModelKind, SimLlm};

fn main() {
    // 1. Two raw tables of electronics listings (the generator's entity
    //    factory stands in for scraped catalog data).
    let schema = Arc::new(Schema::new(["title", "category", "brand", "modelno", "price"]).unwrap());
    let table_a: Vec<Arc<Record>> = (0..40u32)
        .map(|i| {
            let vals = make_entity(DatasetKind::WalmartAmazon, i, 0);
            Arc::new(Record::new(RecordId::a(i), Arc::clone(&schema), vals).unwrap())
        })
        .collect();
    // Table B: every second record is the same entity as in A (a variant-0
    // re-listing), the rest are siblings (different model of same family).
    let table_b: Vec<Arc<Record>> = (0..40u32)
        .map(|i| {
            let variant = if i % 2 == 0 { 0 } else { 1 };
            let vals = make_entity(DatasetKind::WalmartAmazon, i, variant);
            Arc::new(Record::new(RecordId::b(i), Arc::clone(&schema), vals).unwrap())
        })
        .collect();

    // 2. Blocking: prune the 1600-pair cross product to candidates.
    let blocker = TokenBlocker::new(BlockerConfig {
        attributes: vec![0],
        min_shared_tokens: 2,
        min_cosine: None,
        stopword_df: 0.5,
    });
    let refs_a: Vec<Record> = table_a.iter().map(|r| (**r).clone()).collect();
    let refs_b: Vec<Record> = table_b.iter().map(|r| (**r).clone()).collect();
    let candidates = blocker.candidates(&refs_a, &refs_b);
    println!(
        "blocking: {} candidates out of {} possible pairs",
        candidates.len(),
        table_a.len() * table_b.len()
    );

    // 3. Candidates become the question set.
    let questions: Vec<EntityPair> = TokenBlocker::materialize(&table_a, &table_b, &candidates);

    // 4. Batch the questions (diversity batching over LR features) and ask
    //    the LLM, with two hand-labeled demonstrations.
    let space = FeatureSpace::extract(
        questions.iter(),
        ExtractorKind::LevenshteinRatio,
        DistanceKind::Euclidean,
    );
    let batches = make_batches(
        &space,
        BatchingStrategy::Diversity,
        ClusteringKind::Dbscan,
        8,
        7,
    );

    let api = SimLlm::new();
    let desc = task_description("Electronics");
    let mut matched = 0usize;
    let mut asked = 0usize;
    for (bi, batch) in batches.iter().enumerate() {
        let serialized: Vec<String> = batch.iter().map(|&q| questions[q].serialize()).collect();
        let prompt = build_batch_prompt(&desc, &[], &serialized);
        let resp = api
            .complete(&ChatRequest::new(
                ModelKind::Gpt35Turbo0301,
                prompt,
                bi as u64,
            ))
            .expect("simulated endpoint");
        let answers = parse_answers(&resp.content, serialized.len()).expect("parseable");
        for (&qi, answer) in batch.iter().zip(&answers) {
            asked += 1;
            if answer.is_match() {
                matched += 1;
                if matched <= 5 {
                    let p = &questions[qi];
                    println!(
                        "match: [{}] ~ [{}]",
                        p.a().value(0).unwrap_or(""),
                        p.b().value(0).unwrap_or("")
                    );
                }
            }
        }
    }
    println!("matcher: {matched} of {asked} candidates resolved as the same entity");
}
