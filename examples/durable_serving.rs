//! Durable serving demo: restart without re-buying answers.
//!
//! ```sh
//! cargo run --release --example durable_serving            # in-process demo
//! WAL_DIR=/tmp/er-wal cargo run --release --example durable_serving prime
//! WAL_DIR=/tmp/er-wal cargo run --release --example durable_serving verify
//! ```
//!
//! Three modes:
//!
//! * `demo` (default) — prime a WAL-backed service, drop it, start a
//!   fresh one on the same directory and replay the same workload,
//!   asserting the restart answers everything from the recovered cache.
//! * `prime` — buy answers into `$WAL_DIR`, write a `primed` marker, then
//!   idle so a supervisor (CI) can `kill -9` the process mid-life: the
//!   crash-recovery smoke test's first half.
//! * `verify` — reopen `$WAL_DIR` after the kill, assert recovery
//!   replayed the bought answers and that the workload re-buys nothing,
//!   and write a recovery report JSON (to `$RECOVERY_OUT`, default
//!   `$WAL_DIR/recovery.json`): the smoke test's second half.
//!
//! `$ER_SHARDS` selects the serving shard count (a power of two,
//! defaulting to 1) and may differ between `prime` and `verify` — the
//! WAL is shard-agnostic, so recovery repartitions the answers across
//! whatever layout the restarted service runs.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::{EntityPair, LabeledPair};
use batcher::er_service::{ErService, ServiceConfig, SyncPolicy, WalConfig};
use batcher::llm::SimLlm;

fn bootstrap() -> Vec<LabeledPair> {
    generate(DatasetKind::Beer, 42).pairs()[..150].to_vec()
}

/// The question bank: deterministic across processes (same generator,
/// same seed), which is what lets `verify` replay `prime`'s workload.
fn bank() -> Vec<EntityPair> {
    generate(DatasetKind::Beer, 42).pairs()[150..200]
        .iter()
        .map(|p| p.pair.clone())
        .collect()
}

/// Serving shards from `$ER_SHARDS` (default 1, must be a power of
/// two). The CI crash-recovery smoke primes under one shard count and
/// verifies under another: recovery must repartition cleanly.
fn shards() -> usize {
    std::env::var("ER_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn start(dir: &std::path::Path) -> ErService {
    ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            batch_size: 8,
            flush_deadline: Duration::from_millis(5),
            workers: 2,
            shards: shards(),
            domain: "Beer".to_owned(),
            // `Always`: every record is fsynced before a client sees its
            // answer, so even a power cut loses nothing settled.
            wal: Some(WalConfig { sync: SyncPolicy::Always, ..WalConfig::at(dir) }),
            // Anomalies (recovery violations, WAL degradation) dump
            // flight-recorder bundles here for the supervisor to collect.
            flight_dir: std::env::var("FLIGHT_DIR").map(PathBuf::from).ok(),
            ..ServiceConfig::default()
        },
    )
}

fn wal_dir() -> PathBuf {
    std::env::var("WAL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("er-durable-serving"))
}

fn prime(dir: &std::path::Path) {
    let service = start(dir);
    for q in &bank() {
        service.submit(q);
    }
    let stats = service.stats();
    println!("primed: {}", serde_json::to_string(&stats).unwrap());
    assert!(stats.llm_answered > 0, "priming bought nothing: {stats:?}");
    assert_eq!(stats.wal_append_errors, 0, "{stats:?}");
    // Signal the supervisor that every answer is settled and journaled —
    // from here on a SIGKILL must lose nothing.
    std::fs::write(dir.join("primed"), b"ok").expect("write marker");
    println!("marker written; idling for the supervisor's kill -9 ...");
    std::thread::sleep(Duration::from_secs(600));
}

fn verify(dir: &std::path::Path) {
    let service = start(dir);
    let health = service.health();
    println!("recovered: {}", serde_json::to_string(&health).unwrap());
    assert!(
        health.recovery_answers_restored > 0,
        "nothing replayed: {health:?}"
    );
    let questions = bank();
    for q in &questions {
        service.submit(q);
    }
    let stats = service.stats();
    println!("verified: {}", serde_json::to_string(&stats).unwrap());
    assert_eq!(
        stats.llm_answered, 0,
        "restart re-bought answers: {stats:?}"
    );
    assert!(
        stats.cache_hits >= questions.len() as u64,
        "workload not served from the recovered cache: {stats:?}"
    );
    assert_eq!(
        stats.remaining_micros + stats.spent_micros,
        stats.budget_micros,
        "replayed ledger broke conservation: {stats:?}"
    );

    let out = std::env::var("RECOVERY_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| dir.join("recovery.json"));
    let report = format!(
        "{{\"health\":{},\"stats\":{}}}\n",
        serde_json::to_string(&health).unwrap(),
        serde_json::to_string(&stats).unwrap()
    );
    std::fs::write(&out, report).expect("write recovery report");
    println!("recovery report -> {}", out.display());

    // Dump a post-recovery flight bundle: the same artifact an anomaly
    // trigger would produce, captured while the recovered state is
    // fresh. Any recovery conservation violation already wrote its own
    // `bundle-*-recovery_violation.json` next to this one.
    if service.flight().dir().is_some() {
        let bundle = service.debug_bundle_json("post_recovery");
        match service.flight().write_bundle("post_recovery", &bundle) {
            Some(path) => println!("flight bundle -> {}", path.display()),
            None => eprintln!("flight bundle write failed"),
        }
    }
    println!("restart re-bought zero answers: OK");
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "demo".into());
    let dir = wal_dir();
    match mode.as_str() {
        "prime" => prime(&dir),
        "verify" => verify(&dir),
        "demo" => {
            let _ = std::fs::remove_dir_all(&dir);
            // Run 1: buy the answers.
            let service = start(&dir);
            let questions = bank();
            for q in &questions {
                service.submit(q);
            }
            let run1 = service.stats();
            println!(
                "run 1: bought {} answers, spent {}",
                run1.llm_answered,
                run1.spend()
            );
            assert!(run1.llm_answered > 0);
            drop(service); // "crash": the WAL is all that survives

            // Run 2: same directory, same workload — all cache hits.
            let service = start(&dir);
            let health = service.health();
            println!(
                "run 2: replayed {} records, restored {} answers",
                health.recovery_records_replayed, health.recovery_answers_restored
            );
            for q in &questions {
                service.submit(q);
            }
            let run2 = service.stats();
            assert_eq!(run2.llm_answered, 0, "restart re-bought: {run2:?}");
            assert!(run2.cache_hits >= questions.len() as u64);
            assert_eq!(run2.spent_micros, run1.spent_micros);
            println!(
                "run 2: {} cache hits, 0 bought, spend unchanged at {}",
                run2.cache_hits,
                run2.spend()
            );
            drop(service);
            let _ = std::fs::remove_dir_all(&dir);
            println!("restart re-bought zero answers: OK");
        }
        other => {
            eprintln!("unknown mode {other:?}; use demo | prime | verify");
            std::process::exit(2);
        }
    }
}
