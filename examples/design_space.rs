//! Design-space exploration on one dataset (a miniature Table IV).
//!
//! ```text
//! cargo run --release --example design_space
//! ```
//!
//! Runs all 12 combinations of question batching × demonstration selection
//! on Fodors-Zagats and prints F1 with both cost components, illustrating
//! the accuracy/cost trade-off the paper maps out in Exp-2.

use batcher::core::{run_design_space_cell, BatchingStrategy, SelectionStrategy};
use batcher::datagen::{generate, DatasetKind};
use batcher::llm::SimLlm;

fn main() {
    let dataset = generate(DatasetKind::FodorsZagats, 42);
    let api = SimLlm::new();

    println!(
        "{:<12} {:<14} {:>8} {:>9} {:>9} {:>8}",
        "batching", "selection", "F1", "API $", "label $", "demos"
    );
    for batching in BatchingStrategy::ALL {
        for selection in SelectionStrategy::ALL {
            let r = run_design_space_cell(&dataset, &api, batching, selection, 7);
            println!(
                "{:<12} {:<14} {:>8.2} {:>9.4} {:>9.4} {:>8}",
                batching.name(),
                selection.name(),
                r.f1(),
                r.ledger.api.dollars(),
                r.ledger.labeling.dollars(),
                r.demos_labeled
            );
        }
    }
    println!(
        "\nFinding 2 of the paper: Diversity + Cover gives the best\n\
         accuracy-per-dollar — highest F1 band at the lowest total cost."
    );
}
