//! Quickstart: resolve a benchmark with the paper's best design choice.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the Beer benchmark, runs BatchER with diversity-based
//! question batching + covering-based demonstration selection against the
//! simulated GPT-3.5 endpoint, and prints accuracy and costs.

use batcher::core::{run, RunConfig};
use batcher::datagen::{generate, DatasetKind};
use batcher::llm::SimLlm;

fn main() {
    // 1. A labeled ER benchmark (450 candidate pairs, 68 matches).
    let dataset = generate(DatasetKind::Beer, 42);
    println!(
        "dataset {}: {} pairs, {} matches",
        dataset.name(),
        dataset.stats().pairs,
        dataset.stats().matches
    );

    // 2. An LLM endpoint. `SimLlm` is the in-process simulator; anything
    //    implementing `llm::ChatApi` (e.g. the HTTP client from
    //    `llm-service`, or a production OpenAI client) works identically.
    let api = SimLlm::new();

    // 3. The paper's best design choice (Finding 2): diversity batching +
    //    covering selection + structure-aware Levenshtein-ratio features.
    let result = run(&dataset, &api, RunConfig::best_design());

    let scores = result.confusion.scores();
    println!("F1        = {:.2}%", scores.f1);
    println!("precision = {:.2}%", scores.precision);
    println!("recall    = {:.2}%", scores.recall);
    println!("batches   = {}", result.batches);
    println!(
        "demos labeled = {} (cost {})",
        result.demos_labeled, result.ledger.labeling
    );
    println!("API cost  = {}", result.ledger.api);
    println!("total     = {}", result.ledger.total());
}
