//! Running BatchER against the LLM service over HTTP.
//!
//! ```text
//! cargo run --release --example http_service
//! ```
//!
//! Boots the loopback chat-completions service (the deployment seam a real
//! OpenAI endpoint would occupy), then runs the full BatchER pipeline
//! through the HTTP client. The result is bit-identical to the in-process
//! simulator — the framework only sees the `ChatApi` trait.

use batcher::core::{run, RunConfig};
use batcher::datagen::{generate, DatasetKind};
use batcher::llm::SimLlm;
use batcher::llm_service::LlmServer;

fn main() {
    let dataset = generate(DatasetKind::ItunesAmazon, 42);

    // In-process reference run.
    let local = run(&dataset, &SimLlm::new(), RunConfig::best_design());

    // Same run over HTTP.
    let server = LlmServer::new().start().expect("bind loopback");
    println!("llm-service listening on http://{}", server.addr());
    let client = server.client();
    let remote = run(&dataset, &client, RunConfig::best_design());

    println!(
        "in-process: F1 {:.2}, API cost {}",
        local.f1(),
        local.ledger.api
    );
    println!(
        "over HTTP : F1 {:.2}, API cost {}",
        remote.f1(),
        remote.ledger.api
    );
    assert_eq!(
        local.confusion, remote.confusion,
        "transport must not change results"
    );
    println!("results identical across transports — ChatApi seam verified");
}
