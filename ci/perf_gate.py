#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh quick-mode bench snapshot
against the committed full-mode baseline.

Usage: perf_gate.py <bench> <committed_baseline.json> <current.json>

Quick-mode workloads are smaller than the committed full-mode runs, so
absolute wall-times are not comparable across the two; the gate checks
the *shape* of the result instead — overhead percentages, speedup
ratios, and exact-equivalence counters — with envelopes wide enough for
shared-runner noise but narrow enough to catch a real regression (a
lost kernel path, an accidental fsync-per-record, instrumentation on a
hot loop).

Exit code 0 = within envelope, 1 = regression, 2 = usage/parse error.
"""

import json
import sys


def fail(msg):
    print(f"PERF GATE FAIL: {msg}")
    sys.exit(1)


def ok(msg):
    print(f"perf gate ok: {msg}")


def gate_serving(base, cur):
    # A `--replay-smoke` snapshot carries only the open-loop replay
    # section; the full quick-mode snapshot carries both. Gate whatever
    # sections are present.
    if "telemetry_overhead_pct" in cur:
        # Telemetry overhead is a ratio of two runs on the same machine,
        # so it transfers across workload sizes. The committed full run
        # holds |overhead| <= 5%; allow 10 extra points for runner noise.
        limit = abs(base["telemetry_overhead_pct"]) + 10.0
        got = cur["telemetry_overhead_pct"]
        if abs(got) > limit:
            fail(f"telemetry overhead {got:.2f}% vs committed "
                 f"{base['telemetry_overhead_pct']:.2f}% (limit ±{limit:.2f}%)")
        ok(f"telemetry overhead {got:.2f}% (limit ±{limit:.2f}%)")

        # WAL overhead envelopes mirror the bench's own full-mode
        # asserts, widened for CI: a regression to fsync-per-record
        # blows far past these regardless of machine.
        for key, limit in [("wal_batched_overhead_pct", 40.0),
                           ("wal_always_overhead_pct", 85.0)]:
            got = cur[key]
            if got > limit:
                fail(f"{key} {got:.2f}% exceeds {limit:.2f}%")
            ok(f"{key} {got:.2f}% (limit {limit:.2f}%)")

        # The cache-hit fast path must stay microseconds, not
        # milliseconds.
        got = cur["cache_hit_p50_us"]
        if got > 1000:
            fail(f"cache-hit p50 {got}us exceeds 1000us")
        ok(f"cache-hit p50 {got}us")

    if "replay" in cur:
        gate_replay(base.get("replay", {}), cur["replay"])


def gate_replay(base, cur):
    # Shard-contention ratios: same machine, same offered load, 1 vs 8
    # shards — the quantities are ratios, so they transfer across
    # runner speeds. The committed full run holds >= 2x lock-hold
    # reduction; a quick run on a noisy shared runner keeps a clear
    # margin over "sharding does nothing" without demanding the full
    # multiple.
    got = cur["lock_hold_reduction_8x"]
    if got < 1.2:
        fail(f"planner lock-hold reduction at 8 shards {got:.2f}x fell "
             f"below 1.2x (committed: "
             f"{base.get('lock_hold_reduction_8x', 0):.2f}x)")
    ok(f"lock-hold reduction at 8 shards: {got:.2f}x")

    # Peak queue depth must at minimum not *grow* with shards.
    got = cur["queue_depth_reduction_8x"]
    if got < 1.0:
        fail(f"peak queue depth grew with shards: reduction {got:.2f}x")
    ok(f"queue-depth reduction at 8 shards: {got:.2f}x")

    # All three steady shard points must be present and lossless —
    # steady load is sized to admit cleanly at every shard count.
    steady = {entry["shards"]: entry for entry in cur.get("steady", [])}
    for shards in (1, 4, 8):
        if shards not in steady:
            fail(f"replay steady curve missing the {shards}-shard point")
        if steady[shards]["shed"] != 0:
            fail(f"steady load shed {steady[shards]['shed']} requests "
                 f"at {shards} shards")
    ok("steady curve present at 1/4/8 shards, zero shed")

    # The spike must overrun the tight admission bound (the admission
    # controller's smoke signal) without shedding everything.
    spike = cur["spike"]
    if spike["shed"] == 0:
        fail("spike curve never overran the admission bound")
    if spike["answered"] == 0:
        fail("spike curve shed every request")
    ok(f"spike shed {spike['shed']} of "
       f"{spike['shed'] + spike['answered']} arrivals "
       f"({spike['shed_rate_pct']:.1f}%)")


def gate_planning(base, cur):
    # The kernel must still beat the scalar baseline, and the metric
    # index must still prune. Quick mode shrinks the workload, which
    # shrinks the speedup — gate on a floor, not on the committed value.
    got = cur["speedup_vs_baseline"]
    if got < 1.2:
        fail(f"kernel speedup {got:.2f}x vs scalar baseline fell below 1.2x "
             f"(committed: {base['speedup_vs_baseline']:.2f}x)")
    ok(f"kernel speedup {got:.2f}x")

    # Exact equivalence is binary and workload-independent.
    if cur["kernel_batches"] != cur["baseline_batches"]:
        fail(f"kernel batches {cur['kernel_batches']} != "
             f"baseline batches {cur['baseline_batches']}")
    ok(f"plan equivalence: {cur['kernel_batches']} batches both paths")

    for point in cur.get("index_scaling", []):
        if point["index_speedup"] < 1.0:
            fail(f"metric index slower than sweep at n={point['n']}: "
                 f"{point['index_speedup']:.2f}x")
        if point["pruned_fraction"] < 0.5:
            fail(f"metric index barely prunes at n={point['n']}: "
                 f"{point['pruned_fraction']:.4f}")
    ok(f"index scaling: {len(cur.get('index_scaling', []))} points prune and win")


def gate_incremental(base, cur):
    got = cur["speedup_avg"]
    if got < 2.0:
        fail(f"incremental replanning speedup {got:.2f}x fell below 2.0x "
             f"(committed: {base['speedup_avg']:.2f}x)")
    ok(f"incremental speedup {got:.2f}x")

    if cur["equivalence_checked_epochs"] < 1:
        fail("no epoch was checked for incremental/full plan equivalence")
    ok(f"equivalence checked on {cur['equivalence_checked_epochs']} epochs")


GATES = {
    "serving": gate_serving,
    "planning": gate_planning,
    "incremental": gate_incremental,
}


def main():
    if len(sys.argv) != 4 or sys.argv[1] not in GATES:
        print(__doc__)
        print(f"benches: {', '.join(sorted(GATES))}")
        sys.exit(2)
    bench, base_path, cur_path = sys.argv[1:4]
    try:
        with open(base_path) as f:
            base = json.load(f)
        with open(cur_path) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"PERF GATE ERROR: {e}")
        sys.exit(2)
    GATES[bench](base, cur)
    print(f"perf gate passed for {bench}")


if __name__ == "__main__":
    main()
