//! # BatchER — cost-effective in-context learning for entity resolution
//!
//! Facade crate for the workspace reproducing *"Cost-Effective In-Context
//! Learning for Entity Resolution: A Design Space Exploration"* (ICDE 2024).
//!
//! Re-exports every sub-crate under a stable module path so downstream users
//! can depend on a single crate:
//!
//! ```
//! use batcher::core::{run, RunConfig};   // the BatchER framework
//! use batcher::datagen::{generate, DatasetKind};
//! use batcher::llm::SimLlm;              // the simulated LLM substrate
//!
//! let dataset = generate(DatasetKind::Beer, 42);
//! let api = SimLlm::new();
//! let result = run(&dataset, &api, RunConfig::best_design());
//! assert!(result.f1() > 50.0);
//! ```
//!
//! See `DESIGN.md` at the repository root for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.

/// ER data model: records, pairs, serialization, metrics, cost accounting.
pub use er_core;

/// String similarity kernels (Levenshtein, Jaccard, Jaro-Winkler, TF-IDF).
pub use text_sim;

/// Hashed n-gram sentence embeddings (offline SBERT substitute).
pub use embed;

/// DBSCAN and K-Means clustering.
pub use cluster;

/// Simulated LLMs: tokenizer, pricing, capability profiles, chat API.
pub use llm;

/// OpenAI-style HTTP loopback service around the simulator.
pub use llm_service;

/// Candidate-pair generation (blocking).
pub use blocking;

/// Synthetic Magellan-style benchmark generators.
pub use datagen;

/// PLM and manual-prompting baselines.
pub use baselines;

/// The BatchER framework itself (question batching + demonstration
/// selection + covering-based selection + execution).
pub use batcher_core as core;

/// The online entity-matching service: request coalescing, answer cache,
/// cost governor, worker pool and HTTP front end.
pub use er_service;

/// Zero-dependency observability: metric registry, mergeable histograms,
/// lifecycle tracing, Prometheus text rendering and linting.
pub use obs;

/// Embedded segmented write-ahead log (CRC-framed records, fsync policy,
/// torn-tail recovery, deterministic fault injection).
pub use wal;
