//! Integration tests pinning the paper's six findings (§VI) as executable
//! assertions over the simulated stack. These are the regression guards
//! for the reproduction's *shape*: if a refactor breaks one of these, the
//! repository no longer reproduces the paper.

use batcher::core::{run, BatchingStrategy, ExtractorKind, RunConfig, SelectionStrategy};
use batcher::datagen::{generate, DatasetKind};
use batcher::llm::{ModelKind, SimLlm};

fn f1_mean(dataset: &datagen::DatasetKind, config: RunConfig, seeds: &[u64]) -> f64 {
    let d = generate(*dataset, 77);
    let api = SimLlm::new();
    let sum: f64 = seeds
        .iter()
        .map(|&seed| run(&d, &api, RunConfig { seed, ..config }).f1())
        .sum();
    sum / seeds.len() as f64
}

const SEEDS: [u64; 3] = [1, 2, 3];

#[test]
fn finding1_batch_beats_standard_on_accuracy_and_cost() {
    // Finding 1: batch prompting brings 4x-7x API savings and higher,
    // more stable accuracy. Checked on two mid-size datasets.
    for kind in [DatasetKind::WalmartAmazon, DatasetKind::AbtBuy] {
        let d = generate(kind, 77);
        let api = SimLlm::new();
        let std = run(
            &d,
            &api,
            RunConfig { seed: 1, ..RunConfig::standard_prompting() },
        );
        let batch = run(
            &d,
            &api,
            RunConfig { seed: 1, ..RunConfig::batch_prompting_fixed() },
        );
        let saving = std.ledger.api.ratio(batch.ledger.api);
        assert!(
            (3.5..=8.0).contains(&saving),
            "{kind}: API saving {saving:.1}x outside the paper's 4x-7x band"
        );
        let std_f1 = f1_mean(&kind, RunConfig::standard_prompting(), &SEEDS);
        let batch_f1 = f1_mean(&kind, RunConfig::batch_prompting_fixed(), &SEEDS);
        assert!(
            batch_f1 > std_f1 - 1.0,
            "{kind}: batch F1 {batch_f1:.1} not ≥ standard {std_f1:.1}"
        );
    }
}

#[test]
fn finding2_cover_labels_an_order_of_magnitude_less() {
    // Finding 2 (cost half): covering-based selection slashes labeling
    // cost versus top-k-question at comparable accuracy.
    let d = generate(DatasetKind::WalmartAmazon, 77);
    let api = SimLlm::new();
    let base = RunConfig { seed: 1, ..RunConfig::best_design() };
    let cover = run(&d, &api, base);
    let topk = run(
        &d,
        &api,
        RunConfig { selection: SelectionStrategy::TopKQuestion, ..base },
    );
    assert!(
        cover.demos_labeled * 5 <= topk.demos_labeled,
        "cover labeled {} vs topk-question {}",
        cover.demos_labeled,
        topk.demos_labeled
    );
    assert!(
        cover.f1() > topk.f1() - 6.0,
        "cover F1 {:.1} collapsed vs topk-question {:.1}",
        cover.f1(),
        topk.f1()
    );
    // Cover also has the lowest API cost (fewer demo tokens per prompt).
    assert!(cover.ledger.api <= topk.ledger.api);
}

#[test]
fn finding2_diversity_not_worse_than_similarity_for_cover() {
    let d = generate(DatasetKind::AmazonGoogle, 77);
    let api = SimLlm::new();
    let mut div = 0.0;
    let mut sim = 0.0;
    for seed in SEEDS {
        let base = RunConfig { seed, ..RunConfig::best_design() };
        div += run(&d, &api, base).f1();
        sim += run(
            &d,
            &api,
            RunConfig { batching: BatchingStrategy::Similarity, ..base },
        )
        .f1();
    }
    assert!(
        div >= sim - 3.0,
        "diversity {div:.1} clearly worse than similarity {sim:.1} (x3 seeds)"
    );
}

#[test]
fn finding5_gpt4_most_accurate_but_10x_cost() {
    let d = generate(DatasetKind::DblpScholar, 77);
    let api = SimLlm::new();
    let base = RunConfig { seed: 1, ..RunConfig::best_design() };
    let g35 = run(&d, &api, base);
    let g4 = run(&d, &api, RunConfig { model: ModelKind::Gpt4, ..base });
    assert!(
        g4.f1() > g35.f1() - 1.0,
        "GPT-4 {:.1} should be at least GPT-3.5's level {:.1}",
        g4.f1(),
        g35.f1()
    );
    let ratio = g4.ledger.api.ratio(g35.ledger.api);
    assert!(
        ratio > 8.0,
        "GPT-4 API cost only {ratio:.1}x GPT-3.5's (pricing is 10x)"
    );
}

#[test]
fn finding5_gpt35_06_regresses_somewhere() {
    // Table VI: the 0613 snapshot loses to 0301 on several datasets.
    let d = generate(DatasetKind::AbtBuy, 77);
    let api = SimLlm::new();
    let base = RunConfig { seed: 1, ..RunConfig::best_design() };
    let v03 = run(&d, &api, base);
    let v06 = run(
        &d,
        &api,
        RunConfig { model: ModelKind::Gpt35Turbo0613, ..base },
    );
    assert!(
        v03.f1() > v06.f1(),
        "0301 {:.1} should beat 0613 {:.1} on AB",
        v03.f1(),
        v06.f1()
    );
}

#[test]
fn finding6_structure_aware_lr_beats_semantic() {
    // Table VII: BATCHER-LR ≥ BATCHER-SEM on ER relevance.
    let kind = DatasetKind::WalmartAmazon;
    let lr = f1_mean(&kind, RunConfig::best_design(), &SEEDS);
    let sem = f1_mean(
        &kind,
        RunConfig { extractor: ExtractorKind::Semantic, ..RunConfig::best_design() },
        &SEEDS,
    );
    assert!(
        lr >= sem - 1.0,
        "BATCHER-LR {lr:.1} lost to BATCHER-SEM {sem:.1}"
    );
}

#[test]
fn llama2_unusable_for_batch_prompting() {
    // §VI-F: Llama2 produces no usable output for multi-question prompts.
    let d = generate(DatasetKind::Beer, 77);
    let api = SimLlm::new();
    let result = run(
        &d,
        &api,
        RunConfig {
            model: ModelKind::Llama2Chat70b,
            max_retries: 1,
            seed: 1,
            ..RunConfig::best_design()
        },
    );
    assert!(
        result.unanswered as u64 > result.confusion.total() / 2,
        "Llama2 answered batches it should fail on ({} unanswered of {})",
        result.unanswered,
        result.confusion.total()
    );
}
