//! Crash-recovery guarantees of the durable answer/ledger tier: a
//! restarted service replays its write-ahead log and re-buys **zero**
//! settled answers, and replay reconstructs exactly the state that was
//! durable at any crash point (prefix consistency).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::MatchLabel;
use batcher::er_core::{EntityPair, Money, PairId, Record, RecordId, Schema};
use batcher::er_service::durable::{encode, replay, DurableRecord};
use batcher::er_service::{
    ErService, PairFingerprint, ServiceConfig, SyncPolicy, WalConfig, FINGERPRINT_VERSION,
};
use batcher::llm::SimLlm;
use batcher::wal::testing::crash_at_offset;
use batcher::wal::Wal;

fn bootstrap() -> Vec<batcher::er_core::LabeledPair> {
    generate(DatasetKind::Beer, 7).pairs()[..120].to_vec()
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(["title", "brand", "price"]).unwrap())
}

/// Unambiguous questions (identical records or fully disjoint text), so
/// answers are stable whatever batch they land in.
fn questions(n: usize) -> Vec<EntityPair> {
    let products = [
        "hazy little thing ipa",
        "guinness extra stout",
        "pliny the elder",
        "sierra nevada torpedo",
        "blue moon belgian white",
        "dogfish head 60 minute",
        "stone delicious ipa",
        "lagunitas daytime ale",
    ];
    (0..n)
        .map(|i| {
            let title = products[i % products.len()];
            let left: Vec<String> = vec![
                title.into(),
                format!("brand{}", i % 5),
                format!("{}.49", 3 + i % 7),
            ];
            let right: Vec<String> = if i % 2 == 0 {
                left.clone()
            } else {
                vec![
                    products[(i + 3) % products.len()].into(),
                    format!("other{}", i % 4),
                    "87.50".into(),
                ]
            };
            let a = Arc::new(Record::new(RecordId::a(i as u32), schema(), left).unwrap());
            let b = Arc::new(Record::new(RecordId::b(i as u32), schema(), right).unwrap());
            EntityPair::new(PairId(i as u32), a, b).unwrap()
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("er-durability-{tag}-{}", std::process::id()))
}

fn service_config(dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        flush_deadline: Duration::from_millis(3),
        batch_size: 4,
        workers: 2,
        wal: Some(WalConfig { sync: SyncPolicy::Always, ..WalConfig::at(dir) }),
        ..ServiceConfig::default()
    }
}

/// The tentpole guarantee: run a service against a WAL, drop it, start a
/// fresh service on the same directory and replay the same question bank
/// — the second run answers everything from the recovered cache, buying
/// nothing, and its replayed ledger still conserves the budget.
#[test]
fn restart_without_rebuying_answers() {
    let dir = temp_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let bank = questions(24);

    let (spent_run1, llm_answered_run1, api_calls_run1) = {
        let service = ErService::start(Arc::new(SimLlm::new()), bootstrap(), service_config(&dir));
        for q in &bank {
            service.submit(q);
        }
        let stats = service.stats();
        assert!(stats.wal_enabled);
        assert_eq!(stats.wal_append_errors, 0);
        assert!(
            stats.llm_answered > 0,
            "run 1 never bought an answer: {stats:?}"
        );
        // Every unique question was LLM-answered (none leaked to the
        // fallback), so run 2's zero-buy assertion below is meaningful.
        assert_eq!(stats.fallback_answered, 0, "{stats:?}");
        (stats.spent_micros, stats.llm_answered, stats.api_calls)
    };

    let service = ErService::start(Arc::new(SimLlm::new()), bootstrap(), service_config(&dir));
    let recovery = service.health();
    assert!(recovery.recovery_records_replayed > 0, "{recovery:?}");
    assert_eq!(
        recovery.recovery_answers_restored, llm_answered_run1,
        "replay restored a different answer set than run 1 bought"
    );
    for q in &bank {
        service.submit(q);
    }
    let stats = service.stats();
    // Zero re-buys: everything is a cache hit against replayed answers.
    assert_eq!(
        stats.llm_answered, 0,
        "restart re-bought answers: {stats:?}"
    );
    assert_eq!(stats.fallback_answered, 0, "{stats:?}");
    assert_eq!(stats.api_calls, api_calls_run1, "{stats:?}");
    assert!(stats.cache_hits >= bank.len() as u64, "{stats:?}");
    // The replayed spend counts against the budget exactly once.
    assert_eq!(stats.spent_micros, spent_run1, "{stats:?}");
    assert_eq!(
        stats.remaining_micros + stats.spent_micros,
        stats.budget_micros,
        "replayed ledger broke conservation: {stats:?}"
    );
    drop(service);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Expected replay state after a prefix of the history.
#[derive(Debug, Clone, Default, PartialEq)]
struct Expected {
    answers: Vec<(u64, bool)>,
    settled_micros: i64,
    open_reservations: u64,
}

/// Prefix consistency at the durable-record level: drive the WAL with a
/// deterministic reserve/settle/answer/refund history, snapshot the
/// expected state at each append's returned end offset, kill the log at
/// a sweep of byte offsets, and assert replay reconstructs exactly the
/// snapshot at the largest end offset at or before the cut.
#[test]
fn replay_matches_every_crash_offset() {
    let dir = temp_dir("prefix");
    let _ = std::fs::remove_dir_all(&dir);
    let config = WalConfig {
        sync: SyncPolicy::Never,
        segment_bytes: 256, // force several segment rolls
        ..WalConfig::at(&dir)
    };

    // Build the history and the per-append expected snapshots.
    let mut snapshots: Vec<(u64, Expected)> = vec![(0, Expected::default())];
    {
        let (wal, _) = replay(&config).unwrap();
        let mut state = Expected::default();
        let mut append = |wal: &Wal, record: DurableRecord, state: &Expected| {
            let end = wal.append(&encode(&record)).unwrap();
            snapshots.push((end, state.clone()));
        };
        for i in 0u64..12 {
            state.open_reservations += 1;
            append(
                &wal,
                DurableRecord::Reserve { run: 1, id: i, micros: 1_000 },
                &state,
            );
            if i % 3 == 2 {
                // Abort path: refund without spend.
                state.open_reservations -= 1;
                append(
                    &wal,
                    DurableRecord::Refund { run: 1, id: i, micros: 1_000 },
                    &state,
                );
            } else {
                state.open_reservations -= 1;
                state.settled_micros += 700;
                append(
                    &wal,
                    DurableRecord::Settle {
                        run: 1,
                        id: i,
                        api_micros: 700,
                        labeling_micros: 0,
                        prompt_tokens: 90,
                        completion_tokens: 12,
                        api_calls: 1,
                        pairs_labeled: 0,
                    },
                    &state,
                );
                state.answers.push((i, i % 2 == 0));
                append(
                    &wal,
                    DurableRecord::Answer {
                        version: FINGERPRINT_VERSION,
                        fp: PairFingerprint(i),
                        label: MatchLabel::from_bool(i % 2 == 0),
                        cost_micros: 700,
                    },
                    &state,
                );
            }
        }
    }
    let total = snapshots.last().unwrap().0;

    // Sweep crash offsets, including mid-record cuts (which truncate back
    // to the previous whole record) and both extremes. Descending order,
    // because each cut (and each replay's torn-tail truncation) shortens
    // the log for good.
    let mut cuts: Vec<u64> = (0..=total).step_by(7).collect();
    cuts.push(total);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.reverse();
    for crash in cuts {
        crash_at_offset(&dir, crash).unwrap();
        let (_wal, replayed) = replay(&config).unwrap();
        let expected = snapshots
            .iter()
            .rev()
            .find(|(end, _)| *end <= crash)
            .map(|(_, s)| s.clone())
            .unwrap();
        let got_answers: Vec<(u64, bool)> = replayed
            .answers
            .iter()
            .map(|(fp, label)| (fp.0, label.is_match()))
            .collect();
        assert_eq!(got_answers, expected.answers, "crash at {crash}/{total}");
        assert_eq!(
            replayed.report.settled.total(),
            Money::from_micros(expected.settled_micros),
            "crash at {crash}/{total}"
        );
        assert_eq!(
            replayed.report.open_reservations, expected.open_reservations,
            "crash at {crash}/{total}"
        );
        // Reserve-first write ordering means no cut can orphan a settle.
        assert_eq!(
            replayed.report.unmatched_settlements, 0,
            "crash at {crash}/{total}"
        );
        assert_eq!(replayed.report.undecodable, 0, "crash at {crash}/{total}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
