//! The cross-service debugging walkthrough, end to end over real
//! sockets: scrape an exemplar trace id off `/metrics`, follow it to
//! `/trace?id=` for the assembled span tree — including the llm-service
//! child spans that the propagated traceparent produced — and verify
//! that killing the LLM endpoint trips the breaker and dumps a flight
//! recorder bundle to disk.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_service::{ErService, MatchServer, ServiceConfig};
use batcher::llm_service::http::read_response;
use batcher::llm_service::{LlmServer, ServeOptions};

fn bootstrap() -> Vec<batcher::er_core::LabeledPair> {
    generate(DatasetKind::Beer, 7).pairs()[..120].to_vec()
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
    let (status, bytes) = read_response(&mut stream).unwrap();
    (status, String::from_utf8(bytes).unwrap())
}

fn post_match(addr: std::net::SocketAddr, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /match HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let (status, bytes) = read_response(&mut stream).unwrap();
    (status, String::from_utf8(bytes).unwrap())
}

/// Scrape → exemplar → trace tree: the full latency-spike drill-down
/// from the README, against a real llm-service over loopback.
#[test]
fn metrics_exemplar_drills_down_to_cross_service_trace() {
    let llm = LlmServer::new().start().expect("bind llm loopback");
    let service = Arc::new(ErService::start(
        Arc::new(llm.client()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(5),
            batch_size: 4,
            workers: 2,
            ..ServiceConfig::default()
        },
    ));
    let front = MatchServer::start(Arc::clone(&service), ServeOptions::default()).unwrap();
    let addr = front.addr();

    // A fresh question, answered by the LLM through the HTTP client.
    let body = r#"{"schema":["title","brand"],"left":["pliny the elder","russian river"],"right":["heady topper","alchemist"]}"#;
    let (status, answer) = post_match(addr, body);
    assert_eq!(status, 200, "{answer}");
    assert!(answer.contains(r#""source":"llm""#), "{answer}");

    // Step 1 of the walkthrough: the answer-latency histogram carries an
    // exemplar naming a real trace id on the bucket the answer landed in.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let exemplar_line = metrics
        .lines()
        .find(|l| l.starts_with("er_answer_us_bucket") && l.contains("# {trace_id=\""))
        .unwrap_or_else(|| panic!("no exemplar on er_answer_us: {metrics}"));
    let trace_id: u64 = exemplar_line
        .split("trace_id=\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("unparsable exemplar: {exemplar_line}"));
    assert!(trace_id > 0, "{exemplar_line}");

    // Step 2: `/trace?id=` assembles the cross-service tree. The er-side
    // span is complete, and the children are the llm-service spans that
    // the propagated traceparent created — queue wait, attempt, outcome.
    let (status, tree) = get(addr, &format!("/trace?id={trace_id}"));
    assert_eq!(status, 200, "{tree}");
    assert!(tree.contains(r#""stage":"submitted""#), "{tree}");
    assert!(tree.contains(r#""stage":"answered""#), "{tree}");
    assert!(
        !tree.contains("\"children\":[]"),
        "no llm child spans: {tree}"
    );
    assert!(tree.contains(r#""stage":"received""#), "{tree}");
    assert!(tree.contains(r#""stage":"queue_wait""#), "{tree}");
    assert!(tree.contains(r#""stage":"completed""#), "{tree}");

    // The trace endpoints reject garbage instead of guessing.
    assert_eq!(get(addr, "/trace?id=bogus").0, 400);
    assert_eq!(get(addr, "/trace?n=many").0, 400);
    assert_eq!(get(addr, "/trace?id=999999999").0, 404);

    // Step 3: the SLO view renders every objective's burn windows.
    let (status, slo) = get(addr, "/slo");
    assert_eq!(status, 200);
    for name in ["answer_latency", "availability", "budget"] {
        assert!(slo.contains(&format!("\"name\":\"{name}\"")), "{slo}");
    }
    assert!(slo.contains("\"fast_burn\""), "{slo}");

    // Step 4: an on-demand bundle is a self-contained JSON document.
    let (status, bundle) = get(addr, "/debug/bundle");
    assert_eq!(status, 200);
    for key in [
        "\"reason\":\"on_demand\"",
        "\"stats\"",
        "\"slo\"",
        "\"recent_traces\"",
        "\"events\"",
        "\"snapshots\"",
    ] {
        assert!(bundle.contains(key), "missing {key}: {bundle}");
    }

    // The exposition with exemplars still passes the lint gate.
    batcher::obs::lint(&metrics).expect("exemplar-bearing /metrics is lint-clean");
}

/// Killing the LLM endpoint trips the breaker, and the trip dumps a
/// flight-recorder bundle to the configured directory.
#[test]
fn llm_outage_trips_breaker_and_dumps_flight_bundle() {
    let dir = std::env::temp_dir().join(format!("er-flight-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let llm = LlmServer::new().start().expect("bind llm loopback");
    let client = llm.client();
    let service = Arc::new(ErService::start(
        Arc::new(client),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(5),
            batch_size: 4,
            workers: 2,
            cache_enabled: false,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60), // never recovers in-test
            flight_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
    ));

    // Warm traffic against the live endpoint.
    let dataset = generate(DatasetKind::Beer, 11);
    let questions: Vec<_> = dataset.pairs()[120..136]
        .iter()
        .map(|lp| lp.pair.clone())
        .collect();
    for q in &questions[..4] {
        service.submit(q);
    }
    assert!(
        service.stats().llm_answered > 0,
        "warmup never reached the LLM"
    );

    // Kill the endpoint: the handle's drop stops the listener. Dead
    // batches now count toward the breaker threshold.
    drop(llm);
    for q in &questions[4..] {
        service.submit(q);
    }
    let stats = service.stats();
    assert!(stats.breaker_trips >= 1, "breaker never opened: {stats:?}");

    // The trip produced an on-disk bundle naming the reason, carrying
    // the breaker event and enough context to debug offline.
    let bundles: Vec<_> = std::fs::read_dir(&dir)
        .expect("flight dir created")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains("breaker_open"))
        })
        .collect();
    assert!(
        !bundles.is_empty(),
        "no breaker_open bundle in {}",
        dir.display()
    );
    let body = std::fs::read_to_string(&bundles[0]).unwrap();
    assert!(body.contains("\"reason\":\"breaker_open\""), "{body}");
    assert!(body.contains("\"stats\""), "{body}");
    assert!(body.contains("\"events\""), "{body}");
    assert_eq!(service.flight().bundles_written(), bundles.len() as u64);

    let _ = std::fs::remove_dir_all(&dir);
}
