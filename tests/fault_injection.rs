//! Failure-path hardening for the serving layer: panicking workers must
//! refund their reservations, an LLM outage must trip the circuit
//! breaker into the logistic fallback (and recover after the cooldown),
//! and WAL write failures must degrade — never stop — the service. In
//! every scenario the governor's conservation laws keep holding.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::{EntityPair, PairId, Record, RecordId, Schema};
use batcher::er_service::{
    DecisionSource, ErService, FaultSchedule, ServiceConfig, WalConfig, WalFault,
};
use batcher::llm::{ChatApi, ChatRequest, ChatResponse, LlmError, SimLlm};

fn bootstrap() -> Vec<batcher::er_core::LabeledPair> {
    generate(DatasetKind::Beer, 7).pairs()[..120].to_vec()
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(["title", "brand", "price"]).unwrap())
}

fn questions(n: usize) -> Vec<EntityPair> {
    let products = [
        "hazy little thing ipa",
        "guinness extra stout",
        "pliny the elder",
        "sierra nevada torpedo",
        "blue moon belgian white",
        "dogfish head 60 minute",
    ];
    (0..n)
        .map(|i| {
            let title = products[i % products.len()];
            let left: Vec<String> = vec![
                title.into(),
                format!("brand{}", i % 5),
                format!("{}.49", 3 + i % 7),
            ];
            let right: Vec<String> = if i % 2 == 0 {
                left.clone()
            } else {
                vec![
                    products[(i + 3) % products.len()].into(),
                    format!("other{}", i % 4),
                    "87.50".into(),
                ]
            };
            let a = Arc::new(Record::new(RecordId::a(i as u32), schema(), left).unwrap());
            let b = Arc::new(Record::new(RecordId::b(i as u32), schema(), right).unwrap());
            EntityPair::new(PairId(i as u32), a, b).unwrap()
        })
        .collect()
}

fn fast_config() -> ServiceConfig {
    ServiceConfig {
        flush_deadline: Duration::from_millis(3),
        batch_size: 4,
        workers: 2,
        max_retries: 0,
        ..ServiceConfig::default()
    }
}

fn conservation(stats: &batcher::er_service::ServiceStats) {
    assert!(stats.within_budget(), "overspent: {stats:?}");
    assert_eq!(
        stats.remaining_micros + stats.spent_micros,
        stats.budget_micros,
        "reservation leaked at quiesce: {stats:?}"
    );
    assert_eq!(
        stats.submitted,
        stats.cache_hits
            + stats.coalesced_duplicates
            + stats.llm_answered
            + stats.fallback_answered,
        "answer accounting leaked: {stats:?}"
    );
}

/// A ChatApi that panics mid-call: the worker dies at the worst moment —
/// after the governor granted its reservation.
#[derive(Debug)]
struct PanickingApi;

impl ChatApi for PanickingApi {
    fn complete(&self, _request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        panic!("injected mid-dispatch panic");
    }
}

/// A dead endpoint: every call is a transport failure.
#[derive(Debug)]
struct OutageApi;

impl ChatApi for OutageApi {
    fn complete(&self, _request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        Err(LlmError::Transport("connection refused".into()))
    }
}

/// Fails the first `fail_first` calls with a transport error, then
/// delegates to a healthy simulator — an outage that ends.
#[derive(Debug)]
struct ScheduledOutage {
    fail_first: u64,
    calls: AtomicU64,
    healthy: SimLlm,
}

impl ScheduledOutage {
    fn new(fail_first: u64) -> Self {
        Self { fail_first, calls: AtomicU64::new(0), healthy: SimLlm::new() }
    }
}

impl ChatApi for ScheduledOutage {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
            Err(LlmError::Transport("connection reset".into()))
        } else {
            self.healthy.complete(request)
        }
    }
}

/// Regression for the reservation leak: before the RAII guard, a worker
/// panicking between reserve and settle stranded the reserved budget
/// forever (remaining + spent < budget at quiesce). The drop guard now
/// refunds it as the panic unwinds.
#[test]
fn panicking_worker_refunds_its_reservation() {
    let service = ErService::start(Arc::new(PanickingApi), bootstrap(), fast_config());
    let bank = questions(12);
    let mut decisions = Vec::new();
    for q in &bank {
        decisions.push(service.submit(q));
    }
    // Every question still got an answer — via the local fallback, since
    // the panicked batch's waiters observe their channel disconnect.
    assert!(decisions
        .iter()
        .all(|d| d.source == DecisionSource::Fallback));

    let stats = service.stats();
    assert!(stats.governor_refunds >= 1, "no refund recorded: {stats:?}");
    // The panic happened before any API spend; refunds mean the budget
    // is exactly whole again.
    assert_eq!(stats.api_micros, 0, "{stats:?}");
    conservation(&stats);
}

/// An LLM outage trips the breaker: after `breaker_threshold` dead
/// batches everything short-circuits to the fallback without reserving
/// budget, and no API spend ever lands.
#[test]
fn outage_trips_breaker_and_degrades_to_fallback() {
    let service = ErService::start(
        Arc::new(OutageApi),
        bootstrap(),
        ServiceConfig {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60), // never recovers in-test
            ..fast_config()
        },
    );
    let bank = questions(24);
    let mut decisions = Vec::new();
    for q in &bank {
        decisions.push(service.submit(q));
    }
    assert!(decisions
        .iter()
        .all(|d| d.source == DecisionSource::Fallback));

    let stats = service.stats();
    assert!(stats.breaker_trips >= 1, "breaker never opened: {stats:?}");
    assert_eq!(stats.breaker_state, 1, "breaker should be open: {stats:?}");
    assert_eq!(stats.api_micros, 0, "a dead endpoint billed: {stats:?}");
    assert_eq!(stats.llm_answered, 0, "{stats:?}");
    conservation(&stats);
}

/// The breaker recovers: once the outage ends and the cooldown passes, a
/// probe batch succeeds, the circuit closes, and LLM answers flow again.
#[test]
fn breaker_recovers_after_cooldown() {
    let cooldown = Duration::from_millis(50);
    // One dead call: the breaker (threshold 1) opens on it, and every
    // later batch — including the half-open probe — finds the endpoint
    // healthy again.
    let service = ErService::start(
        Arc::new(ScheduledOutage::new(1)),
        bootstrap(),
        ServiceConfig {
            breaker_threshold: 1,
            breaker_cooldown: cooldown,
            cache_enabled: false, // recovery must be visible as fresh LLM answers
            ..fast_config()
        },
    );
    let bank = questions(8);
    // Phase 1: outage. The first dead batch opens the circuit.
    for q in &bank {
        service.submit(q);
    }
    let during = service.stats();
    assert!(during.breaker_trips >= 1, "{during:?}");
    assert_eq!(during.llm_answered, 0, "{during:?}");

    // Phase 2: the outage is over and the cooldown has passed; the next
    // batch is the half-open probe and it succeeds.
    std::thread::sleep(cooldown + Duration::from_millis(20));
    for q in &bank {
        service.submit(q);
    }
    let after = service.stats();
    assert!(
        after.llm_answered > 0,
        "breaker never let traffic back through: {after:?}"
    );
    assert_eq!(
        after.breaker_state, 0,
        "breaker should have re-closed: {after:?}"
    );
    conservation(&after);
}

/// WAL write failures degrade, never fail: with injected I/O errors on
/// the journal the service keeps answering (and billing correctly), the
/// errors are counted, and `/healthz` flips to `degraded`.
#[test]
fn wal_write_failure_degrades_but_keeps_serving() {
    let dir = std::env::temp_dir().join(format!("er-fault-walio-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Slot 1 (RunStart) healthy, then every journaled event for a while
    // hits an injected I/O error.
    let faults =
        FaultSchedule::of(std::iter::once(None).chain((0..64).map(|_| Some(WalFault::IoError))));
    let service = ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig { wal: Some(WalConfig { faults, ..WalConfig::at(&dir) }), ..fast_config() },
    );
    let bank = questions(12);
    for q in &bank {
        service.submit(q);
    }
    let stats = service.stats();
    assert!(stats.llm_answered > 0, "service stopped serving: {stats:?}");
    assert!(stats.wal_append_errors >= 1, "no fault landed: {stats:?}");
    conservation(&stats);

    let health = service.health();
    assert_eq!(health.status, "degraded", "{health:?}");
    assert!(health.wal_enabled);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
