//! Cross-crate integration tests: the full pipeline over both transports,
//! determinism, and cost-accounting consistency.

use batcher::core::{run, RunConfig};
use batcher::datagen::{generate, DatasetKind};
use batcher::llm::{InjectedFault, SimLlm, SimLlmConfig};
use batcher::llm_service::LlmServer;

#[test]
fn http_and_in_process_agree_exactly() {
    let dataset = generate(DatasetKind::Beer, 3);
    let config = RunConfig { seed: 5, ..RunConfig::best_design() };

    let local = run(&dataset, &SimLlm::new(), config);
    let server = LlmServer::new().start().expect("bind loopback");
    let remote = run(&dataset, &server.client(), config);

    assert_eq!(local.confusion, remote.confusion);
    assert_eq!(local.ledger.api, remote.ledger.api);
    assert_eq!(local.ledger.labeling, remote.ledger.labeling);
    assert_eq!(local.batches, remote.batches);
}

#[test]
fn runs_are_deterministic_across_processes() {
    // Two fresh endpoints, same seed: identical results (no hidden global
    // state anywhere in the stack).
    let dataset = generate(DatasetKind::FodorsZagats, 9);
    let config = RunConfig { seed: 17, ..RunConfig::best_design() };
    let a = run(&dataset, &SimLlm::new(), config);
    let b = run(&dataset, &SimLlm::new(), config);
    assert_eq!(a.confusion, b.confusion);
    assert_eq!(a.ledger, b.ledger);
}

#[test]
fn ledger_is_internally_consistent() {
    let dataset = generate(DatasetKind::Beer, 3);
    let result = run(&dataset, &SimLlm::new(), RunConfig::best_design());

    // Labeling cost = demos labeled × $0.008.
    assert_eq!(
        result.ledger.labeling,
        batcher::er_core::LABEL_COST_PER_PAIR * result.demos_labeled as u64
    );
    // API calls at least one per batch; token counts nonzero.
    assert!(result.ledger.api_calls >= result.batches as u64);
    assert!(result.ledger.prompt_tokens.get() > 0);
    assert!(result.ledger.completion_tokens.get() > 0);
    // Total = api + labeling.
    assert_eq!(
        result.ledger.total(),
        result.ledger.api + result.ledger.labeling
    );
}

#[test]
fn every_test_question_receives_a_verdict() {
    let dataset = generate(DatasetKind::ItunesAmazon, 3);
    let result = run(&dataset, &SimLlm::new(), RunConfig::best_design());
    let split = dataset.split_3_1_1(RunConfig::best_design().seed).unwrap();
    assert_eq!(result.confusion.total() as usize, split.test.len());
}

#[test]
fn pipeline_survives_flaky_endpoint() {
    // A deterministic failure schedule — the first calls are rate limited
    // and garbled regardless of prompt content — so retry coverage does
    // not depend on which questions end up in which batch (probabilistic
    // injection keys off the prompt text, which shifts whenever planning
    // changes; this schedule survives any future plan shift).
    let dataset = generate(DatasetKind::Beer, 3);
    let api = SimLlm::with_failure_schedule([
        Some(InjectedFault::RateLimited),
        Some(InjectedFault::Malformed),
        None,
        Some(InjectedFault::RateLimited),
        None,
        Some(InjectedFault::Truncated),
    ]);
    let config = RunConfig { max_retries: 6, ..RunConfig::best_design() };
    let result = run(&dataset, &api, config);
    let split = dataset.split_3_1_1(config.seed).unwrap();
    assert_eq!(result.confusion.total() as usize, split.test.len());
    // The first two calls failed by construction, so the executor must
    // have retried at least twice.
    assert!(result.retries >= 2, "retries {} < 2", result.retries);
}

#[test]
fn truncated_outputs_degrade_gracefully() {
    // Forced truncation on every call: answers may be lost, but the run
    // completes and unanswered questions are counted, not dropped.
    let dataset = generate(DatasetKind::Beer, 3);
    let api = SimLlm::with_config(SimLlmConfig { truncation_rate: 1.0, ..Default::default() });
    let config = RunConfig { max_retries: 1, seed: 7, ..RunConfig::best_design() };
    let result = run(&dataset, &api, config);
    let split = dataset.split_3_1_1(7).unwrap();
    assert_eq!(result.confusion.total() as usize, split.test.len());
    assert!(
        result.unanswered > 0,
        "full truncation should lose some answers"
    );
}
