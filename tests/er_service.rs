//! Integration tests for the online entity-matching service: cache
//! economics, concurrent determinism, budget-exhaustion fallback and the
//! HTTP front end.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::{EntityPair, Money, PairId, Record, RecordId, Schema};
use batcher::er_service::{
    DecisionSource, ErService, HealthReport, MatchServer, PairFingerprint, ServiceConfig,
    ServiceStats,
};
use batcher::llm::SimLlm;
use batcher::llm_service::http::read_response;
use batcher::llm_service::ServeOptions;

/// Bootstrap pool for fallback training and demonstrations.
fn bootstrap() -> Vec<batcher::er_core::LabeledPair> {
    generate(DatasetKind::Beer, 7).pairs()[..120].to_vec()
}

/// A service with test-friendly latency and the given overrides.
fn config() -> ServiceConfig {
    ServiceConfig {
        flush_deadline: Duration::from_millis(5),
        batch_size: 4,
        workers: 2,
        ..ServiceConfig::default()
    }
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(["title", "brand", "price"]).unwrap())
}

fn record(id: u32, left: bool, values: [&str; 3]) -> Arc<Record> {
    let rid = if left {
        RecordId::a(id)
    } else {
        RecordId::b(id)
    };
    Arc::new(
        Record::new(
            rid,
            schema(),
            values.iter().map(|s| s.to_string()).collect(),
        )
        .unwrap(),
    )
}

/// Unambiguous questions: identical records (clear matches) and records
/// with fully disjoint text (clear non-matches). The engine answers these
/// robustly regardless of batch composition, which is what lets the
/// concurrency test demand bitwise-identical decisions across runs.
fn crafted_questions(n: usize) -> Vec<EntityPair> {
    let products = [
        "hazy little thing ipa",
        "guinness extra stout",
        "pliny the elder",
        "sierra nevada torpedo",
        "blue moon belgian white",
        "dogfish head 60 minute",
        "stone delicious ipa",
        "lagunitas daytime ale",
        "founders breakfast stout",
        "bells two hearted ale",
        "heady topper double ipa",
        "allagash white ale",
    ];
    let brands = [
        "sierra",
        "guinness",
        "russian river",
        "stone",
        "blue moon",
        "dogfish",
    ];
    (0..n)
        .map(|i| {
            let title = products[i % products.len()];
            let brand = brands[i % brands.len()];
            let price = format!("{}.99", 3 + (i % 9));
            let a = record(i as u32, true, [title, brand, &price]);
            let b = if i % 2 == 0 {
                // Clear match: identical content.
                record(i as u32, false, [title, brand, &price])
            } else {
                // Clear non-match: entirely different product.
                let other = products[(i + 5) % products.len()];
                record(
                    i as u32,
                    false,
                    [other, brands[(i + 3) % brands.len()], "87.50"],
                )
            };
            EntityPair::new(PairId(i as u32), a, b).unwrap()
        })
        .collect()
}

#[test]
fn cache_hits_are_identical_and_free() {
    let service = ErService::start(Arc::new(SimLlm::new()), bootstrap(), config());
    let questions = crafted_questions(12);

    // First pass: no hits possible.
    let first: Vec<_> = questions.iter().map(|q| service.submit(q)).collect();
    let after_first = service.ledger().snapshot();
    assert!(
        after_first.api_calls > 0,
        "first pass never reached the LLM"
    );

    // Second pass: every answer must come from the cache, unchanged, at
    // zero incremental API cost.
    for (question, first_decision) in questions.iter().zip(&first) {
        let second = service.submit(question);
        assert_eq!(second.source, DecisionSource::Cache);
        assert_eq!(second.label, first_decision.label);
        assert_eq!(second.fingerprint, first_decision.fingerprint);
    }
    let after_second = service.ledger().snapshot();
    assert_eq!(after_first.api_calls, after_second.api_calls);
    assert_eq!(after_first.total(), after_second.total());

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 12);
    assert!(stats.cache_hit_rate() > 0.0);
    // The first pass planned at least one flush; plan latency gauges are
    // live (cache hits on the second pass plan nothing).
    assert!(stats.plans > 0, "no planning pass recorded");
    assert!(
        stats.plan_avg_us > 0 || stats.plan_last_us > 0,
        "plan timing never recorded"
    );
}

#[test]
fn duplicate_workload_costs_less_with_cache_than_without() {
    // 8 unique questions, each asked three times, sequentially (so the
    // flush-time dedupe cannot mask the cache's contribution).
    let questions = crafted_questions(8);
    let workload: Vec<&EntityPair> = std::iter::repeat_with(|| questions.iter())
        .take(3)
        .flatten()
        .collect();

    let run = |cache_enabled: bool| -> batcher::er_core::CostLedger {
        let service = ErService::start(
            Arc::new(SimLlm::new()),
            bootstrap(),
            ServiceConfig { cache_enabled, ..config() },
        );
        for q in &workload {
            service.submit(q);
        }
        service.ledger().snapshot()
    };

    let with_cache = run(true);
    let without_cache = run(false);
    assert!(
        with_cache.total() < without_cache.total(),
        "cache did not save money: with {} vs without {}",
        with_cache.total(),
        without_cache.total()
    );
    assert!(with_cache.api_calls < without_cache.api_calls);
}

#[test]
fn concurrent_clients_with_same_seed_are_deterministic() {
    let questions = Arc::new(crafted_questions(24));
    let run = || -> Vec<(PairFingerprint, batcher::er_core::MatchLabel)> {
        let service = Arc::new(ErService::start(
            Arc::new(SimLlm::new()),
            bootstrap(),
            ServiceConfig { seed: 99, ..config() },
        ));
        let mut decisions: Vec<(PairFingerprint, batcher::er_core::MatchLabel)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4usize)
                    .map(|client| {
                        let service = Arc::clone(&service);
                        let questions = Arc::clone(&questions);
                        scope.spawn(move || {
                            questions
                                .iter()
                                .skip(client)
                                .step_by(4)
                                .map(|q| {
                                    let d = service.submit(q);
                                    (d.fingerprint, d.label)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
        decisions.sort_by_key(|(fp, _)| *fp);
        decisions
    };

    let first = run();
    let second = run();
    assert_eq!(first.len(), 24);
    assert_eq!(first, second, "same seed + same workload diverged");
}

#[test]
fn budget_exhaustion_degrades_to_logistic_fallback() {
    // A budget too small for a single batch: every question must still be
    // answered — by the fallback — and spend must stay within budget.
    let service = ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig { budget: Money::from_micros(50), ..config() },
    );
    let questions = crafted_questions(10);
    for q in &questions {
        let decision = service.submit(q);
        assert_eq!(decision.source, DecisionSource::Fallback);
    }
    let stats = service.stats();
    assert_eq!(stats.fallback_answered, 10);
    assert_eq!(stats.llm_answered, 0);
    assert!(stats.budget_denials > 0, "governor never denied anything");
    assert!(stats.within_budget(), "spent {} over budget", stats.spend());
    assert_eq!(stats.api_calls, 0);
}

#[test]
fn budget_covers_some_batches_then_falls_back() {
    // A mid-sized budget: early batches run on the LLM, later ones are
    // denied; the ledger never crosses the cap.
    let service = ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig { budget: Money::from_micros(1_500), ..config() },
    );
    let questions = crafted_questions(40);
    let decisions: Vec<_> = questions.iter().map(|q| service.submit(q)).collect();
    let llm = decisions
        .iter()
        .filter(|d| d.source == DecisionSource::Llm)
        .count();
    let fallback = decisions
        .iter()
        .filter(|d| d.source == DecisionSource::Fallback)
        .count();
    let stats = service.stats();
    assert!(stats.within_budget(), "spent {} over budget", stats.spend());
    assert!(llm > 0, "budget was never spent on the LLM");
    assert!(
        fallback > 0,
        "budget never ran out: spend {}",
        stats.spend()
    );
}

/// A ChatApi that answers like the simulator but slowly — lets tests put
/// a batch mid-flight deterministically.
struct SlowApi {
    llm: SimLlm,
    delay: Duration,
}

impl batcher::llm::ChatApi for SlowApi {
    fn complete(
        &self,
        request: &batcher::llm::ChatRequest,
    ) -> Result<batcher::llm::ChatResponse, batcher::llm::LlmError> {
        std::thread::sleep(self.delay);
        self.llm.complete(request)
    }
}

#[test]
fn identical_questions_in_flight_share_one_llm_call() {
    let service = Arc::new(ErService::start(
        Arc::new(SlowApi { llm: SimLlm::new(), delay: Duration::from_millis(400) }),
        bootstrap(),
        ServiceConfig {
            batch_size: 1, // flush immediately; the LLM call itself is slow
            ..config()
        },
    ));
    let question = crafted_questions(1).remove(0);

    let decisions: Vec<_> = std::thread::scope(|scope| {
        let first = {
            let service = Arc::clone(&service);
            let question = question.clone();
            scope.spawn(move || service.submit(&question))
        };
        // Let the first question's batch reach the (slow) LLM, then pile
        // two more identical questions on while it is in flight.
        std::thread::sleep(Duration::from_millis(150));
        let late: Vec<_> = (0..2)
            .map(|_| {
                let service = Arc::clone(&service);
                let question = question.clone();
                scope.spawn(move || service.submit(&question))
            })
            .collect();
        std::iter::once(first)
            .chain(late)
            .map(|h| h.join().unwrap())
            .collect()
    });

    let labels: Vec<_> = decisions.iter().map(|d| d.label).collect();
    assert!(
        labels.windows(2).all(|w| w[0] == w[1]),
        "contradictory answers: {labels:?}"
    );
    let stats = service.stats();
    assert_eq!(
        stats.api_calls, 1,
        "identical in-flight questions paid for extra LLM calls"
    );
    assert!(
        stats.coalesced_duplicates >= 2,
        "late duplicates were not coalesced"
    );
}

// ---------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------

fn post_match(addr: std::net::SocketAddr, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /match HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let (status, bytes) = read_response(&mut stream).unwrap();
    (status, String::from_utf8(bytes).unwrap())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\n\r\n").unwrap();
    read_response(&mut stream).unwrap()
}

#[test]
fn http_front_end_serves_match_stats_and_health() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        config(),
    ));
    let server = MatchServer::start(Arc::clone(&service), ServeOptions::default()).unwrap();
    let addr = server.addr();

    let body = r#"{"schema":["title","brand"],"left":["pliny the elder","russian river"],"right":["pliny the elder","russian river"]}"#;
    let (status, first) = post_match(addr, body);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains(r#""label":"matching""#), "{first}");

    // The byte-identical question again: served from the cache.
    let (_, second) = post_match(addr, body);
    assert!(second.contains(r#""source":"cache""#), "{second}");

    let (status, stats_bytes) = get(addr, "/stats");
    assert_eq!(status, 200);
    let stats: ServiceStats = serde_json::from_slice(&stats_bytes).unwrap();
    assert!(stats.cache_hits >= 1);
    assert_eq!(stats.submitted, 2);

    let (status, health) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health: HealthReport = serde_json::from_slice(&health).unwrap();
    // No WAL configured: healthy, nothing recovered, breaker closed.
    assert_eq!(health.status, "serving");
    assert!(!health.wal_enabled);
    assert_eq!(health.recovery_records_replayed, 0);
    assert_eq!(health.breaker, "closed");

    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    let (status, err) = post_match(addr, r#"{"schema":["a"],"left":["x","y"],"right":["z"]}"#);
    assert_eq!(status, 400, "{err}");
}

#[test]
fn http_front_end_serves_metrics_and_trace() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        config(),
    ));
    let server = MatchServer::start(Arc::clone(&service), ServeOptions::default()).unwrap();
    let addr = server.addr();

    let body = r#"{"schema":["title","brand"],"left":["pliny the elder","russian river"],"right":["pliny the elder","russian river"]}"#;
    let (status, answer) = post_match(addr, body);
    assert_eq!(status, 200, "{answer}");
    // Every answer echoes its lifecycle span id for /trace correlation.
    let trace_id: u64 = answer
        .split(r#""trace_id":"#)
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("no trace_id in {answer}"));
    assert!(trace_id > 0, "tracing should be on by default: {answer}");
    let (_, cached) = post_match(addr, body);
    assert!(cached.contains(r#""source":"cache""#), "{cached}");

    // /metrics: valid Prometheus text with the core histogram families.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(metrics).unwrap();
    let report = batcher::obs::lint(&text).unwrap_or_else(|issues| {
        panic!("/metrics fails promlint: {issues:?}");
    });
    let histogram_families = [
        "er_queue_wait_us",
        "er_plan_wall_us",
        "er_planner_lock_hold_us",
        "er_llm_call_us",
        "er_governor_reserve_us",
        "er_governor_settle_us",
        "er_answer_us",
        "er_batch_spend_micros",
        "er_batch_prompt_tokens",
    ];
    for family in histogram_families {
        assert!(
            text.contains(&format!("# TYPE {family} histogram")),
            "missing histogram family {family}"
        );
    }
    assert!(
        report.histograms >= 6,
        "expected >= 6 histogram families, lint saw {}",
        report.histograms
    );
    assert!(text.contains("er_questions_submitted_total 2"), "{text}");

    // /trace: the span behind the first answer is visible, complete from
    // `submitted` to `answered`, and correlated by the echoed id.
    let (status, trace) = get(addr, "/trace?n=8");
    assert_eq!(status, 200);
    let spans = String::from_utf8(trace).unwrap();
    assert!(
        spans.contains(&format!(r#""trace_id":{trace_id}"#)),
        "span {trace_id} not in {spans}"
    );
    assert!(spans.contains(r#""stage":"submitted""#), "{spans}");
    assert!(spans.contains(r#""stage":"answered""#), "{spans}");
}

#[test]
fn http_front_end_symmetric_pairs_share_the_cache_entry() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        config(),
    ));
    let server = MatchServer::start(Arc::clone(&service), ServeOptions::default()).unwrap();
    let addr = server.addr();

    let forward =
        r#"{"schema":["title"],"left":["guinness extra stout"],"right":["heady topper"]}"#;
    let mirrored =
        r#"{"schema":["title"],"left":["heady topper"],"right":["guinness extra stout"]}"#;
    let (_, first) = post_match(addr, forward);
    let (_, second) = post_match(addr, mirrored);
    assert!(second.contains(r#""source":"cache""#), "{second}");
    // Same canonical fingerprint on both answers.
    let fp = |s: &str| s.split(r#""fingerprint":""#).nth(1).unwrap()[..16].to_string();
    assert_eq!(fp(&first), fp(&second));
}
