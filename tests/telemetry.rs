//! End-to-end telemetry guarantees under concurrency: every submitted
//! question's lifecycle span reaches a terminal stage exactly once — on
//! the cache-hit, LLM, coalesced-duplicate and budget-denial paths — and
//! a scraper hammering `/metrics`, `/stats` and `/trace` can never stall
//! `submit`.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::{EntityPair, Money, PairId, Record, RecordId, Schema};
use batcher::er_service::{ErService, MatchDecision, ServiceConfig};
use batcher::llm::SimLlm;

fn bootstrap() -> Vec<batcher::er_core::LabeledPair> {
    generate(DatasetKind::Beer, 7).pairs()[..120].to_vec()
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(["title", "brand", "price"]).unwrap())
}

/// Unambiguous questions (identical records or fully disjoint text), so
/// answers are stable whatever batch they land in.
fn questions(n: usize) -> Vec<EntityPair> {
    let products = [
        "hazy little thing ipa",
        "guinness extra stout",
        "pliny the elder",
        "sierra nevada torpedo",
        "blue moon belgian white",
        "dogfish head 60 minute",
        "stone delicious ipa",
        "lagunitas daytime ale",
        "founders breakfast stout",
        "bells two hearted ale",
    ];
    (0..n)
        .map(|i| {
            let title = products[i % products.len()];
            let price = format!("{}.99", 2 + (i % 11));
            let left: Vec<String> = vec![title.into(), format!("brand{}", i % 7), price.clone()];
            let right: Vec<String> = if i % 2 == 0 {
                left.clone()
            } else {
                vec![
                    products[(i + 3) % products.len()].into(),
                    format!("other{}", i % 5),
                    "87.50".into(),
                ]
            };
            let a = Arc::new(Record::new(RecordId::a(i as u32), schema(), left).unwrap());
            let b = Arc::new(Record::new(RecordId::b(i as u32), schema(), right).unwrap());
            EntityPair::new(PairId(i as u32), a, b).unwrap()
        })
        .collect()
}

/// Runs `clients` threads, each submitting every question of its stripe
/// `rounds` times, and returns all decisions.
fn hammer(
    service: &Arc<ErService>,
    bank: &Arc<Vec<EntityPair>>,
    clients: usize,
    rounds: usize,
) -> Vec<MatchDecision> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let service = Arc::clone(service);
                let bank = Arc::clone(bank);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..rounds {
                        for q in bank
                            .iter()
                            .skip((client + round) % clients)
                            .step_by(clients.max(1))
                        {
                            out.push(service.submit(q));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Spans conserve under a duplicate-heavy concurrent workload: one span
/// per submit, every span finished exactly once (terminal stage
/// `answered`), none left active at quiesce, ids unique across clients.
#[test]
fn every_span_reaches_a_terminal_stage_exactly_once() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(3),
            batch_size: 4,
            workers: 3,
            trace_capacity: 4096,
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(30));
    let decisions = hammer(&service, &bank, 8, 6);

    let trace = service.telemetry().trace();
    assert_eq!(
        trace.opened(),
        decisions.len() as u64,
        "one span per submit"
    );
    assert_eq!(
        trace.finished(),
        trace.opened(),
        "a span leaked without reaching its terminal stage"
    );
    assert_eq!(trace.active_len(), 0, "active spans left at quiesce");

    // Every decision echoes a live, unique span id.
    let ids: HashSet<u64> = decisions.iter().map(|d| d.trace_id).collect();
    assert!(
        !ids.contains(&0),
        "a decision carried the disabled-trace id"
    );
    assert_eq!(ids.len(), decisions.len(), "span ids were reused");

    // Completed spans are well-formed: they open with `submitted`, close
    // with `answered`, and carry exactly one terminal stamp.
    let spans = trace.recent(4096);
    assert_eq!(spans.len() as u64, trace.finished() - trace.evicted());
    let mut coalesced_spans = 0u64;
    for span in &spans {
        assert_eq!(span.events.first().unwrap().stage, "submitted");
        assert_eq!(span.events.last().unwrap().stage, "answered");
        assert_eq!(
            span.events.iter().filter(|e| e.stage == "answered").count(),
            1,
            "span {} answered more than once: {:?}",
            span.trace_id,
            span.events
        );
        if span.events.iter().any(|e| e.stage == "coalesced") {
            coalesced_spans += 1;
        }
    }
    // The duplicate-heavy bank must exercise the coalescing paths, and
    // the span detail must agree with the service's own accounting.
    let stats = service.stats();
    assert!(
        stats.coalesced_duplicates > 0 && coalesced_spans > 0,
        "duplicate-heavy workload never coalesced: {stats:?}"
    );
}

/// Span conservation holds when the governor denies most batches: the
/// budget-denial path finishes spans through the fallback, exactly once.
#[test]
fn spans_conserve_under_budget_exhaustion() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(3),
            batch_size: 4,
            workers: 3,
            budget: Money::from_micros(2_000),
            cache_enabled: false, // every submit exercises the queue
            trace_capacity: 4096,
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(40));
    let decisions = hammer(&service, &bank, 6, 4);

    let trace = service.telemetry().trace();
    assert_eq!(trace.opened(), decisions.len() as u64);
    assert_eq!(trace.finished(), trace.opened());
    assert_eq!(trace.active_len(), 0);

    let stats = service.stats();
    assert!(stats.budget_denials > 0, "governor never denied: {stats:?}");
    // Denied questions still traced through to `answered` via `fallback`.
    let spans = trace.recent(4096);
    assert!(
        spans.iter().any(|s| s
            .events
            .iter()
            .any(|e| { e.stage == "answered" && e.detail.as_deref() == Some("fallback") })),
        "no span records the budget-denial fallback path"
    );
    // The denial counter surfaced in the Prometheus rendering too.
    let metrics = service.render_metrics();
    assert!(
        !metrics.contains("er_budget_denials_total 0"),
        "denials not visible at /metrics"
    );
}

/// Trace propagation under coalescing: two concurrent submits of the
/// same question share one LLM call. Both spans reach their terminal
/// stage, but the downstream LLM work is attributed to exactly one
/// trace — the coalesced span carries an `llm_shared` pointer at the
/// primary instead of claiming the shared child spans as its own.
#[test]
fn coalesced_waiters_share_one_llm_trace_attributed_once() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(50),
            batch_size: 8,
            workers: 1,
            cache_enabled: false, // both submits must exercise the queue
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(1));
    let pair = &bank[0];
    let (first, second) = std::thread::scope(|scope| {
        let a = scope.spawn(|| service.submit(pair));
        let b = scope.spawn(|| service.submit(pair));
        (a.join().unwrap(), b.join().unwrap())
    });

    let stats = service.stats();
    assert_eq!(stats.coalesced_duplicates, 1, "{stats:?}");
    assert_eq!(stats.llm_answered, 1, "one shared LLM answer: {stats:?}");
    assert_eq!(first.label, second.label, "coalesced answers must agree");

    let trace = service.telemetry().trace();
    let spans = [
        trace.find(first.trace_id).expect("first span retained"),
        trace.find(second.trace_id).expect("second span retained"),
    ];
    for span in &spans {
        assert_eq!(
            span.events.last().unwrap().stage,
            "answered",
            "span {} not terminal: {:?}",
            span.trace_id,
            span.events
        );
    }

    // Exactly one of the two spans rode the other's LLM call, and its
    // `llm_shared` stamp names the primary precisely.
    let shared: Vec<_> = spans
        .iter()
        .filter(|s| s.events.iter().any(|e| e.stage == "llm_shared"))
        .collect();
    assert_eq!(
        shared.len(),
        1,
        "shared-LLM attribution not exactly-once: {spans:?}"
    );
    let shared_id = shared[0].trace_id;
    let primary_id = if shared_id == first.trace_id {
        second.trace_id
    } else {
        first.trace_id
    };
    let pointer = shared[0]
        .events
        .iter()
        .find(|e| e.stage == "llm_shared")
        .and_then(|e| e.detail.clone())
        .expect("llm_shared carries the primary id");
    assert_eq!(pointer, primary_id.to_string());

    // The tree views agree: the coalesced span's tree points at the
    // primary with no children of its own; the primary's tree never
    // carries a shared reference.
    let shared_tree = service.trace_tree_json(shared_id).expect("shared tree");
    assert!(
        shared_tree.contains(&format!("\"shared_llm_trace\":{primary_id}")),
        "{shared_tree}"
    );
    assert!(shared_tree.contains("\"children\":[]"), "{shared_tree}");
    let primary_tree = service.trace_tree_json(primary_id).expect("primary tree");
    assert!(
        !primary_tree.contains("shared_llm_trace"),
        "primary must own its children: {primary_tree}"
    );
}

/// Scrapers hammering the registry, stats view and trace log in a tight
/// loop do not stall or corrupt concurrent submits: every submit still
/// completes and the answer-conservation identity holds exactly.
#[test]
fn slow_scraper_cannot_stall_submit() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(3),
            batch_size: 4,
            workers: 2,
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(24));
    let stop = AtomicBool::new(false);
    let scrapes = AtomicU64::new(0);

    let decisions = std::thread::scope(|scope| {
        // Four scraper threads in a zero-sleep loop — far nastier than
        // any real Prometheus scrape interval.
        for _ in 0..4 {
            let (service, stop, scrapes) = (Arc::clone(&service), &stop, &scrapes);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let text = service.render_metrics();
                    assert!(text.contains("er_questions_submitted_total"));
                    let _ = service.stats();
                    let _ = service.trace_json(64);
                    scrapes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let decisions = hammer(&service, &bank, 6, 5);
        stop.store(true, Ordering::Relaxed);
        decisions
    });

    assert!(scrapes.load(Ordering::Relaxed) > 0, "scrapers never ran");
    let stats = service.stats();
    assert_eq!(decisions.len() as u64, stats.submitted);
    assert_eq!(
        stats.submitted,
        stats.cache_hits
            + stats.coalesced_duplicates
            + stats.llm_answered
            + stats.fallback_answered,
        "scrape pressure corrupted answer accounting: {stats:?}"
    );
    let trace = service.telemetry().trace();
    assert_eq!(trace.finished(), trace.opened());
    assert_eq!(trace.active_len(), 0);

    // The final rendering is still lint-clean Prometheus text.
    batcher::obs::lint(&service.render_metrics()).expect("metrics lint clean under scrape load");
}
