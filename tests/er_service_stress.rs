//! Concurrency stress for the er-service coalescing queue and cost
//! governor: many client threads hammering a shared service with a
//! duplicate-heavy workload must produce exactly one answer per submit
//! (none lost, none contradictory under caching) while the governor's
//! reserve/settle accounting conserves the budget.

use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::{EntityPair, Money, PairId, Record, RecordId, Schema};
use batcher::er_service::{ErService, ServiceConfig};
use batcher::llm::SimLlm;

fn bootstrap() -> Vec<batcher::er_core::LabeledPair> {
    generate(DatasetKind::Beer, 7).pairs()[..120].to_vec()
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(["title", "brand", "price"]).unwrap())
}

/// Unambiguous questions (identical records or fully disjoint text), so
/// answers are stable whatever batch they land in.
fn questions(n: usize) -> Vec<EntityPair> {
    let products = [
        "hazy little thing ipa",
        "guinness extra stout",
        "pliny the elder",
        "sierra nevada torpedo",
        "blue moon belgian white",
        "dogfish head 60 minute",
        "stone delicious ipa",
        "lagunitas daytime ale",
        "founders breakfast stout",
        "bells two hearted ale",
    ];
    (0..n)
        .map(|i| {
            let title = products[i % products.len()];
            let price = format!("{}.99", 2 + (i % 11));
            let left: Vec<String> = vec![title.into(), format!("brand{}", i % 7), price.clone()];
            let right: Vec<String> = if i % 2 == 0 {
                left.clone()
            } else {
                vec![
                    products[(i + 3) % products.len()].into(),
                    format!("other{}", i % 5),
                    "87.50".into(),
                ]
            };
            let a = Arc::new(Record::new(RecordId::a(i as u32), schema(), left).unwrap());
            let b = Arc::new(Record::new(RecordId::b(i as u32), schema(), right).unwrap());
            EntityPair::new(PairId(i as u32), a, b).unwrap()
        })
        .collect()
}

/// Runs `clients` threads, each submitting every question of its stripe
/// `rounds` times, and returns all decisions.
fn hammer(
    service: &Arc<ErService>,
    bank: &Arc<Vec<EntityPair>>,
    clients: usize,
    rounds: usize,
) -> Vec<batcher::er_service::MatchDecision> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let service = Arc::clone(service);
                let bank = Arc::clone(bank);
                scope.spawn(move || {
                    // Cap the kernel thread budget on this client thread:
                    // any planning work it might run inline stays serial,
                    // one more configuration the conservation must hold in.
                    batcher::embed::par::with_max_threads(1 + client % 2, || {
                        let mut out = Vec::new();
                        for round in 0..rounds {
                            for q in bank
                                .iter()
                                .skip((client + round) % clients)
                                .step_by(clients.max(1))
                            {
                                out.push(service.submit(q));
                            }
                        }
                        out
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Every submission is answered exactly once and the service's own
/// accounting agrees: submitted = cache hits + coalesced + uniquely
/// answered (LLM or fallback). With the cache on, identical questions
/// can never receive contradictory labels.
#[test]
fn no_lost_or_duplicated_answers_under_concurrency() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(3),
            batch_size: 4,
            workers: 3,
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(30));
    let (clients, rounds) = (8usize, 6usize);
    let decisions = hammer(&service, &bank, clients, rounds);

    // No lost answers: one decision per submit, by construction of the
    // blocking API — the count also matches the service's own counter.
    let stats = service.stats();
    assert_eq!(decisions.len() as u64, stats.submitted);

    // No duplicated/contradictory answers: with the cache enabled, all
    // decisions for one fingerprint carry one label.
    let mut by_fp: std::collections::HashMap<_, Vec<_>> = std::collections::HashMap::new();
    for d in &decisions {
        by_fp.entry(d.fingerprint).or_default().push(d.label);
    }
    for (fp, labels) in &by_fp {
        assert!(
            labels.windows(2).all(|w| w[0] == w[1]),
            "fingerprint {fp} received contradictory labels: {labels:?}"
        );
    }

    // Answer conservation: every submission is exactly one of — a
    // submit-time cache hit, a flush-time coalesce (cache fill, in-flight
    // attach, within-flush or held-question duplicate), or a uniquely
    // answered question (LLM or fallback).
    assert_eq!(
        stats.submitted,
        stats.cache_hits
            + stats.coalesced_duplicates
            + stats.llm_answered
            + stats.fallback_answered,
        "answer accounting leaked or double-counted: {stats:?}"
    );
    assert!(stats.llm_answered > 0, "LLM path never exercised");
    assert!(stats.plans > 0);

    // Governor conservation at quiesce: every reservation settled or
    // released, so remaining + spent = budget exactly, within budget.
    assert!(stats.within_budget(), "overspent: {stats:?}");
    assert_eq!(
        stats.remaining_micros + stats.spent_micros,
        stats.budget_micros,
        "unsettled reservations at quiesce: {stats:?}"
    );
    assert_eq!(stats.spent_micros, stats.api_micros + stats.labeling_micros);
}

/// Same conservation laws under a budget small enough that the governor
/// denies most batches mid-run: spend never crosses the cap, denials are
/// served by the fallback, and nothing is lost.
#[test]
fn governor_conserves_budget_under_concurrent_exhaustion() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(3),
            batch_size: 4,
            workers: 3,
            budget: Money::from_micros(2_000),
            cache_enabled: false, // every submit exercises the queue
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(40));
    let decisions = hammer(&service, &bank, 6, 4);

    let stats = service.stats();
    assert_eq!(decisions.len() as u64, stats.submitted);
    assert_eq!(
        stats.submitted,
        stats.cache_hits
            + stats.coalesced_duplicates
            + stats.llm_answered
            + stats.fallback_answered,
        "answer accounting leaked or double-counted: {stats:?}"
    );
    assert!(
        stats.fallback_answered > 0,
        "budget never forced the fallback: {stats:?}"
    );
    assert!(stats.budget_denials > 0, "governor never denied: {stats:?}");
    assert!(stats.within_budget(), "spend crossed the cap: {stats:?}");
    assert_eq!(
        stats.remaining_micros + stats.spent_micros,
        stats.budget_micros,
        "unsettled reservations at quiesce: {stats:?}"
    );
}
