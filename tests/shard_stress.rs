//! Stress and recovery guarantees of the fingerprint-sharded serving
//! core: with many shards and many clients, answers stay exactly-once,
//! the global ledger conserves the budget across per-shard leases, and a
//! WAL written under one shard count restores cleanly under another with
//! zero cross-shard re-buys.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use batcher::datagen::{generate, DatasetKind};
use batcher::er_core::{EntityPair, Money, PairId, Record, RecordId, Schema};
use batcher::er_service::{ErService, ServiceConfig, SyncPolicy, WalConfig};
use batcher::llm::SimLlm;

fn bootstrap() -> Vec<batcher::er_core::LabeledPair> {
    generate(DatasetKind::Beer, 7).pairs()[..120].to_vec()
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(["title", "brand", "price"]).unwrap())
}

/// Unambiguous questions (identical records or fully disjoint text), so
/// answers are stable whatever batch — and whatever shard — they land in.
fn questions(n: usize) -> Vec<EntityPair> {
    let products = [
        "hazy little thing ipa",
        "guinness extra stout",
        "pliny the elder",
        "sierra nevada torpedo",
        "blue moon belgian white",
        "dogfish head 60 minute",
        "stone delicious ipa",
        "lagunitas daytime ale",
        "founders breakfast stout",
        "bells two hearted ale",
    ];
    (0..n)
        .map(|i| {
            let title = products[i % products.len()];
            let price = format!("{}.99", 2 + (i % 11));
            let left: Vec<String> = vec![title.into(), format!("brand{}", i % 7), price.clone()];
            let right: Vec<String> = if i % 2 == 0 {
                left.clone()
            } else {
                vec![
                    products[(i + 3) % products.len()].into(),
                    format!("other{}", i % 5),
                    "87.50".into(),
                ]
            };
            let a = Arc::new(Record::new(RecordId::a(i as u32), schema(), left).unwrap());
            let b = Arc::new(Record::new(RecordId::b(i as u32), schema(), right).unwrap());
            EntityPair::new(PairId(i as u32), a, b).unwrap()
        })
        .collect()
}

/// Runs `clients` threads, each submitting every question of its stripe
/// `rounds` times, and returns all decisions.
fn hammer(
    service: &Arc<ErService>,
    bank: &Arc<Vec<EntityPair>>,
    clients: usize,
    rounds: usize,
) -> Vec<batcher::er_service::MatchDecision> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let service = Arc::clone(service);
                let bank = Arc::clone(bank);
                scope.spawn(move || {
                    batcher::embed::par::with_max_threads(1 + client % 2, || {
                        let mut out = Vec::new();
                        for round in 0..rounds {
                            for q in bank
                                .iter()
                                .skip((client + round) % clients)
                                .step_by(clients.max(1))
                            {
                                out.push(service.submit(q));
                            }
                        }
                        out
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("er-shard-stress-{tag}-{}", std::process::id()))
}

/// The sharded layout keeps every unsharded guarantee: with 8 shards and
/// 8 client threads, each submit gets exactly one decision, one
/// fingerprint never receives contradictory labels, the service's own
/// accounting identity holds, and quiesce-time budget conservation is
/// exact — pass-through leases make shard accounting byte-identical to
/// the global ledger's.
#[test]
fn eight_shards_conserve_answers_and_budget() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(3),
            batch_size: 4,
            workers: 3,
            shards: 8,
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(40));
    let decisions = hammer(&service, &bank, 8, 6);

    let stats = service.stats();
    assert_eq!(stats.shards, 8);
    assert_eq!(decisions.len() as u64, stats.submitted);

    // One fingerprint, one label — routing is fingerprint-pure, so every
    // duplicate (and mirrored pair) lands on the shard that owns the
    // answer, and the cache can never serve a contradiction.
    let mut by_fp: std::collections::HashMap<_, Vec<_>> = std::collections::HashMap::new();
    for d in &decisions {
        by_fp.entry(d.fingerprint).or_default().push(d.label);
    }
    for (fp, labels) in &by_fp {
        assert!(
            labels.windows(2).all(|w| w[0] == w[1]),
            "fingerprint {fp} received contradictory labels: {labels:?}"
        );
    }

    // Exactly-once answers, summed across 8 independent shard pipelines.
    assert_eq!(
        stats.submitted,
        stats.cache_hits
            + stats.coalesced_duplicates
            + stats.llm_answered
            + stats.fallback_answered,
        "answer accounting leaked or double-counted across shards: {stats:?}"
    );
    assert!(stats.llm_answered > 0, "LLM path never exercised");
    assert!(stats.plans > 0);

    // Global ledger conservation at quiesce. Pass-through leases
    // (`lease_chunk == 0`) hold no budget, so this is exact with no
    // lease return step — and never refilled.
    assert_eq!(stats.lease_refills, 0, "{stats:?}");
    assert!(stats.within_budget(), "overspent: {stats:?}");
    assert_eq!(
        stats.remaining_micros + stats.spent_micros,
        stats.budget_micros,
        "unsettled reservations at quiesce: {stats:?}"
    );
    assert_eq!(stats.spent_micros, stats.api_micros + stats.labeling_micros);
}

/// Chunked leases buffer budget shard-locally (fewer global reserve-lock
/// acquisitions), which parks unspent budget in the leases at quiesce.
/// Handing the leases back must restore exact conservation: the chunks
/// were moved, never duplicated or leaked.
#[test]
fn chunked_leases_conserve_budget_after_return() {
    let service = Arc::new(ErService::start(
        Arc::new(SimLlm::new()),
        bootstrap(),
        ServiceConfig {
            flush_deadline: Duration::from_millis(3),
            batch_size: 4,
            workers: 3,
            shards: 8,
            lease_chunk: Money::from_micros(60_000),
            ..ServiceConfig::default()
        },
    ));
    let bank = Arc::new(questions(40));
    let decisions = hammer(&service, &bank, 6, 4);

    let stats = service.stats();
    assert_eq!(decisions.len() as u64, stats.submitted);
    assert_eq!(
        stats.submitted,
        stats.cache_hits
            + stats.coalesced_duplicates
            + stats.llm_answered
            + stats.fallback_answered,
        "answer accounting leaked or double-counted: {stats:?}"
    );
    assert!(stats.llm_answered > 0, "LLM path never exercised");
    assert!(
        stats.lease_refills > 0,
        "chunked mode never refilled a lease: {stats:?}"
    );
    assert!(stats.within_budget(), "overspent: {stats:?}");

    // At quiesce the leases may still hold unspent chunks — globally
    // reserved, so `remaining` undercounts. Returning them closes the
    // books exactly.
    service.return_leases();
    let settled = service.stats();
    assert_eq!(settled.spent_micros, stats.spent_micros);
    assert_eq!(
        settled.remaining_micros + settled.spent_micros,
        settled.budget_micros,
        "lease return did not restore conservation: {settled:?}"
    );
    assert_eq!(
        settled.spent_micros,
        settled.api_micros + settled.labeling_micros
    );
}

/// Cross-shard durability: a WAL written under 8 shards restores into a
/// 2-shard service with zero re-buys. Routing is a pure repartition of
/// the fingerprint space, so recovery fans each journaled answer out to
/// its *new* owner — no answer is orphaned on a shard that no longer
/// exists, and no shard double-buys a question another shard already
/// settled.
#[test]
fn restart_under_different_shard_count_rebuys_nothing() {
    let dir = temp_dir("reshard");
    let _ = std::fs::remove_dir_all(&dir);
    let bank = questions(24);
    let config = |shards: usize| ServiceConfig {
        flush_deadline: Duration::from_millis(3),
        batch_size: 4,
        workers: 2,
        shards,
        wal: Some(WalConfig { sync: SyncPolicy::Always, ..WalConfig::at(&dir) }),
        ..ServiceConfig::default()
    };

    let (spent_run1, llm_answered_run1, api_calls_run1) = {
        let service = ErService::start(Arc::new(SimLlm::new()), bootstrap(), config(8));
        for q in &bank {
            service.submit(q);
        }
        let stats = service.stats();
        assert_eq!(stats.shards, 8);
        assert!(stats.wal_enabled);
        assert_eq!(stats.wal_append_errors, 0);
        assert!(
            stats.llm_answered > 0,
            "run 1 never bought an answer: {stats:?}"
        );
        // Every unique question was LLM-answered (none leaked to the
        // fallback), so run 2's zero-buy assertion below is meaningful.
        assert_eq!(stats.fallback_answered, 0, "{stats:?}");
        (stats.spent_micros, stats.llm_answered, stats.api_calls)
    };

    // Restart the same log under a quarter of the shards.
    let service = ErService::start(Arc::new(SimLlm::new()), bootstrap(), config(2));
    let recovery = service.health();
    assert_eq!(recovery.shards, 2);
    assert!(recovery.recovery_records_replayed > 0, "{recovery:?}");
    assert_eq!(
        recovery.recovery_answers_restored, llm_answered_run1,
        "re-sharded replay restored a different answer set than run 1 bought"
    );
    for q in &bank {
        service.submit(q);
    }
    let stats = service.stats();
    // Zero cross-shard re-buys: every question routed to a new owner
    // whose cache partition already holds the replayed answer.
    assert_eq!(
        stats.llm_answered, 0,
        "re-sharded restart re-bought answers: {stats:?}"
    );
    assert_eq!(stats.fallback_answered, 0, "{stats:?}");
    assert_eq!(stats.api_calls, api_calls_run1, "{stats:?}");
    assert!(stats.cache_hits >= bank.len() as u64, "{stats:?}");
    // The replayed spend counts against the budget exactly once.
    assert_eq!(stats.spent_micros, spent_run1, "{stats:?}");
    assert_eq!(
        stats.remaining_micros + stats.spent_micros,
        stats.budget_micros,
        "replayed ledger broke conservation: {stats:?}"
    );
    drop(service);
    std::fs::remove_dir_all(&dir).unwrap();
}
