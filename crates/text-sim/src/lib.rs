//! String similarity kernels for entity resolution.
//!
//! The BatchER paper's structure-aware feature extractor (§III-B) maps each
//! attribute pair to a similarity score using either the Levenshtein ratio
//! (Eq. 5) or Jaccard over token sets (Eq. 4). This crate implements those
//! two kernels plus the wider toolbox an ER system needs: Jaro/Jaro-Winkler,
//! Monge-Elkan, TF-IDF cosine, q-gram profiles, overlap coefficient, and
//! the tokenizers/normalizers they share.
//!
//! All similarity functions return values in `[0, 1]` where `1` means
//! identical, and are total (never panic) on arbitrary UTF-8 input.

pub mod jaccard;
pub mod jaro;
pub mod levenshtein;
pub mod monge_elkan;
pub mod normalize;
pub mod qgram;
pub mod tfidf;
pub mod tokenize;

pub use jaccard::{jaccard_chars, jaccard_tokens, overlap_coefficient};
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{levenshtein, levenshtein_ratio, normalized_levenshtein};
pub use monge_elkan::monge_elkan;
pub use normalize::normalize;
pub use qgram::{qgram_cosine, qgram_profile};
pub use tfidf::TfIdfModel;
pub use tokenize::{qgrams, word_tokens};
