//! Corpus-weighted TF-IDF cosine similarity.

use std::collections::BTreeMap;

use crate::tokenize::word_tokens;

/// A TF-IDF weighting model fitted on a corpus of strings.
///
/// Tokens that occur in many corpus documents (e.g. "music" in a song
/// dataset) receive low weight, so rare, discriminative tokens dominate
/// similarity — the behaviour ER blockers rely on.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    doc_freq: BTreeMap<String, u32>,
    n_docs: u32,
}

impl TfIdfModel {
    /// Fits document frequencies over an iterator of documents.
    pub fn fit<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut doc_freq: BTreeMap<String, u32> = BTreeMap::new();
        let mut n_docs = 0u32;
        for doc in docs {
            n_docs += 1;
            let mut seen: Vec<String> = word_tokens(doc);
            seen.sort_unstable();
            seen.dedup();
            for tok in seen {
                *doc_freq.entry(tok).or_insert(0) += 1;
            }
        }
        Self { doc_freq, n_docs }
    }

    /// Number of documents the model was fitted on.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Smoothed inverse document frequency of a token:
    /// `ln((1 + N) / (1 + df)) + 1`.
    ///
    /// Unseen tokens get the maximum weight, which is the right behaviour
    /// for out-of-corpus query strings.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        ((1.0 + self.n_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// TF-IDF weighted vector of a string: token → tf × idf.
    pub fn vector(&self, s: &str) -> BTreeMap<String, f64> {
        let mut tf: BTreeMap<String, f64> = BTreeMap::new();
        for tok in word_tokens(s) {
            *tf.entry(tok).or_insert(0.0) += 1.0;
        }
        for (tok, v) in tf.iter_mut() {
            *v *= self.idf(tok);
        }
        tf
    }

    /// Cosine similarity between the TF-IDF vectors of two strings.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        if va.is_empty() && vb.is_empty() {
            return 1.0;
        }
        if va.is_empty() || vb.is_empty() {
            return 0.0;
        }
        let dot: f64 = va
            .iter()
            .filter_map(|(t, &wa)| vb.get(t).map(|&wb| wa * wb))
            .sum();
        let na = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TfIdfModel {
        TfIdfModel::fit([
            "rock music album",
            "pop music single",
            "jazz music live",
            "quantum computing paper",
        ])
    }

    #[test]
    fn common_tokens_weigh_less() {
        let m = model();
        assert!(m.idf("music") < m.idf("quantum"));
        assert!(m.idf("unseen-token") >= m.idf("quantum"));
    }

    #[test]
    fn cosine_identical_is_one() {
        let m = model();
        assert!((m.cosine("rock music", "rock music") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let m = model();
        assert_eq!(m.cosine("rock", "quantum"), 0.0);
    }

    #[test]
    fn rare_token_dominates() {
        let m = model();
        // Sharing the rare "quantum" token scores higher than sharing the
        // ubiquitous "music" token.
        let rare = m.cosine("quantum theory", "quantum mechanics");
        let common = m.cosine("music theory", "music mechanics");
        assert!(rare > common, "rare {rare} <= common {common}");
    }

    #[test]
    fn empty_conventions() {
        let m = model();
        assert_eq!(m.cosine("", ""), 1.0);
        assert_eq!(m.cosine("rock", ""), 0.0);
    }

    #[test]
    fn n_docs_counted() {
        assert_eq!(model().n_docs(), 4);
    }
}
