//! Character q-gram profiles and the cosine similarity between them.

use std::collections::BTreeMap;

use crate::tokenize::qgrams;

/// The q-gram frequency profile of a string: gram → count.
pub fn qgram_profile(s: &str, q: usize) -> BTreeMap<String, u32> {
    let mut profile = BTreeMap::new();
    for g in qgrams(s, q) {
        *profile.entry(g).or_insert(0) += 1;
    }
    profile
}

/// Cosine similarity between the q-gram count vectors of two strings.
///
/// Robust to token order and small edits, cheap to compute; used by the
/// blocker for candidate scoring.
pub fn qgram_cosine(a: &str, b: &str, q: usize) -> f64 {
    let pa = qgram_profile(a, q);
    let pb = qgram_profile(b, q);
    if pa.is_empty() && pb.is_empty() {
        return 1.0;
    }
    if pa.is_empty() || pb.is_empty() {
        return 0.0;
    }
    let dot: f64 = pa
        .iter()
        .filter_map(|(g, &ca)| pb.get(g).map(|&cb| ca as f64 * cb as f64))
        .sum();
    let na: f64 = pa
        .values()
        .map(|&c| (c as f64) * (c as f64))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = pb
        .values()
        .map(|&c| (c as f64) * (c as f64))
        .sum::<f64>()
        .sqrt();
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_repeats() {
        let p = qgram_profile("aaaa", 2);
        assert_eq!(p.get("aa"), Some(&3));
    }

    #[test]
    fn identical_scores_one() {
        assert!((qgram_cosine("walmart", "walmart", 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_scores_zero() {
        assert_eq!(qgram_cosine("abc", "xyz", 2), 0.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(qgram_cosine("", "", 3), 1.0);
        assert_eq!(qgram_cosine("abc", "", 3), 0.0);
    }

    #[test]
    fn small_edit_keeps_high_similarity() {
        let s = qgram_cosine("samsung galaxy s21", "samsung galxy s21", 3);
        assert!(s > 0.7, "got {s}");
    }

    #[test]
    fn bounded() {
        for (a, b) in [("ab", "ba"), ("night", "nacht"), ("a", "a b c")] {
            let s = qgram_cosine(a, b, 2);
            assert!((0.0..=1.0 + 1e-12).contains(&s));
        }
    }
}
