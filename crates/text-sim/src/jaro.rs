//! Jaro and Jaro-Winkler similarity.

/// Jaro similarity in `[0, 1]`.
///
/// Counts matching characters within the standard window
/// `max(|a|,|b|)/2 − 1` and transpositions among them.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    if a_chars.is_empty() && b_chars.is_empty() {
        return 1.0;
    }
    if a_chars.is_empty() || b_chars.is_empty() {
        return 0.0;
    }
    let window = (a_chars.len().max(b_chars.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b_chars.len()];
    let mut matches = 0usize;
    let mut a_matched: Vec<char> = Vec::new();
    for (i, &ca) in a_chars.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b_chars.len());
        for j in lo..hi {
            if !b_used[j] && b_chars[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push(ca);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let b_matched: Vec<char> = b_chars
        .iter()
        .zip(&b_used)
        .filter_map(|(&c, &used)| used.then_some(c))
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(&b_matched)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a_chars.len() as f64 + m / b_chars.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of shared
/// prefix with the standard scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        // Standard worked examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.9444));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.7667));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.9611));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.8133));
    }

    #[test]
    fn identical_and_empty() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn winkler_never_below_jaro() {
        for (a, b) in [("prefix", "preface"), ("apple", "apply"), ("cat", "hat")] {
            assert!(jaro_winkler(a, b) >= jaro(a, b));
        }
    }

    #[test]
    fn symmetric() {
        assert!(close(jaro("CRATE", "TRACE"), jaro("TRACE", "CRATE")));
    }

    #[test]
    fn bounded() {
        for (a, b) in [("a", "ab"), ("frog", "fog"), ("x", "y"), ("aaaa", "aa")] {
            let s = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&s), "{s} out of range for {a}/{b}");
        }
    }
}
