//! Jaccard similarity over token sets (Eq. 4) and related set measures.

use std::collections::BTreeSet;

use crate::tokenize::word_tokens;

/// Jaccard similarity over normalized word-token sets (Eq. 4):
/// `JAC(a, b) = |A ∩ B| / |A ∪ B|`.
///
/// Two empty values are defined as identical (`1.0`); one empty and one
/// non-empty value score `0.0`.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: BTreeSet<String> = word_tokens(a).into_iter().collect();
    let sb: BTreeSet<String> = word_tokens(b).into_iter().collect();
    jaccard_sets(&sa, &sb)
}

/// Jaccard similarity over the sets of characters of the normalized
/// strings. Useful for single-token values where word Jaccard is 0/1.
pub fn jaccard_chars(a: &str, b: &str) -> f64 {
    let sa: BTreeSet<char> = crate::normalize::normalize(a).chars().collect();
    let sb: BTreeSet<char> = crate::normalize::normalize(b).chars().collect();
    jaccard_sets(&sa, &sb)
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over word-token sets.
///
/// Less sensitive than Jaccard to one value being a long superset of the
/// other (common with product titles carrying extra marketing tokens).
pub fn overlap_coefficient(a: &str, b: &str) -> f64 {
    let sa: BTreeSet<String> = word_tokens(a).into_iter().collect();
    let sb: BTreeSet<String> = word_tokens(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let min = sa.len().min(sb.len());
    if min == 0 {
        return 0.0;
    }
    sa.intersection(&sb).count() as f64 / min as f64
}

fn jaccard_sets<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(jaccard_tokens("red apple", "red apple"), 1.0);
        assert_eq!(jaccard_chars("abc", "abc"), 1.0);
        assert_eq!(overlap_coefficient("red apple", "red apple"), 1.0);
    }

    #[test]
    fn disjoint_strings() {
        assert_eq!(jaccard_tokens("alpha beta", "gamma delta"), 0.0);
        assert_eq!(overlap_coefficient("alpha", "beta"), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {red, apple} vs {red, pear}: inter 1, union 3.
        assert!((jaccard_tokens("red apple", "red pear") - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a", ""), 0.0);
        assert_eq!(overlap_coefficient("", ""), 1.0);
        assert_eq!(overlap_coefficient("a", ""), 0.0);
    }

    #[test]
    fn normalization_applies() {
        // "Dance,Music" tokenizes to {dance, music}.
        assert_eq!(jaccard_tokens("Dance,Music", "dance music"), 1.0);
    }

    #[test]
    fn char_jaccard_on_anagrams() {
        // listen/silent share the same character set.
        assert_eq!(jaccard_chars("listen", "silent"), 1.0);
    }

    #[test]
    fn overlap_superset_scores_one() {
        assert_eq!(
            overlap_coefficient("apple iphone 13 pro max 256gb", "iphone 13"),
            1.0
        );
        assert!(jaccard_tokens("apple iphone 13 pro max 256gb", "iphone 13") < 0.5);
    }
}
