//! Tokenizers: word tokens and character q-grams.

use crate::normalize::normalize;

/// Splits a string into normalized word tokens.
///
/// This is the tokenization used by the Jaccard kernel (Eq. 4): values are
/// normalized, then split on whitespace.
pub fn word_tokens(s: &str) -> Vec<String> {
    normalize(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Produces the multiset of character q-grams of the normalized string.
///
/// Strings shorter than `q` yield a single gram containing the whole
/// string (padding-free convention), so very short values still compare
/// non-trivially. `q = 0` is treated as `q = 1`.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    let norm = normalize(s);
    let chars: Vec<char> = norm.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= q {
        return vec![norm];
    }
    chars
        .windows(q)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokens_normalize_first() {
        assert_eq!(
            word_tokens("Dance,Music,Hip-Hop"),
            vec!["dance", "music", "hip", "hop"]
        );
    }

    #[test]
    fn word_tokens_empty() {
        assert!(word_tokens("").is_empty());
        assert!(word_tokens("...").is_empty());
    }

    #[test]
    fn trigram_count() {
        // "abcde" -> abc, bcd, cde
        assert_eq!(qgrams("abcde", 3), vec!["abc", "bcd", "cde"]);
    }

    #[test]
    fn short_string_whole_gram() {
        assert_eq!(qgrams("ab", 3), vec!["ab"]);
        assert_eq!(qgrams("", 3), Vec::<String>::new());
    }

    #[test]
    fn q_zero_is_unigrams() {
        assert_eq!(qgrams("abc", 0), vec!["a", "b", "c"]);
    }

    #[test]
    fn qgrams_are_multiset() {
        // repeated grams preserved: "aaaa" -> aa, aa, aa
        assert_eq!(qgrams("aaaa", 2), vec!["aa", "aa", "aa"]);
    }
}
