//! Levenshtein edit distance and the paper's Levenshtein ratio (Eq. 5).
//!
//! The distance runs Myers' bit-parallel algorithm (one word op per text
//! character instead of a DP row) whenever the shorter string fits a
//! 64-bit word — which covers every attribute value the feature
//! extractors compare — and falls back to the classic two-row DP beyond
//! that. Both paths compute the exact same distance.

/// Levenshtein edit distance: the minimum number of single-character
/// insertions, deletions and substitutions transforming `a` into `b`,
/// operating on Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    // ASCII fast path: bytes are scalar values, no char collection.
    if a.is_ascii() && b.is_ascii() {
        let (short, long) = if a.len() <= b.len() {
            (a.as_bytes(), b.as_bytes())
        } else {
            (b.as_bytes(), a.as_bytes())
        };
        if short.is_empty() {
            return long.len();
        }
        if short.len() <= 64 {
            return myers_ascii(short, long);
        }
        return dp(short, long);
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars[..], &b_chars[..])
    } else {
        (&b_chars[..], &a_chars[..])
    };
    if short.is_empty() {
        return long.len();
    }
    if short.len() <= 64 {
        return myers_chars(short, long);
    }
    dp(short, long)
}

/// Myers (1999) bit-parallel edit distance, ASCII pattern ≤ 64 bytes.
fn myers_ascii(pattern: &[u8], text: &[u8]) -> usize {
    let mut peq = [0u64; 256];
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    myers_core(pattern.len(), text.iter().map(|&c| peq[c as usize]))
}

/// Myers bit-parallel edit distance for Unicode patterns ≤ 64 chars
/// (per-char mask table in a small sorted vec).
fn myers_chars(pattern: &[char], text: &[char]) -> usize {
    let mut peq: Vec<(char, u64)> = Vec::with_capacity(pattern.len());
    for (i, &c) in pattern.iter().enumerate() {
        match peq.binary_search_by_key(&c, |&(k, _)| k) {
            Ok(pos) => peq[pos].1 |= 1u64 << i,
            Err(pos) => peq.insert(pos, (c, 1u64 << i)),
        }
    }
    myers_core(
        pattern.len(),
        text.iter().map(|&c| {
            peq.binary_search_by_key(&c, |&(k, _)| k)
                .map_or(0, |pos| peq[pos].1)
        }),
    )
}

/// The shared Myers recurrence over the text's pattern-match masks.
fn myers_core(m: usize, eq_masks: impl Iterator<Item = u64>) -> usize {
    debug_assert!((1..=64).contains(&m));
    let mut pv: u64 = if m == 64 { !0 } else { (1u64 << m) - 1 };
    let mut mv: u64 = 0;
    let mut score = m;
    let high = 1u64 << (m - 1);
    for eq in eq_masks {
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & high != 0 {
            score += 1;
        } else if mh & high != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Two-row dynamic program, O(|short|·|long|) time — the fallback for
/// strings longer than one machine word.
fn dp<T: PartialEq + Copy>(short: &[T], long: &[T]) -> usize {
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub_cost = if lc == sc { 0 } else { 1 };
            cur[j + 1] = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// The paper's Levenshtein ratio (Eq. 5):
/// `LR(a, b) = 1 − LED(a, b) / s` where `s = |a| + |b|`.
///
/// Returns `1.0` for two empty strings (identical), and is guaranteed to
/// lie in `[0, 1]` because `LED ≤ max(|a|, |b|) ≤ s`.
pub fn levenshtein_ratio(a: &str, b: &str) -> f64 {
    let s = a.chars().count() + b.chars().count();
    if s == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / s as f64
}

/// Conventional normalized Levenshtein similarity:
/// `1 − LED(a, b) / max(|a|, |b|)`.
///
/// Sharper than [`levenshtein_ratio`] (it reaches 0 for totally different
/// equal-length strings); provided for ablation against the paper's Eq. 5.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("listen", "silent"),
            levenshtein("silent", "listen")
        );
    }

    #[test]
    fn unicode_scalars_not_bytes() {
        // One substitution between two 2-char strings of multibyte chars.
        assert_eq!(levenshtein("héllo", "hållo"), 1);
        assert_eq!(levenshtein("日本", "日木"), 1);
    }

    #[test]
    fn ratio_matches_eq5() {
        // listen/silent: LED = 4, s = 12 -> 1 - 4/12 = 2/3.
        assert_eq!(levenshtein("listen", "silent"), 4);
        assert!((levenshtein_ratio("listen", "silent") - (1.0 - 4.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn ratio_bounds() {
        assert_eq!(levenshtein_ratio("", ""), 1.0);
        assert_eq!(levenshtein_ratio("abc", "abc"), 1.0);
        let r = levenshtein_ratio("abc", "xyz");
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn normalized_reaches_zero() {
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("ab", ""), 0.0);
    }

    #[test]
    fn example5_title_similarity() {
        // Example 5 of the paper: LR("Rashi", "Rashi") = 1.
        assert_eq!(levenshtein_ratio("Rashi", "Rashi"), 1.0);
    }

    /// Exhaustive cross-check: the bit-parallel path must equal the DP on
    /// a deterministic battery spanning lengths 0..70, shared prefixes,
    /// repeats, and disjoint alphabets.
    #[test]
    fn myers_matches_dp_battery() {
        let dp_reference = |a: &str, b: &str| -> usize {
            let a_chars: Vec<char> = a.chars().collect();
            let b_chars: Vec<char> = b.chars().collect();
            let (short, long) = if a_chars.len() <= b_chars.len() {
                (&a_chars[..], &b_chars[..])
            } else {
                (&b_chars[..], &a_chars[..])
            };
            if short.is_empty() {
                return long.len();
            }
            dp(short, long)
        };
        struct Rng(u64);
        impl Rng {
            fn next(&mut self, n: usize) -> usize {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                (self.0 % n as u64) as usize
            }
            fn string(&mut self, alphabet: &[char], len: usize, span: usize) -> String {
                (0..len).map(|_| alphabet[self.next(span.max(1))]).collect()
            }
        }
        let mut rng = Rng(0x2545_F491_4F6C_DD1D);
        let alphabet: Vec<char> = "abcdxyz日本éß".chars().collect();
        for case in 0..400 {
            let la = rng.next(70);
            let lb = rng.next(70);
            // Narrow alphabets force repeats and near-matches.
            let span = 2 + case % (alphabet.len() - 1);
            let a = rng.string(&alphabet, la, span);
            let b = rng.string(&alphabet, lb, span);
            assert_eq!(
                levenshtein(&a, &b),
                dp_reference(&a, &b),
                "divergence on {a:?} vs {b:?}"
            );
        }
        // Exactly 64 and 65 chars: the word-width boundary.
        let base = "a".repeat(64);
        let longer = format!("{base}b");
        assert_eq!(levenshtein(&base, &longer), 1);
        assert_eq!(levenshtein(&longer, &base), 1);
        assert_eq!(levenshtein(&base, &base), 0);
    }
}
