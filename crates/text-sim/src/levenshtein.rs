//! Levenshtein edit distance and the paper's Levenshtein ratio (Eq. 5).

/// Levenshtein edit distance: the minimum number of single-character
/// insertions, deletions and substitutions transforming `a` into `b`.
///
/// Two-row dynamic program, O(|a|·|b|) time and O(min(|a|,|b|)) space,
/// operating on Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension to minimize the rows.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub_cost = if lc == sc { 0 } else { 1 };
            cur[j + 1] = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// The paper's Levenshtein ratio (Eq. 5):
/// `LR(a, b) = 1 − LED(a, b) / s` where `s = |a| + |b|`.
///
/// Returns `1.0` for two empty strings (identical), and is guaranteed to
/// lie in `[0, 1]` because `LED ≤ max(|a|, |b|) ≤ s`.
pub fn levenshtein_ratio(a: &str, b: &str) -> f64 {
    let s = a.chars().count() + b.chars().count();
    if s == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / s as f64
}

/// Conventional normalized Levenshtein similarity:
/// `1 − LED(a, b) / max(|a|, |b|)`.
///
/// Sharper than [`levenshtein_ratio`] (it reaches 0 for totally different
/// equal-length strings); provided for ablation against the paper's Eq. 5.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("listen", "silent"),
            levenshtein("silent", "listen")
        );
    }

    #[test]
    fn unicode_scalars_not_bytes() {
        // One substitution between two 2-char strings of multibyte chars.
        assert_eq!(levenshtein("héllo", "hållo"), 1);
        assert_eq!(levenshtein("日本", "日木"), 1);
    }

    #[test]
    fn ratio_matches_eq5() {
        // listen/silent: LED = 4, s = 12 -> 1 - 4/12 = 2/3.
        assert_eq!(levenshtein("listen", "silent"), 4);
        assert!((levenshtein_ratio("listen", "silent") - (1.0 - 4.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn ratio_bounds() {
        assert_eq!(levenshtein_ratio("", ""), 1.0);
        assert_eq!(levenshtein_ratio("abc", "abc"), 1.0);
        let r = levenshtein_ratio("abc", "xyz");
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn normalized_reaches_zero() {
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("ab", ""), 0.0);
    }

    #[test]
    fn example5_title_similarity() {
        // Example 5 of the paper: LR("Rashi", "Rashi") = 1.
        assert_eq!(levenshtein_ratio("Rashi", "Rashi"), 1.0);
    }
}
