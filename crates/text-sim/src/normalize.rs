//! Text normalization shared by all similarity kernels.

/// Normalizes a string for comparison: lowercases, maps punctuation to
/// spaces, and collapses runs of whitespace to single spaces.
///
/// ER attribute values arrive with inconsistent casing and punctuation
/// ("Here Comes The Fuzz [Explicit]" vs "Here Comes the Fuzz"); comparing
/// normalized forms makes the similarity kernels measure content rather
/// than formatting.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true;
    for ch in s.chars() {
        let mapped = if ch.is_alphanumeric() {
            Some(ch.to_ascii_lowercase())
        } else if ch.is_whitespace() || ch.is_ascii_punctuation() {
            None
        } else {
            // Keep non-ASCII symbols verbatim; they carry signal in some
            // domains (e.g. trademark glyphs).
            Some(ch)
        };
        match mapped {
            Some(c) => {
                out.push(c);
                last_was_space = false;
            }
            None => {
                if !last_was_space {
                    out.push(' ');
                    last_was_space = true;
                }
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(
            normalize("Here Comes The Fuzz [Explicit]"),
            "here comes the fuzz explicit"
        );
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(normalize("  a \t b\n\nc  "), "a b c");
    }

    #[test]
    fn empty_and_punct_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!! ... ---"), "");
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(normalize("iPhone-13 (128GB)"), "iphone 13 128gb");
    }

    #[test]
    fn idempotent() {
        let once = normalize("Mixed CASE, punct.!");
        assert_eq!(normalize(&once), once);
    }
}
