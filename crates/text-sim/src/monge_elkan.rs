//! Monge-Elkan token-level similarity.

use crate::tokenize::word_tokens;

/// Monge-Elkan similarity: for each token of `a`, take the best inner
/// similarity against any token of `b`, then average; symmetrized by
/// taking the mean of both directions.
///
/// `inner` is the per-token similarity kernel (e.g. [`crate::jaro_winkler`]
/// or [`crate::levenshtein_ratio`]).
pub fn monge_elkan<F>(a: &str, b: &str, inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    let ta = word_tokens(a);
    let tb = word_tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter()
            .map(|x| ys.iter().map(|y| inner(x, y)).fold(0.0f64, f64::max))
            .sum::<f64>()
            / xs.len() as f64
    };
    (dir(&ta, &tb) + dir(&tb, &ta)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaro_winkler;

    #[test]
    fn identical_tokens_score_one() {
        assert_eq!(monge_elkan("red apple", "apple red", jaro_winkler), 1.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(monge_elkan("", "", jaro_winkler), 1.0);
        assert_eq!(monge_elkan("a", "", jaro_winkler), 0.0);
    }

    #[test]
    fn tolerant_of_typos() {
        let s = monge_elkan("paul johnson", "pual jonson", jaro_winkler);
        assert!(s > 0.85, "typo-tolerant similarity too low: {s}");
    }

    #[test]
    fn bounded_and_symmetric() {
        let ab = monge_elkan("comptr sci", "computer science", jaro_winkler);
        let ba = monge_elkan("computer science", "comptr sci", jaro_winkler);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn inner_kernel_pluggable() {
        let exact = |x: &str, y: &str| if x == y { 1.0 } else { 0.0 };
        // one of two tokens matches exactly in each direction
        let s = monge_elkan("red apple", "red pear", exact);
        assert!((s - 0.5).abs() < 1e-12);
    }
}
