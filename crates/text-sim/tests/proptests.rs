//! Property-based tests: metric axioms for the similarity kernels.

use proptest::prelude::*;
use text_sim::{
    jaccard_chars, jaccard_tokens, jaro, jaro_winkler, levenshtein, levenshtein_ratio, monge_elkan,
    normalize, normalized_levenshtein, overlap_coefficient, qgram_cosine, word_tokens,
};

fn arb_str() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,.\\-]{0,24}"
}

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in arb_str(), b in arb_str(), c in arb_str()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Distance is bounded by the longer string's length.
    #[test]
    fn levenshtein_bounded(a in arb_str(), b in arb_str()) {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
    }

    /// All similarity kernels stay in [0, 1] and are symmetric.
    #[test]
    fn similarities_bounded_and_symmetric(a in arb_str(), b in arb_str()) {
        type Kernel = fn(&str, &str) -> f64;
        let kernels: [(&str, Kernel); 6] = [
            ("lr", levenshtein_ratio),
            ("nlev", normalized_levenshtein),
            ("jac", jaccard_tokens),
            ("jac_chars", jaccard_chars),
            ("jaro", jaro),
            ("jw", jaro_winkler),
        ];
        for (name, k) in kernels {
            let ab = k(&a, &b);
            let ba = k(&b, &a);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ab), "{} out of range: {}", name, ab);
            prop_assert!((ab - ba).abs() < 1e-9, "{} asymmetric: {} vs {}", name, ab, ba);
        }
        let qc = qgram_cosine(&a, &b, 3);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&qc));
        let oc = overlap_coefficient(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&oc));
    }

    /// Every kernel scores a string against itself as 1.
    #[test]
    fn self_similarity_is_one(a in arb_str()) {
        prop_assert!((levenshtein_ratio(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((jaccard_tokens(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((qgram_cosine(&a, &a, 2) - 1.0).abs() < 1e-9);
        prop_assert!((monge_elkan(&a, &a, jaro_winkler) - 1.0).abs() < 1e-9);
    }

    /// Normalization is idempotent and never yields doubled spaces.
    #[test]
    fn normalize_idempotent(a in "\\PC{0,40}") {
        let once = normalize(&a);
        prop_assert_eq!(normalize(&once), once.clone());
        prop_assert!(!once.contains("  "));
        prop_assert!(!once.starts_with(' ') && !once.ends_with(' '));
    }

    /// Tokenization output contains no empties and is normalization-stable.
    #[test]
    fn tokens_clean(a in "\\PC{0,40}") {
        let toks = word_tokens(&a);
        for t in &toks {
            prop_assert!(!t.is_empty());
            prop_assert!(!t.contains(' '));
        }
        prop_assert_eq!(word_tokens(&toks.join(" ")), toks);
    }

    /// The paper-form ratio (Eq. 5) never falls below the conventional
    /// normalized similarity minus the length-sum slack; concretely both
    /// agree at the extremes.
    #[test]
    fn ratio_forms_agree_at_extremes(a in arb_str()) {
        prop_assert_eq!(levenshtein_ratio(&a, &a), 1.0);
        prop_assert_eq!(normalized_levenshtein(&a, &a), 1.0);
        // Eq. 5 ratio dominates the conventional one (divides by a larger s).
        let b = format!("{a}x");
        prop_assert!(levenshtein_ratio(&a, &b) >= normalized_levenshtein(&a, &b) - 1e-12);
    }
}
