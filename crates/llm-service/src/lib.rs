//! OpenAI-style HTTP loopback service around the LLM simulator.
//!
//! The paper's framework talks to LLMs over an HTTP JSON API; this crate
//! reproduces that deployment seam so the client stack (request encoding,
//! transport errors, status-code mapping, retries) is exercised for real:
//!
//! * [`LlmServer`] — a minimal HTTP/1.1 server on `127.0.0.1` that serves
//!   `POST /v1/chat/completions` from a [`llm::SimLlm`].
//! * [`HttpChatClient`] — a [`llm::ChatApi`] implementation speaking that
//!   protocol over `std::net::TcpStream`.
//!
//! The HTTP implementation is intentionally small (HTTP/1.1,
//! `Content-Length` bodies, one request per connection) — enough to be a
//! faithful stand-in for the production seam without pulling a web stack
//! into an offline reproduction. TLS and authentication are out of scope;
//! a production client would implement [`llm::ChatApi`] against the real
//! endpoint instead.
//!
//! The request/response plumbing ([`http`]) and the bounded-concurrency
//! accept loop ([`serve`]) are exposed for reuse — the `er-service`
//! entity-matching front end is built on the same primitives.

pub mod http;
pub mod serve;
pub mod server;
pub mod wire;

pub use http::{HttpRequest, HttpResponse};
pub use serve::{spawn_http_server, HttpServerHandle, ServeOptions};
pub use server::{HttpChatClient, LlmServer, RetryPolicy, RunningServer};
