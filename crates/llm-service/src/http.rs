//! Minimal HTTP/1.1 message reading and writing.

use std::io::{BufRead, BufReader, Read, Write};

/// A parsed HTTP request (the subset this service needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, e.g. `/v1/chat/completions`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Microseconds the connection waited in the accept backlog before a
    /// worker picked it up (stamped by the serve loop; 0 otherwise).
    pub queued_us: u64,
}

impl HttpRequest {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers, emitted verbatim after `Content-Type`
    /// (e.g. `Retry-After` on load-shedding 429s).
    pub headers: Vec<(String, String)>,
}

impl HttpResponse {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, body: body.into(), content_type: "application/json", headers: Vec::new() }
    }

    /// A plain-text response (Prometheus scrapes, human-readable pages).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
        }
    }

    /// Adds one extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Upper bound on accepted body size (16 MiB) — guards the loopback
/// service against unbounded allocation from a buggy client.
pub const MAX_BODY_BYTES: u64 = 16 * 1024 * 1024;

/// Reads one HTTP/1.1 request from a stream.
pub fn read_request<R: Read>(stream: R) -> std::io::Result<HttpRequest> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }

    let mut content_length = 0u64;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    let mut body = vec![0u8; content_length as usize];
    reader.read_exact(&mut body)?;
    Ok(HttpRequest { method, path, headers, body, queued_us: 0 })
}

/// Writes an HTTP/1.1 response with `Connection: close` semantics.
pub fn write_response<W: Write>(mut stream: W, response: &HttpResponse) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    )?;
    for (name, value) in &response.headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Reads one HTTP/1.1 response (client side). Returns `(status, body)`.
pub fn read_response<R: Read>(stream: R) -> std::io::Result<(u16, Vec<u8>)> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;

    let mut content_length: Option<u64> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) if n <= MAX_BODY_BYTES => {
            let mut buf = vec![0u8; n as usize];
            reader.read_exact(&mut buf)?;
            buf
        }
        Some(_) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "body too large",
            ))
        }
        // Connection-close delimited body.
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let raw =
            b"POST /v1/chat/completions HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/chat/completions");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn request_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_line_rejected() {
        assert!(read_request(&b"\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GARBAGE\r\n\r\n"[..]).is_err());
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(raw.as_bytes()).is_err());
    }

    #[test]
    fn response_write_then_read() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &HttpResponse::json(200, br#"{"ok":true}"#.to_vec()),
        )
        .unwrap();
        let (status, body) = read_response(&buf[..]).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"ok":true}"#);
    }

    #[test]
    fn text_response_sets_content_type() {
        let mut buf = Vec::new();
        write_response(&mut buf, &HttpResponse::text(200, b"a 1\n".to_vec())).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "{text}"
        );
        assert!(text.ends_with("a 1\n"));
    }

    #[test]
    fn extra_headers_are_emitted_before_the_body() {
        let mut buf = Vec::new();
        let response = HttpResponse::json(429, b"{}".to_vec()).with_header("Retry-After", "2");
        write_response(&mut buf, &response).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        let header_end = text.find("\r\n\r\n").unwrap();
        assert!(text[..header_end].contains("Retry-After"), "{text}");
        assert!(text.ends_with("{}"));
        // Still parses on the client side.
        let (status, body) = read_response(text.as_bytes()).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, b"{}");
    }

    #[test]
    fn error_statuses_have_reasons() {
        for status in [400u16, 404, 405, 429, 500] {
            let mut buf = Vec::new();
            write_response(&mut buf, &HttpResponse::json(status, b"{}".to_vec())).unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.starts_with(&format!("HTTP/1.1 {status} ")));
        }
    }

    #[test]
    fn headers_captured_lowercased() {
        let raw = b"POST /x HTTP/1.1\r\nTraceparent: 00-abc-def-01\r\nX-Attempt: 2\r\nContent-Length: 2\r\n\r\nab";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.header("traceparent"), Some("00-abc-def-01"));
        assert_eq!(req.header("X-ATTEMPT"), Some("2"));
        assert_eq!(req.header("absent"), None);
        assert!(req
            .headers
            .iter()
            .all(|(k, _)| k.chars().all(|c| !c.is_ascii_uppercase())));
    }

    #[test]
    fn case_insensitive_content_length() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-LENGTH: 2\r\n\r\nab";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.body, b"ab");
    }
}
