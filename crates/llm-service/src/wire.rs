//! JSON wire format — the OpenAI chat-completions dialect this service
//! speaks.

use llm::{ChatRequest, ChatResponse, FinishReason, LlmError, ModelKind, Usage};
use serde::{Deserialize, Serialize};

/// One chat message on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireMessage {
    /// `"system"` / `"user"` / `"assistant"`.
    pub role: String,
    /// Message text.
    pub content: String,
}

/// `POST /v1/chat/completions` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireRequest {
    /// Model id, e.g. `"gpt-3.5-turbo-0301"`.
    pub model: String,
    /// Conversation messages; contents are concatenated into one prompt.
    pub messages: Vec<WireMessage>,
    /// Sampling temperature (defaults to the paper's 0.01).
    #[serde(default = "default_temperature")]
    pub temperature: f64,
    /// Reproducibility seed (OpenAI's `seed` parameter).
    #[serde(default)]
    pub seed: u64,
}

fn default_temperature() -> f64 {
    0.01
}

/// Successful response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireResponse {
    /// Answer choices (always exactly one).
    pub choices: Vec<WireChoice>,
    /// Token usage.
    pub usage: WireUsage,
    /// Cost of this call in micro-dollars (simulator extension; the real
    /// API leaves cost computation to the client).
    pub cost_micros: i64,
}

/// One choice in a response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireChoice {
    /// The assistant message.
    pub message: WireMessage,
    /// `"stop"` or `"length"`.
    pub finish_reason: String,
}

/// Usage block.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WireUsage {
    /// Prompt tokens.
    pub prompt_tokens: u64,
    /// Completion tokens.
    pub completion_tokens: u64,
}

/// Error body: `{"error": {"message": ..., "code": ...}}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireError {
    /// The error payload.
    pub error: WireErrorBody,
}

/// Error payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireErrorBody {
    /// Human-readable message.
    pub message: String,
    /// Machine-readable code, e.g. `"context_length_exceeded"`.
    pub code: String,
}

/// Converts a wire request into the simulator's [`ChatRequest`].
pub fn to_chat_request(wire: &WireRequest) -> Result<ChatRequest, LlmError> {
    let model = ModelKind::from_id(&wire.model)
        .ok_or_else(|| LlmError::UnknownModel(wire.model.clone()))?;
    let prompt = wire
        .messages
        .iter()
        .map(|m| m.content.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    // Trace context travels in headers (`traceparent` / `x-attempt`), not
    // the body; the server stamps it onto the request after parsing.
    Ok(ChatRequest {
        model,
        prompt,
        temperature: wire.temperature,
        seed: wire.seed,
        trace_id: 0,
        attempt: 0,
    })
}

/// Converts a simulator response into the wire shape.
pub fn from_chat_response(resp: &ChatResponse) -> WireResponse {
    WireResponse {
        choices: vec![WireChoice {
            message: WireMessage { role: "assistant".into(), content: resp.content.clone() },
            finish_reason: match resp.finish_reason {
                FinishReason::Stop => "stop".into(),
                FinishReason::Length => "length".into(),
            },
        }],
        usage: WireUsage {
            prompt_tokens: resp.usage.prompt_tokens.get(),
            completion_tokens: resp.usage.completion_tokens.get(),
        },
        cost_micros: resp.cost.micros(),
    }
}

/// Reassembles a [`ChatResponse`] from the wire shape (client side).
pub fn to_chat_response(wire: &WireResponse) -> Result<ChatResponse, LlmError> {
    let choice = wire
        .choices
        .first()
        .ok_or_else(|| LlmError::Protocol("response carried no choices".into()))?;
    Ok(ChatResponse {
        content: choice.message.content.clone(),
        finish_reason: match choice.finish_reason.as_str() {
            "length" => FinishReason::Length,
            _ => FinishReason::Stop,
        },
        usage: Usage {
            prompt_tokens: er_core_token(wire.usage.prompt_tokens),
            completion_tokens: er_core_token(wire.usage.completion_tokens),
        },
        cost: er_core::Money::from_micros(wire.cost_micros),
    })
}

fn er_core_token(n: u64) -> er_core::TokenCount {
    er_core::TokenCount(n)
}

/// Maps an [`LlmError`] to `(HTTP status, error body)`.
pub fn error_to_wire(err: &LlmError) -> (u16, WireError) {
    let (status, code) = match err {
        LlmError::ContextLengthExceeded { .. } => (400, "context_length_exceeded"),
        LlmError::RateLimited => (429, "rate_limit_exceeded"),
        LlmError::UnknownModel(_) => (404, "model_not_found"),
        LlmError::Protocol(_) => (400, "invalid_request_error"),
        LlmError::Transport(_) => (500, "transport_error"),
    };
    (
        status,
        WireError { error: WireErrorBody { message: err.to_string(), code: code.to_owned() } },
    )
}

/// Maps `(HTTP status, error body)` back to an [`LlmError`] (client side).
pub fn wire_to_error(status: u16, body: &[u8]) -> LlmError {
    let parsed: Option<WireError> = serde_json::from_slice(body).ok();
    let code = parsed.as_ref().map(|e| e.error.code.as_str()).unwrap_or("");
    match (status, code) {
        (429, _) => LlmError::RateLimited,
        (400, "context_length_exceeded") => {
            // Token counts are not carried back over the wire; clients
            // treat any context overflow identically.
            LlmError::ContextLengthExceeded { prompt_tokens: 0, limit: 0 }
        }
        (404, _) => LlmError::UnknownModel(
            parsed
                .map(|e| e.error.message)
                .unwrap_or_else(|| "unknown".into()),
        ),
        _ => LlmError::Protocol(format!("HTTP {status}: {}", String::from_utf8_lossy(body))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{Money, TokenCount};

    #[test]
    fn request_conversion() {
        let wire = WireRequest {
            model: "gpt-4-1106-preview".into(),
            messages: vec![
                WireMessage { role: "system".into(), content: "task".into() },
                WireMessage { role: "user".into(), content: "Q1: a [SEP] b".into() },
            ],
            temperature: 0.01,
            seed: 9,
        };
        let req = to_chat_request(&wire).unwrap();
        assert_eq!(req.model, ModelKind::Gpt4);
        assert_eq!(req.prompt, "task\nQ1: a [SEP] b");
        assert_eq!(req.seed, 9);
    }

    #[test]
    fn unknown_model_rejected() {
        let wire =
            WireRequest { model: "gpt-99".into(), messages: vec![], temperature: 0.01, seed: 0 };
        assert!(matches!(
            to_chat_request(&wire),
            Err(LlmError::UnknownModel(m)) if m == "gpt-99"
        ));
    }

    #[test]
    fn response_roundtrip() {
        let resp = ChatResponse {
            content: "Q1: yes — same.".into(),
            finish_reason: FinishReason::Stop,
            usage: Usage { prompt_tokens: TokenCount(100), completion_tokens: TokenCount(10) },
            cost: Money::from_micros(120),
        };
        let wire = from_chat_response(&resp);
        let back = to_chat_response(&wire).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn error_mapping_roundtrips() {
        for err in [
            LlmError::RateLimited,
            LlmError::ContextLengthExceeded { prompt_tokens: 1, limit: 2 },
            LlmError::UnknownModel("x".into()),
        ] {
            let (status, wire) = error_to_wire(&err);
            let body = serde_json::to_vec(&wire).unwrap();
            let back = wire_to_error(status, &body);
            match err {
                LlmError::RateLimited => assert_eq!(back, LlmError::RateLimited),
                LlmError::ContextLengthExceeded { .. } => {
                    assert!(matches!(back, LlmError::ContextLengthExceeded { .. }))
                }
                LlmError::UnknownModel(_) => {
                    assert!(matches!(back, LlmError::UnknownModel(_)))
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn default_temperature_applied() {
        let json = br#"{"model":"gpt-4-1106-preview","messages":[]}"#;
        let wire: WireRequest = serde_json::from_slice(json).unwrap();
        assert_eq!(wire.temperature, 0.01);
        assert_eq!(wire.seed, 0);
    }
}
