//! The loopback server and its HTTP client.

use std::net::TcpStream;
use std::sync::Arc;

use llm::{ChatApi, ChatRequest, ChatResponse, LlmError, SimLlm, SimLlmConfig};
use obs::{Counter, Histogram, Registry};

use crate::http::{read_response, HttpRequest, HttpResponse};
use crate::serve::{spawn_http_server, HttpServerHandle, ServeOptions};
use crate::wire::{
    error_to_wire, from_chat_response, to_chat_request, to_chat_response, wire_to_error, WireError,
    WireErrorBody, WireMessage, WireRequest, WireResponse,
};

/// Factory for loopback LLM services.
#[derive(Debug, Default)]
pub struct LlmServer {
    config: SimLlmConfig,
    options: ServeOptions,
}

impl LlmServer {
    /// A server backed by a fault-free simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A server with fault injection enabled on the underlying simulator.
    pub fn with_config(config: SimLlmConfig) -> Self {
        Self { config, options: ServeOptions::default() }
    }

    /// Overrides the connection-pool limits (worker threads / backlog).
    pub fn with_serve_options(mut self, options: ServeOptions) -> Self {
        self.options = options;
        self
    }

    /// Binds to an ephemeral port on `127.0.0.1` and starts serving on a
    /// bounded worker pool. The returned handle stops the server on drop.
    pub fn start(self) -> std::io::Result<RunningServer> {
        let llm = Arc::new(SimLlm::with_config(self.config));
        let handler_llm = Arc::clone(&llm);
        let metrics = Arc::new(ServerMetrics::new());
        let handler_metrics = Arc::clone(&metrics);
        let server = spawn_http_server(
            Arc::new(move |request: HttpRequest| route(request, &handler_llm, &handler_metrics)),
            self.options,
        )?;
        Ok(RunningServer { server })
    }
}

/// Per-server request telemetry, exposed at `GET /metrics`.
struct ServerMetrics {
    registry: Registry,
    completions: Arc<Counter>,
    errors: Arc<Counter>,
    request_us: Arc<Histogram>,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let completions = registry.counter(
            "llm_completions_total",
            "Chat completion requests answered successfully.",
            &[],
        );
        let errors = registry.counter(
            "llm_completion_errors_total",
            "Chat completion requests answered with an error.",
            &[],
        );
        let request_us = registry.histogram(
            "llm_request_us",
            "Wall time spent handling one chat completion request, microseconds.",
            &[],
        );
        Self { registry, completions, errors, request_us }
    }
}

/// A running loopback service. Dropping it shuts the server down and
/// joins every connection worker.
#[derive(Debug)]
pub struct RunningServer {
    server: HttpServerHandle,
}

impl RunningServer {
    /// The bound address, e.g. `127.0.0.1:49213`.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// A client connected to this server.
    pub fn client(&self) -> HttpChatClient {
        HttpChatClient::new(self.addr())
    }
}

fn route(req: HttpRequest, llm: &SimLlm, metrics: &ServerMetrics) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/chat/completions") => {
            let _timer = metrics.request_us.start_timer();
            let wire: WireRequest = match serde_json::from_slice(&req.body) {
                Ok(w) => w,
                Err(e) => {
                    metrics.errors.inc();
                    return bad_request(&format!("invalid JSON body: {e}"));
                }
            };
            let chat_req = match to_chat_request(&wire) {
                Ok(r) => r,
                Err(err) => {
                    metrics.errors.inc();
                    return error_response(&err);
                }
            };
            match llm.complete(&chat_req) {
                Ok(resp) => {
                    let body = serde_json::to_vec(&from_chat_response(&resp))
                        .expect("wire response serializes");
                    metrics.completions.inc();
                    HttpResponse::json(200, body)
                }
                Err(err) => {
                    metrics.errors.inc();
                    error_response(&err)
                }
            }
        }
        ("GET", "/healthz") => HttpResponse::json(200, br#"{"status":"ok"}"#.to_vec()),
        ("GET", "/metrics") => {
            HttpResponse::text(200, metrics.registry.render_prometheus().into_bytes())
        }
        ("POST", _) | ("GET", _) => HttpResponse::json(
            404,
            serde_json::to_vec(&WireError {
                error: WireErrorBody {
                    message: format!("no such route: {}", req.path),
                    code: "not_found".into(),
                },
            })
            .expect("error serializes"),
        ),
        _ => HttpResponse::json(
            405,
            br#"{"error":{"message":"method not allowed","code":"method_not_allowed"}}"#.to_vec(),
        ),
    }
}

fn error_response(err: &LlmError) -> HttpResponse {
    let (status, wire) = error_to_wire(err);
    HttpResponse::json(status, serde_json::to_vec(&wire).expect("error serializes"))
}

fn bad_request(message: &str) -> HttpResponse {
    HttpResponse::json(
        400,
        serde_json::to_vec(&WireError {
            error: WireErrorBody {
                message: message.to_owned(),
                code: "invalid_request_error".into(),
            },
        })
        .expect("error serializes"),
    )
}

/// A [`ChatApi`] implementation speaking the wire protocol over TCP.
///
/// Opens one connection per request (`Connection: close`), matching the
/// server's lifecycle and keeping the client trivially `Send + Sync`.
#[derive(Debug, Clone)]
pub struct HttpChatClient {
    addr: std::net::SocketAddr,
}

impl HttpChatClient {
    /// A client for the service at `addr`.
    pub fn new(addr: std::net::SocketAddr) -> Self {
        Self { addr }
    }
}

impl ChatApi for HttpChatClient {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let wire = WireRequest {
            model: request.model.id().to_owned(),
            messages: vec![WireMessage { role: "user".into(), content: request.prompt.clone() }],
            temperature: request.temperature,
            seed: request.seed,
        };
        let body = serde_json::to_vec(&wire)
            .map_err(|e| LlmError::Protocol(format!("request encoding failed: {e}")))?;

        let mut stream = TcpStream::connect(self.addr)
            .map_err(|e| LlmError::Transport(format!("connect {}: {e}", self.addr)))?;
        let header = format!(
            "POST /v1/chat/completions HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        use std::io::Write;
        stream
            .write_all(header.as_bytes())
            .and_then(|_| stream.write_all(&body))
            .map_err(|e| LlmError::Transport(format!("send: {e}")))?;

        let (status, resp_body) =
            read_response(&mut stream).map_err(|e| LlmError::Transport(format!("recv: {e}")))?;
        if status != 200 {
            return Err(wire_to_error(status, &resp_body));
        }
        let wire_resp: WireResponse = serde_json::from_slice(&resp_body)
            .map_err(|e| LlmError::Protocol(format!("response decoding failed: {e}")))?;
        to_chat_response(&wire_resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::{parse_answers, ModelKind};

    fn prompt() -> String {
        "Decide whether the entities match.\n\
         Q1: title: acoustic guitar, id: 7 [SEP] title: acoustic guitar, id: 7\n\
         Q2: title: acoustic guitar, id: 7 [SEP] title: drum kit, id: 2\n\
         Answer each question with yes or no."
            .to_owned()
    }

    #[test]
    fn end_to_end_over_loopback() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        let resp = client
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 5))
            .unwrap();
        let labels = parse_answers(&resp.content, 2).unwrap();
        assert!(labels[0].is_match());
        assert!(!labels[1].is_match());
        assert!(resp.usage.prompt_tokens.get() > 0);
    }

    #[test]
    fn http_client_matches_in_process_simulator() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        let sim = SimLlm::new();
        let req = ChatRequest::new(ModelKind::Gpt35Turbo0301, prompt(), 11);
        let over_http = client.complete(&req).unwrap();
        let in_process = sim.complete(&req).unwrap();
        assert_eq!(over_http.content, in_process.content);
        assert_eq!(over_http.usage, in_process.usage);
        assert_eq!(over_http.cost, in_process.cost);
    }

    #[test]
    fn unknown_model_maps_to_error() {
        let server = LlmServer::new().start().unwrap();
        // Hand-roll a request with a bogus model id.
        let body = br#"{"model":"gpt-99","messages":[{"role":"user","content":"Q1: a [SEP] b"}]}"#;
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(
            stream,
            "POST /v1/chat/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        stream.write_all(body).unwrap();
        let (status, _) = read_response(&mut stream).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn invalid_json_is_400() {
        let server = LlmServer::new().start().unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(
            stream,
            "POST /v1/chat/completions HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot"
        )
        .unwrap();
        let (status, _) = read_response(&mut stream).unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn health_endpoint() {
        let server = LlmServer::new().start().unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(stream, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
    }

    #[test]
    fn metrics_endpoint_counts_completions() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        for seed in 0..3 {
            client
                .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), seed))
                .unwrap();
        }
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(stream, "GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("llm_completions_total 3"), "{text}");
        assert!(text.contains("llm_request_us_count 3"), "{text}");
        obs::lint(&text).expect("llm /metrics is valid Prometheus text");
    }

    #[test]
    fn rate_limit_surfaces_as_429() {
        let server =
            LlmServer::with_config(SimLlmConfig { rate_limit_rate: 1.0, ..Default::default() })
                .start()
                .unwrap();
        let err = server
            .client()
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 1))
            .unwrap_err();
        assert_eq!(err, LlmError::RateLimited);
    }

    #[test]
    fn concurrent_clients() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|seed| {
                    let client = client.clone();
                    scope.spawn(move || {
                        client
                            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), seed))
                            .unwrap()
                    })
                })
                .collect();
            for h in handles {
                let resp = h.join().unwrap();
                assert!(parse_answers(&resp.content, 2).is_ok());
            }
        });
    }

    #[test]
    fn burst_beyond_pool_capacity_is_served() {
        // Tiny pool, many more clients than workers + backlog: all
        // requests complete because the accept loop applies backpressure
        // instead of spawning unbounded threads.
        let server = LlmServer::new()
            .with_serve_options(ServeOptions {
                worker_threads: 2,
                backlog: 2,
                ..ServeOptions::default()
            })
            .start()
            .unwrap();
        let client = server.client();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..24u64)
                .map(|seed| {
                    let client = client.clone();
                    scope.spawn(move || {
                        client
                            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), seed))
                            .unwrap()
                    })
                })
                .collect();
            for h in handles {
                let resp = h.join().unwrap();
                assert!(parse_answers(&resp.content, 2).is_ok());
            }
        });
    }

    #[test]
    fn server_shuts_down_on_drop() {
        let server = LlmServer::new().start().unwrap();
        let addr = server.addr();
        drop(server);
        // Subsequent requests must fail (connection refused or reset).
        let client = HttpChatClient::new(addr);
        let result = client.complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 1));
        assert!(matches!(result, Err(LlmError::Transport(_))));
    }
}
