//! The loopback server and its HTTP client.

use std::net::TcpStream;
use std::sync::Arc;

use llm::{ChatApi, ChatRequest, ChatResponse, LlmError, SimLlm, SimLlmConfig};
use obs::{Counter, Histogram, Registry, TraceLog};

use crate::http::{read_response, HttpRequest, HttpResponse};
use crate::serve::{spawn_http_server, HttpServerHandle, ServeOptions};
use crate::wire::{
    error_to_wire, from_chat_response, to_chat_request, to_chat_response, wire_to_error, WireError,
    WireErrorBody, WireMessage, WireRequest, WireResponse,
};

/// Factory for loopback LLM services.
#[derive(Debug, Default)]
pub struct LlmServer {
    config: SimLlmConfig,
    options: ServeOptions,
}

impl LlmServer {
    /// A server backed by a fault-free simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A server with fault injection enabled on the underlying simulator.
    pub fn with_config(config: SimLlmConfig) -> Self {
        Self { config, options: ServeOptions::default() }
    }

    /// Overrides the connection-pool limits (worker threads / backlog).
    pub fn with_serve_options(mut self, options: ServeOptions) -> Self {
        self.options = options;
        self
    }

    /// Binds to an ephemeral port on `127.0.0.1` and starts serving on a
    /// bounded worker pool. The returned handle stops the server on drop.
    pub fn start(self) -> std::io::Result<RunningServer> {
        let llm = Arc::new(SimLlm::with_config(self.config));
        let handler_llm = Arc::clone(&llm);
        let metrics = Arc::new(ServerMetrics::new());
        let handler_metrics = Arc::clone(&metrics);
        let server = spawn_http_server(
            Arc::new(move |request: HttpRequest| route(request, &handler_llm, &handler_metrics)),
            self.options,
        )?;
        Ok(RunningServer { server })
    }
}

/// Per-server request telemetry, exposed at `GET /metrics`.
struct ServerMetrics {
    registry: Registry,
    completions: Arc<Counter>,
    errors: Arc<Counter>,
    request_us: Arc<Histogram>,
    /// Child spans for requests that arrived with a `traceparent` header,
    /// keyed by the caller's trace id so the caller can assemble the
    /// cross-service span tree via `GET /trace?id=`.
    traces: TraceLog,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let completions = registry.counter(
            "llm_completions_total",
            "Chat completion requests answered successfully.",
            &[],
        );
        let errors = registry.counter(
            "llm_completion_errors_total",
            "Chat completion requests answered with an error.",
            &[],
        );
        let request_us = registry.histogram(
            "llm_request_us",
            "Wall time spent handling one chat completion request, microseconds.",
            &[],
        );
        Self { registry, completions, errors, request_us, traces: TraceLog::new(512) }
    }
}

/// Extracts the caller's trace id from a `traceparent` header value
/// (`00-<32 hex trace>-<16 hex parent>-<flags>`). The upper 64 bits of
/// the trace field must be zero — this workspace's trace ids are u64.
fn parse_traceparent(value: &str) -> Option<u64> {
    let mut parts = value.split('-');
    let _version = parts.next()?;
    let trace_field = parts.next()?;
    if trace_field.len() != 32 {
        return None;
    }
    let wide = u128::from_str_radix(trace_field, 16).ok()?;
    u64::try_from(wide).ok().filter(|&id| id != 0)
}

/// A running loopback service. Dropping it shuts the server down and
/// joins every connection worker.
#[derive(Debug)]
pub struct RunningServer {
    server: HttpServerHandle,
}

impl RunningServer {
    /// The bound address, e.g. `127.0.0.1:49213`.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// A client connected to this server.
    pub fn client(&self) -> HttpChatClient {
        HttpChatClient::new(self.addr())
    }
}

fn route(req: HttpRequest, llm: &SimLlm, metrics: &ServerMetrics) -> HttpResponse {
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (req.path.clone(), String::new()),
    };
    match (req.method.as_str(), path.as_str()) {
        ("POST", "/v1/chat/completions") => {
            let _timer = metrics.request_us.start_timer();
            // Callers propagate their trace in a traceparent header; record
            // this request as a child span keyed by that id so the caller
            // can pull it back out with `GET /trace?id=`.
            let caller_trace = req
                .header("traceparent")
                .and_then(parse_traceparent)
                .unwrap_or(0);
            let span = if caller_trace != 0 {
                let span = metrics.traces.begin(caller_trace, "received");
                metrics
                    .traces
                    .stamp_with(span, "queue_wait", format!("{}us", req.queued_us));
                let attempt = req
                    .header("x-attempt")
                    .and_then(|v| v.parse::<u32>().ok())
                    .unwrap_or(0);
                metrics
                    .traces
                    .stamp_with(span, "attempt", attempt.to_string());
                span
            } else {
                0
            };
            let response = complete_chat(&req, llm, metrics);
            if span != 0 {
                if response.status == 200 {
                    metrics.traces.finish(span, "completed", None);
                } else {
                    metrics
                        .traces
                        .finish(span, "error", Some(format!("http {}", response.status)));
                }
            }
            response
        }
        ("GET", "/healthz") => HttpResponse::json(200, br#"{"status":"ok"}"#.to_vec()),
        ("GET", "/metrics") => {
            HttpResponse::text(200, metrics.registry.render_prometheus().into_bytes())
        }
        ("GET", "/trace") => match query_param(&query, "id").map(|v| v.parse::<u64>()) {
            Some(Ok(id)) => HttpResponse::json(200, metrics.traces.by_key_json(id).into_bytes()),
            _ => bad_request("trace lookup needs a numeric ?id= parameter"),
        },
        ("POST", _) | ("GET", _) => HttpResponse::json(
            404,
            serde_json::to_vec(&WireError {
                error: WireErrorBody {
                    message: format!("no such route: {}", req.path),
                    code: "not_found".into(),
                },
            })
            .expect("error serializes"),
        ),
        _ => HttpResponse::json(
            405,
            br#"{"error":{"message":"method not allowed","code":"method_not_allowed"}}"#.to_vec(),
        ),
    }
}

/// The body of `POST /v1/chat/completions`: decode, simulate, encode.
fn complete_chat(req: &HttpRequest, llm: &SimLlm, metrics: &ServerMetrics) -> HttpResponse {
    let wire: WireRequest = match serde_json::from_slice(&req.body) {
        Ok(w) => w,
        Err(e) => {
            metrics.errors.inc();
            return bad_request(&format!("invalid JSON body: {e}"));
        }
    };
    let chat_req = match to_chat_request(&wire) {
        Ok(r) => r,
        Err(err) => {
            metrics.errors.inc();
            return error_response(&err);
        }
    };
    match llm.complete(&chat_req) {
        Ok(resp) => {
            let body =
                serde_json::to_vec(&from_chat_response(&resp)).expect("wire response serializes");
            metrics.completions.inc();
            HttpResponse::json(200, body)
        }
        Err(err) => {
            metrics.errors.inc();
            error_response(&err)
        }
    }
}

/// The value of `name` in an `a=1&b=2` query string.
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

fn error_response(err: &LlmError) -> HttpResponse {
    let (status, wire) = error_to_wire(err);
    HttpResponse::json(status, serde_json::to_vec(&wire).expect("error serializes"))
}

fn bad_request(message: &str) -> HttpResponse {
    HttpResponse::json(
        400,
        serde_json::to_vec(&WireError {
            error: WireErrorBody {
                message: message.to_owned(),
                code: "invalid_request_error".into(),
            },
        })
        .expect("error serializes"),
    )
}

/// Transport retry policy for [`HttpChatClient`]: capped exponential
/// backoff bounded by an overall deadline.
///
/// Only transport failures (connect/send/recv) retry — they are the
/// failures a moment's patience can fix. Rate limits are *not* retried
/// here: the batch executor already owns that loop with its own budget
/// accounting, and retrying underneath it would double-pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: std::time::Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: std::time::Duration,
    /// Overall wall-clock bound across all attempts: a retry whose
    /// backoff would cross it is abandoned and the last error returned.
    pub deadline: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: std::time::Duration::from_millis(25),
            max_backoff: std::time::Duration::from_millis(400),
            deadline: std::time::Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: every transport error surfaces immediately.
    pub fn none() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    /// The backoff before retry number `attempt` (0-based): base times
    /// two-to-the-attempt, capped at [`RetryPolicy::max_backoff`].
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// A [`ChatApi`] implementation speaking the wire protocol over TCP.
///
/// Opens one connection per request (`Connection: close`), matching the
/// server's lifecycle and keeping the client trivially `Send + Sync`.
/// By default transport errors fail fast; [`HttpChatClient::with_retry`]
/// adds capped exponential backoff under a deadline.
#[derive(Debug, Clone)]
pub struct HttpChatClient {
    addr: std::net::SocketAddr,
    retry: RetryPolicy,
    retries: Option<Arc<Counter>>,
}

impl HttpChatClient {
    /// A client for the service at `addr`, failing fast on transport
    /// errors.
    pub fn new(addr: std::net::SocketAddr) -> Self {
        Self { addr, retry: RetryPolicy::none(), retries: None }
    }

    /// Retries transport failures per `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Counts every transport retry on `counter`.
    pub fn with_retry_metrics(mut self, counter: Arc<Counter>) -> Self {
        self.retries = Some(counter);
        self
    }

    fn attempt(&self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let wire = WireRequest {
            model: request.model.id().to_owned(),
            messages: vec![WireMessage { role: "user".into(), content: request.prompt.clone() }],
            temperature: request.temperature,
            seed: request.seed,
        };
        let body = serde_json::to_vec(&wire)
            .map_err(|e| LlmError::Protocol(format!("request encoding failed: {e}")))?;

        let mut stream = TcpStream::connect(self.addr)
            .map_err(|e| LlmError::Transport(format!("connect {}: {e}", self.addr)))?;
        // Propagate the caller's trace context (W3C traceparent shape:
        // u64 trace id zero-extended to 128 bits, reused as parent span).
        let trace_headers = if request.trace_id != 0 {
            format!(
                "Traceparent: 00-{:032x}-{:016x}-01\r\nX-Attempt: {}\r\n",
                request.trace_id, request.trace_id, request.attempt
            )
        } else {
            String::new()
        };
        let header = format!(
            "POST /v1/chat/completions HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n{}Content-Length: {}\r\n\r\n",
            self.addr,
            trace_headers,
            body.len()
        );
        use std::io::Write;
        stream
            .write_all(header.as_bytes())
            .and_then(|_| stream.write_all(&body))
            .map_err(|e| LlmError::Transport(format!("send: {e}")))?;

        let (status, resp_body) =
            read_response(&mut stream).map_err(|e| LlmError::Transport(format!("recv: {e}")))?;
        if status != 200 {
            return Err(wire_to_error(status, &resp_body));
        }
        let wire_resp: WireResponse = serde_json::from_slice(&resp_body)
            .map_err(|e| LlmError::Protocol(format!("response decoding failed: {e}")))?;
        to_chat_response(&wire_resp)
    }
}

impl ChatApi for HttpChatClient {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let started = std::time::Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.attempt(request) {
                Err(LlmError::Transport(detail)) if attempt < self.retry.max_retries => {
                    let backoff = self.retry.backoff(attempt);
                    if started.elapsed() + backoff > self.retry.deadline {
                        return Err(LlmError::Transport(format!(
                            "{detail} (deadline after {} retries)",
                            attempt
                        )));
                    }
                    if let Some(counter) = &self.retries {
                        counter.inc();
                    }
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn trace_children(&self, trace_id: u64) -> Option<String> {
        if trace_id == 0 {
            return None;
        }
        let mut stream = TcpStream::connect(self.addr).ok()?;
        use std::io::Write;
        write!(
            stream,
            "GET /trace?id={trace_id} HTTP/1.1\r\nHost: {}\r\n\r\n",
            self.addr
        )
        .ok()?;
        let (status, body) = read_response(&mut stream).ok()?;
        if status != 200 {
            return None;
        }
        String::from_utf8(body).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::{parse_answers, ModelKind};

    fn prompt() -> String {
        "Decide whether the entities match.\n\
         Q1: title: acoustic guitar, id: 7 [SEP] title: acoustic guitar, id: 7\n\
         Q2: title: acoustic guitar, id: 7 [SEP] title: drum kit, id: 2\n\
         Answer each question with yes or no."
            .to_owned()
    }

    #[test]
    fn end_to_end_over_loopback() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        let resp = client
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 5))
            .unwrap();
        let labels = parse_answers(&resp.content, 2).unwrap();
        assert!(labels[0].is_match());
        assert!(!labels[1].is_match());
        assert!(resp.usage.prompt_tokens.get() > 0);
    }

    #[test]
    fn http_client_matches_in_process_simulator() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        let sim = SimLlm::new();
        let req = ChatRequest::new(ModelKind::Gpt35Turbo0301, prompt(), 11);
        let over_http = client.complete(&req).unwrap();
        let in_process = sim.complete(&req).unwrap();
        assert_eq!(over_http.content, in_process.content);
        assert_eq!(over_http.usage, in_process.usage);
        assert_eq!(over_http.cost, in_process.cost);
    }

    #[test]
    fn unknown_model_maps_to_error() {
        let server = LlmServer::new().start().unwrap();
        // Hand-roll a request with a bogus model id.
        let body = br#"{"model":"gpt-99","messages":[{"role":"user","content":"Q1: a [SEP] b"}]}"#;
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(
            stream,
            "POST /v1/chat/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        stream.write_all(body).unwrap();
        let (status, _) = read_response(&mut stream).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn invalid_json_is_400() {
        let server = LlmServer::new().start().unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(
            stream,
            "POST /v1/chat/completions HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot"
        )
        .unwrap();
        let (status, _) = read_response(&mut stream).unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn health_endpoint() {
        let server = LlmServer::new().start().unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(stream, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
    }

    #[test]
    fn metrics_endpoint_counts_completions() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        for seed in 0..3 {
            client
                .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), seed))
                .unwrap();
        }
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        write!(stream, "GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("llm_completions_total 3"), "{text}");
        assert!(text.contains("llm_request_us_count 3"), "{text}");
        obs::lint(&text).expect("llm /metrics is valid Prometheus text");
    }

    #[test]
    fn rate_limit_surfaces_as_429() {
        let server =
            LlmServer::with_config(SimLlmConfig { rate_limit_rate: 1.0, ..Default::default() })
                .start()
                .unwrap();
        let err = server
            .client()
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 1))
            .unwrap_err();
        assert_eq!(err, LlmError::RateLimited);
    }

    #[test]
    fn concurrent_clients() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|seed| {
                    let client = client.clone();
                    scope.spawn(move || {
                        client
                            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), seed))
                            .unwrap()
                    })
                })
                .collect();
            for h in handles {
                let resp = h.join().unwrap();
                assert!(parse_answers(&resp.content, 2).is_ok());
            }
        });
    }

    #[test]
    fn burst_beyond_pool_capacity_is_served() {
        // Tiny pool, many more clients than workers + backlog: all
        // requests complete because the accept loop applies backpressure
        // instead of spawning unbounded threads.
        let server = LlmServer::new()
            .with_serve_options(ServeOptions {
                worker_threads: 2,
                backlog: 2,
                ..ServeOptions::default()
            })
            .start()
            .unwrap();
        let client = server.client();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..24u64)
                .map(|seed| {
                    let client = client.clone();
                    scope.spawn(move || {
                        client
                            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), seed))
                            .unwrap()
                    })
                })
                .collect();
            for h in handles {
                let resp = h.join().unwrap();
                assert!(parse_answers(&resp.content, 2).is_ok());
            }
        });
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(0), std::time::Duration::from_millis(25));
        assert_eq!(policy.backoff(1), std::time::Duration::from_millis(50));
        assert_eq!(policy.backoff(2), std::time::Duration::from_millis(100));
        assert_eq!(policy.backoff(3), std::time::Duration::from_millis(200));
        assert_eq!(policy.backoff(4), std::time::Duration::from_millis(400));
        // Capped from here on — including shift overflow territory.
        assert_eq!(policy.backoff(5), std::time::Duration::from_millis(400));
        assert_eq!(policy.backoff(63), std::time::Duration::from_millis(400));
    }

    #[test]
    fn transport_errors_retry_then_surface() {
        // A port with nothing listening: every attempt is refused.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: std::time::Duration::from_millis(5),
            max_backoff: std::time::Duration::from_millis(10),
            deadline: std::time::Duration::from_secs(1),
        };
        let retries = Arc::new(Counter::detached());
        let client = HttpChatClient::new(addr)
            .with_retry(policy)
            .with_retry_metrics(Arc::clone(&retries));
        let started = std::time::Instant::now();
        let err = client
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 1))
            .unwrap_err();
        assert!(matches!(err, LlmError::Transport(_)), "{err:?}");
        assert_eq!(retries.get(), 2);
        // Slept through both backoffs (5ms + 10ms) before giving up.
        assert!(started.elapsed() >= std::time::Duration::from_millis(15));
    }

    #[test]
    fn deadline_bounds_total_retry_time() {
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        // Generous retry count, tiny deadline: the second backoff would
        // cross it, so exactly one retry happens.
        let policy = RetryPolicy {
            max_retries: 100,
            base_backoff: std::time::Duration::from_millis(20),
            max_backoff: std::time::Duration::from_secs(10),
            deadline: std::time::Duration::from_millis(30),
        };
        let retries = Arc::new(Counter::detached());
        let client = HttpChatClient::new(addr)
            .with_retry(policy)
            .with_retry_metrics(Arc::clone(&retries));
        let err = client
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 1))
            .unwrap_err();
        assert!(matches!(err, LlmError::Transport(_)), "{err:?}");
        assert!(retries.get() <= 1, "deadline should stop the retry loop");
    }

    #[test]
    fn retrying_client_still_succeeds_against_live_server() {
        let server = LlmServer::new().start().unwrap();
        let retries = Arc::new(Counter::detached());
        let client = HttpChatClient::new(server.addr())
            .with_retry(RetryPolicy::default())
            .with_retry_metrics(Arc::clone(&retries));
        let resp = client
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 5))
            .unwrap();
        assert!(parse_answers(&resp.content, 2).is_ok());
        assert_eq!(retries.get(), 0);
    }

    #[test]
    fn traceparent_parses_and_rejects() {
        assert_eq!(
            parse_traceparent("00-0000000000000000000000000000002a-000000000000002a-01"),
            Some(42)
        );
        // Zero trace id means "untraced".
        assert_eq!(
            parse_traceparent("00-00000000000000000000000000000000-0000000000000000-01"),
            None
        );
        // Trace ids wider than u64 are not ours.
        assert_eq!(
            parse_traceparent("00-10000000000000000000000000000001-0000000000000001-01"),
            None
        );
        assert_eq!(parse_traceparent("garbage"), None);
        assert_eq!(parse_traceparent("00-abc-def-01"), None);
    }

    #[test]
    fn traced_request_leaves_a_child_span() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        let req = ChatRequest::new(ModelKind::Gpt4, prompt(), 5).with_trace(777, 2);
        client.complete(&req).unwrap();

        let children = client.trace_children(777).expect("trace endpoint answers");
        assert!(
            children.contains(r#""key":"0000000000000309""#),
            "{children}"
        );
        assert!(children.contains(r#""stage":"received""#), "{children}");
        assert!(children.contains(r#""stage":"queue_wait""#), "{children}");
        assert!(children.contains(r#""stage":"attempt""#), "{children}");
        assert!(children.contains(r#""detail":"2""#), "{children}");
        assert!(children.contains(r#""stage":"completed""#), "{children}");

        // An untraced id yields an empty span list, not an error.
        assert_eq!(client.trace_children(424242).as_deref(), Some("[]"));
        // Untraced requests never open spans.
        assert!(client.trace_children(0).is_none());
    }

    #[test]
    fn each_retry_attempt_is_its_own_child_span() {
        let server = LlmServer::new().start().unwrap();
        let client = server.client();
        for attempt in 0..3u32 {
            let req = ChatRequest::new(ModelKind::Gpt4, prompt(), 9).with_trace(555, attempt);
            client.complete(&req).unwrap();
        }
        let children = client.trace_children(555).unwrap();
        assert_eq!(
            children.matches(r#""stage":"received""#).count(),
            3,
            "{children}"
        );
        assert_eq!(
            children.matches(r#""stage":"completed""#).count(),
            3,
            "{children}"
        );
    }

    #[test]
    fn trace_endpoint_rejects_unparsable_id() {
        let server = LlmServer::new().start().unwrap();
        for path in ["/trace", "/trace?id=bogus", "/trace?x=1"] {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            use std::io::Write;
            write!(stream, "GET {path} HTTP/1.1\r\n\r\n").unwrap();
            let (status, _) = read_response(&mut stream).unwrap();
            assert_eq!(status, 400, "{path}");
        }
    }

    #[test]
    fn failed_traced_request_finishes_with_error_span() {
        let server =
            LlmServer::with_config(SimLlmConfig { rate_limit_rate: 1.0, ..Default::default() })
                .start()
                .unwrap();
        let client = server.client();
        let req = ChatRequest::new(ModelKind::Gpt4, prompt(), 1).with_trace(31, 0);
        client.complete(&req).unwrap_err();
        let children = client.trace_children(31).unwrap();
        assert!(children.contains(r#""stage":"error""#), "{children}");
        assert!(children.contains("http 429"), "{children}");
    }

    #[test]
    fn server_shuts_down_on_drop() {
        let server = LlmServer::new().start().unwrap();
        let addr = server.addr();
        drop(server);
        // Subsequent requests must fail (connection refused or reset).
        let client = HttpChatClient::new(addr);
        let result = client.complete(&ChatRequest::new(ModelKind::Gpt4, prompt(), 1));
        assert!(matches!(result, Err(LlmError::Transport(_))));
    }
}
