//! A bounded-concurrency HTTP/1.1 accept loop shared by every HTTP
//! service in the workspace.
//!
//! The original loopback server spawned one thread per accepted
//! connection, so a burst of clients could grow the thread count without
//! limit. This module replaces that with a fixed pool of connection
//! workers fed over a bounded channel:
//!
//! * `worker_threads` threads each read one request per connection, call
//!   the handler, write the response and close (the services speak
//!   `Connection: close`).
//! * The accept thread pushes connections into a `sync_channel` whose
//!   backlog is also bounded; when all workers are busy and the backlog
//!   is full, `send` blocks the accept thread, which in turn leaves
//!   further clients queued in the listener's OS accept queue —
//!   backpressure instead of unbounded spawning.
//!
//! Both the LLM loopback service (`crate::server`) and the entity-match
//! service (`er-service`) build their front ends on [`spawn_http_server`].

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{read_request, write_response, HttpRequest, HttpResponse};

/// Concurrency limits of a [`spawn_http_server`] instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Number of connection-handling worker threads (the hard cap on
    /// concurrent in-flight requests).
    pub worker_threads: usize,
    /// Accepted connections allowed to wait for a free worker before the
    /// accept loop itself blocks.
    pub backlog: usize,
    /// Per-connection read/write timeout. With a fixed pool, a client
    /// that connects and goes silent would otherwise hold a worker
    /// hostage forever (and block shutdown, which joins the workers).
    pub io_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self { worker_threads: 16, backlog: 64, io_timeout: Duration::from_secs(5) }
    }
}

/// A running HTTP server; dropping it stops the accept loop, drains the
/// workers and joins every thread.
#[derive(Debug)]
pub struct HttpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl HttpServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // The accept thread dropped the channel sender on exit; workers
        // drain what is queued and then stop.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Binds `127.0.0.1:0` and serves `handler` over a bounded worker pool.
///
/// The handler sees one parsed [`HttpRequest`] per connection and returns
/// the [`HttpResponse`] to write back; transport errors (unreadable
/// requests) are answered with a 400 before the handler is consulted.
pub fn spawn_http_server<H>(
    handler: Arc<H>,
    options: ServeOptions,
) -> std::io::Result<HttpServerHandle>
where
    H: Fn(HttpRequest) -> HttpResponse + Send + Sync + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let workers = options.worker_threads.max(1);
    // Each queued connection carries its accept timestamp so the worker
    // that picks it up can report the backlog wait.
    type QueuedConn = (TcpStream, Instant);
    let (tx, rx): (SyncSender<QueuedConn>, Receiver<QueuedConn>) =
        sync_channel(options.backlog.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || loop {
                // Hold the receiver lock only while dequeuing.
                let stream = {
                    let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                let Ok((stream, accepted)) = stream else {
                    break;
                };
                let queued_us = accepted.elapsed().as_micros() as u64;
                handle_connection(stream, handler.as_ref(), options.io_timeout, queued_us);
            })
        })
        .collect();

    let accept_stop = Arc::clone(&stop);
    let accept_handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Blocks when every worker is busy and the backlog is full:
            // deliberate backpressure instead of unbounded threads. The
            // accept stamp lets workers report time spent waiting here.
            if tx.send((stream, Instant::now())).is_err() {
                break;
            }
        }
        // Dropping `tx` here disconnects the workers' receive loop.
    });

    Ok(HttpServerHandle { addr, stop, accept_handle: Some(accept_handle), worker_handles })
}

fn handle_connection<H>(mut stream: TcpStream, handler: &H, io_timeout: Duration, queued_us: u64)
where
    H: Fn(HttpRequest) -> HttpResponse,
{
    // A zero duration would mean "no timeout" to the OS; clamp up.
    let timeout = io_timeout.max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let response = match read_request(&mut stream) {
        Ok(mut request) => {
            request.queued_us = queued_us;
            handler(request)
        }
        Err(e) => {
            // Serialized through the wire types, not by string pasting —
            // io::Error text may contain JSON-significant characters.
            let body = crate::wire::WireError {
                error: crate::wire::WireErrorBody {
                    message: format!("unreadable request: {e}"),
                    code: "invalid_request_error".into(),
                },
            };
            HttpResponse::json(
                400,
                serde_json::to_vec(&body).expect("error body serializes"),
            )
        }
    };
    let _ = write_response(&mut stream, &response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_response;
    use std::io::Write;

    fn echo_server(options: ServeOptions) -> HttpServerHandle {
        spawn_http_server(
            Arc::new(|req: HttpRequest| {
                HttpResponse::json(200, format!("{} {}", req.method, req.path).into_bytes())
            }),
            options,
        )
        .unwrap()
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\n\r\n").unwrap();
        read_response(&mut stream).unwrap()
    }

    #[test]
    fn serves_requests() {
        let server = echo_server(ServeOptions::default());
        let (status, body) = get(server.addr(), "/hello");
        assert_eq!(status, 200);
        assert_eq!(body, b"GET /hello");
    }

    #[test]
    fn bounded_pool_survives_a_connection_burst() {
        // More simultaneous clients than workers + backlog: every request
        // must still be answered, one way or another, without the server
        // spawning per-connection threads.
        let server =
            echo_server(ServeOptions { worker_threads: 2, backlog: 2, ..ServeOptions::default() });
        let addr = server.addr();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..32)
                .map(|i| {
                    scope.spawn(move || {
                        let (status, body) = get(addr, &format!("/r{i}"));
                        assert_eq!(status, 200);
                        assert_eq!(body, format!("GET /r{i}").into_bytes());
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn silent_connections_release_workers_and_shutdown() {
        // Clients that connect and send nothing must not hold workers
        // hostage: the io_timeout frees them, later requests are served,
        // and dropping the server terminates promptly.
        let server = echo_server(ServeOptions {
            worker_threads: 2,
            backlog: 2,
            io_timeout: Duration::from_millis(100),
        });
        let addr = server.addr();
        // Occupy both workers with silent connections.
        let _stalled_a = TcpStream::connect(addr).unwrap();
        let _stalled_b = TcpStream::connect(addr).unwrap();
        // A real request still completes once the timeouts fire.
        let (status, _) = get(addr, "/after-stall");
        assert_eq!(status, 200);
        // Drop with the stalled sockets still open: must not hang.
        let start = std::time::Instant::now();
        drop(server);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown blocked on silent connections"
        );
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = echo_server(ServeOptions::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut stream).unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let server =
            echo_server(ServeOptions { worker_threads: 3, backlog: 4, ..ServeOptions::default() });
        let addr = server.addr();
        let (status, _) = get(addr, "/x");
        assert_eq!(status, 200);
        drop(server);
        // The port is released: connections are refused or reset.
        let alive = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = write!(s, "GET /y HTTP/1.1\r\n\r\n");
                read_response(&mut s).is_ok()
            })
            .unwrap_or(false);
        assert!(!alive, "server still answering after drop");
    }
}
