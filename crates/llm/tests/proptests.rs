//! Property-based tests for the LLM substrate: prompt parsing totality,
//! render/parse roundtrips, tokenizer consistency and simulator
//! determinism.

use llm::engine::PairFeatures;
use llm::parse::{parse_pair_text, parse_prompt};
use llm::{parse_answers, ChatApi, ChatRequest, ModelKind, SimLlm};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = String> {
    "[a-z0-9 .,()\\-]{0,18}"
}

proptest! {
    /// The prompt parser never panics and never invents questions, on any
    /// input text.
    #[test]
    fn parse_prompt_total(text in "\\PC{0,300}") {
        let parsed = parse_prompt(&text);
        prop_assert!(parsed.questions.len() <= text.lines().count().max(1));
    }

    /// Serialized pairs built from arbitrary attribute values parse back
    /// with the right attribute count on the left side.
    #[test]
    fn pair_text_roundtrip(values in prop::collection::vec(arb_value(), 1..5)) {
        let names: Vec<String> = (0..values.len()).map(|i| format!("attr{i}")).collect();
        let left: Vec<String> = names
            .iter()
            .zip(&values)
            .map(|(n, v)| format!("{n}: {v}"))
            .collect();
        let text = format!("{} [SEP] {}", left.join(", "), left.join(", "));
        let parsed = parse_pair_text(&text);
        prop_assert_eq!(parsed.a.len(), values.len());
        for ((name, value), (pname, pvalue)) in
            names.iter().zip(&values).zip(&parsed.a)
        {
            prop_assert_eq!(name, pname);
            // Values are trimmed by the parser.
            prop_assert_eq!(value.trim(), pvalue.as_str());
        }
    }

    /// Engine feature scores stay in [0, 1] whatever the pair text.
    #[test]
    fn scores_bounded(a in arb_value(), b in arb_value(), c in arb_value(), d in arb_value()) {
        let text = format!("title: {a}, maker: {b} [SEP] title: {c}, maker: {d}");
        let features = PairFeatures::of(&parse_pair_text(&text));
        prop_assert!((0.0..=1.0).contains(&features.score));
        let dist = features.distance(&features);
        prop_assert!(dist.abs() < 1e-12);
    }

    /// The simulator is a pure function of (model, prompt, temperature,
    /// seed) — two identical requests always give identical responses.
    #[test]
    fn simulator_deterministic(
        a in arb_value(),
        b in arb_value(),
        seed in any::<u64>(),
    ) {
        let prompt = format!("Q1: title: {a} [SEP] title: {b}\nAnswer yes or no.");
        let llm = SimLlm::new();
        let req = ChatRequest::new(ModelKind::Gpt35Turbo0301, prompt, seed);
        let r1 = llm.complete(&req);
        let r2 = llm.complete(&req);
        prop_assert_eq!(r1, r2);
    }

    /// Whatever the simulator answers for n questions can be parsed back
    /// into exactly n labels.
    #[test]
    fn answers_always_parseable(
        values in prop::collection::vec((arb_value(), arb_value()), 1..6),
        seed in any::<u64>(),
    ) {
        let mut prompt = String::from("Entity resolution task.\n");
        for (i, (a, b)) in values.iter().enumerate() {
            prompt.push_str(&format!("Q{}: title: {a} [SEP] title: {b}\n", i + 1));
        }
        let llm = SimLlm::new();
        let resp = llm
            .complete(&ChatRequest::new(ModelKind::Gpt4, prompt, seed))
            .expect("no fault injection configured");
        let labels = parse_answers(&resp.content, values.len()).expect("parseable");
        prop_assert_eq!(labels.len(), values.len());
    }

    /// Token counting is monotone under concatenation and agrees with the
    /// materializing tokenizer.
    #[test]
    fn token_count_consistent(a in "\\PC{0,80}", b in "\\PC{0,80}") {
        let ca = llm::count_tokens(&a);
        let cb = llm::count_tokens(&b);
        let cab = llm::count_tokens(&format!("{a} {b}"));
        prop_assert!(cab <= ca + cb + 1);
        prop_assert!(cab + 1 >= ca.max(cb));
        prop_assert_eq!(ca, llm::tokenize(&a).len() as u64);
    }

    /// Usage accounting matches the content: completion tokens equal the
    /// tokenization of the returned text.
    #[test]
    fn usage_matches_content(a in arb_value(), seed in any::<u64>()) {
        let prompt = format!("Q1: title: {a} [SEP] title: {a}");
        let llm = SimLlm::new();
        let resp = llm
            .complete(&ChatRequest::new(ModelKind::Gpt35Turbo0301, prompt.clone(), seed))
            .unwrap();
        prop_assert_eq!(resp.usage.prompt_tokens.get(), llm::count_tokens(&prompt));
        prop_assert_eq!(resp.usage.completion_tokens.get(), llm::count_tokens(&resp.content));
    }
}
