//! The simulated model's decision engine.
//!
//! Given the parsed prompt and a [`CapabilityProfile`], the engine answers
//! each question with a yes/no decision plus the index of the attribute it
//! found most decisive (used to render a rationale). The engine never sees
//! gold labels: its judgement derives entirely from the text in the prompt,
//! the model profile, and seeded noise.
//!
//! Decision rule per question `q`:
//!
//! ```text
//! logit(q) = sharpness_eff · (score(q) − threshold)
//!          + demo_weight · tanh(Σ_d ±exp(−(dist(q,d)/bw)²))
//!          + ε,   ε ~ N(0, σ_eff²)
//! ```
//!
//! where `score(q)` is the engine's latent reading of the pair (a weighted
//! blend of per-attribute string similarities), `±` is the demonstration's
//! stated answer, `sharpness_eff` grows with in-batch diversity (contrast
//! effect) and `σ_eff` grows for single-question prompts (standard
//! prompting's instability).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use text_sim::{jaccard_tokens, levenshtein_ratio, normalize};

use crate::parse::{ParsedDemo, ParsedPair, ParsedPrompt};
use crate::profile::CapabilityProfile;

/// One answered question.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// `true` = the model says "matching".
    pub answer: bool,
    /// Confidence in `[0.5, 1)` — distance of the sigmoid output from 0.5.
    pub confidence: f64,
    /// Name of the attribute the model found most decisive (for the
    /// rationale), if any attribute was parseable.
    pub decisive_attr: Option<String>,
    /// Whether this answer was copied from the previous near-identical
    /// question in the batch (similarity-batching failure mode).
    pub copied: bool,
}

/// Answers every question in the parsed prompt.
///
/// `noise_scale` multiplies the profile's σ (driven by temperature), and
/// `rng` must be derived deterministically from the request seed so that
/// identical requests produce identical responses.
pub fn decide(
    parsed: &ParsedPrompt,
    profile: &CapabilityProfile,
    noise_scale: f64,
    rng: &mut StdRng,
) -> Vec<Decision> {
    let features: Vec<PairFeatures> = parsed.questions.iter().map(PairFeatures::of).collect();
    let scores: Vec<f64> = features.iter().map(|f| f.score).collect();

    // Contrast effect: mutually diverse batches let the model calibrate by
    // comparing questions, which sharpens its decisions. A single question
    // or a batch of near-duplicates earns no bonus.
    let spread = population_std(&scores);
    let diversity = (spread / 0.15).min(1.0);
    let sharpness_eff = if scores.len() > 1 {
        profile.sharpness + profile.batch_contrast_bonus * diversity
    } else {
        profile.sharpness
    };
    let sigma_eff = if scores.len() <= 1 {
        (profile.noise_sigma + profile.standard_extra_sigma) * noise_scale
    } else {
        // Near-duplicate batches confuse the model (§VI-C): the less
        // internal diversity, the noisier its judgements.
        profile.noise_sigma * (1.0 + profile.similar_batch_noise * (1.0 - diversity)) * noise_scale
    };

    let demo_features: Vec<(PairFeatures, bool)> = parsed
        .demos
        .iter()
        .map(|d: &ParsedDemo| (PairFeatures::of(&d.pair), d.label))
        .collect();

    let mut decisions: Vec<Decision> = Vec::with_capacity(features.len());
    for (i, feat) in features.iter().enumerate() {
        // Answer copying: when the previous question in the batch looks
        // nearly identical, lazy models repeat themselves instead of
        // re-deriving the answer (§VI-C's similarity-batching pathology).
        if i > 0 {
            let prev = &features[i - 1];
            let d = feat.distance(prev);
            if d < profile.copy_radius && rng.gen::<f64>() < profile.copy_prob {
                let prev_decision = &decisions[i - 1];
                decisions.push(Decision {
                    answer: prev_decision.answer,
                    confidence: prev_decision.confidence * 0.9,
                    decisive_attr: feat.extreme_attr(prev_decision.answer),
                    copied: true,
                });
                continue;
            }
        }

        // Demonstrations act through two channels. (1) *Label vote*: the
        // nearest demo's answer pulls the decision toward itself,
        // proportionally to relevance. (2) *Calibration*: any relevant
        // worked example — matching label or not — shows the model how
        // this kind of pair is decided, sharpening its own judgement.
        // Channel (2) is label-free, which is why one well-covering demo
        // per question is nearly as good as the per-question nearest demo
        // (§VI-C: Cover ≈ Topk-question on accuracy).
        let mut best_k = 0.0f64;
        let mut rest_sum = 0.0f64;
        for (df, label) in &demo_features {
            let d = feat.distance(df);
            let k = (-(d / profile.demo_bandwidth).powi(2)).exp();
            let signed = if *label { k } else { -k };
            if signed.abs() > best_k.abs() {
                rest_sum += best_k * 0.25;
                best_k = signed;
            } else {
                rest_sum += signed * 0.25;
            }
        }
        let demo_term = (0.35 * best_k + 0.4 * rest_sum).tanh();
        let calibration = 7.0 * best_k.abs();

        let logit = (sharpness_eff + calibration) * (feat.score - profile.threshold)
            + profile.demo_weight * demo_term
            + gaussian(rng) * sigma_eff;
        let p = sigmoid(logit);
        let answer = p >= 0.5;
        decisions.push(Decision {
            answer,
            confidence: (p - 0.5).abs() + 0.5,
            decisive_attr: feat.extreme_attr(answer),
            copied: false,
        });
    }
    decisions
}

/// The engine's latent reading of one pair: per-attribute similarities and
/// an aggregate score.
#[derive(Debug, Clone, PartialEq)]
pub struct PairFeatures {
    /// `(attribute name, similarity)` per aligned attribute.
    pub per_attr: Vec<(String, f64)>,
    /// Weighted aggregate in `[0, 1]`.
    pub score: f64,
}

impl PairFeatures {
    /// Reads a parsed pair into features. Attributes align by name when
    /// names parse on both sides, positionally otherwise.
    ///
    /// Beyond the per-attribute similarity blend, the reading applies a
    /// **conflict penalty**: a clearly disagreeing attribute where both
    /// sides carry a value is strong evidence of two different entities —
    /// the behaviour the paper observes GPT exhibiting on Walmart-Amazon's
    /// `modelno` (§VI-B). Identifier-like values (single tokens mixing
    /// letters and digits) disagree hard when unequal.
    pub fn of(pair: &ParsedPair) -> Self {
        let mut per_attr: Vec<(String, f64)> = Vec::new();
        let mut conflict: f64 = 0.0;
        for (idx, (name, va)) in pair.a.iter().enumerate() {
            let vb = lookup(&pair.b, name, idx);
            let sim = match vb {
                Some(vb) => {
                    let s = value_similarity(va, vb);
                    conflict = conflict.max(attr_conflict(va, vb, s));
                    s
                }
                None => 0.0,
            };
            per_attr.push((display_name(name, idx), sim));
        }
        if per_attr.is_empty() {
            // Nothing parseable: fall back to whole-text similarity of the
            // raw halves (an LLM would still read the characters).
            let sim = match pair.raw.split_once("[SEP]") {
                Some((l, r)) => value_similarity(l, r),
                None => 0.0,
            };
            per_attr.push(("text".to_owned(), sim));
        }
        // The first attribute (title-like) carries double weight: in the
        // Magellan schemas it is by far the most discriminative.
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, (_, s)) in per_attr.iter().enumerate() {
            let w = if i == 0 { 2.0 } else { 1.0 };
            num += w * s;
            den += w;
        }
        let base = if den > 0.0 { num / den } else { 0.0 };
        let score = (base - 0.9 * conflict).clamp(0.0, 1.0);
        Self { per_attr, score }
    }

    /// Arity-normalized Euclidean distance between two feature readings,
    /// aligned by attribute name.
    pub fn distance(&self, other: &PairFeatures) -> f64 {
        let names: Vec<&str> = self
            .per_attr
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(other.per_attr.iter().map(|(n, _)| n.as_str()))
            .collect();
        let mut uniq: Vec<&str> = names;
        uniq.sort_unstable();
        uniq.dedup();
        let m = uniq.len().max(1);
        let mut sum = 0.0;
        for name in &uniq {
            let a = self.attr_sim(name).unwrap_or(0.5);
            let b = other.attr_sim(name).unwrap_or(0.5);
            sum += (a - b) * (a - b);
        }
        (sum / m as f64).sqrt()
    }

    fn attr_sim(&self, name: &str) -> Option<f64> {
        self.per_attr
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    /// Attribute the model cites in its rationale: the most similar one
    /// when answering yes, the least similar when answering no.
    pub fn extreme_attr(&self, answer: bool) -> Option<String> {
        let iter = self.per_attr.iter();
        let chosen = if answer {
            iter.max_by(|a, b| a.1.total_cmp(&b.1))
        } else {
            self.per_attr.iter().min_by(|a, b| a.1.total_cmp(&b.1))
        };
        chosen.map(|(n, _)| n.clone())
    }
}

fn lookup<'v>(attrs: &'v [(String, String)], name: &str, idx: usize) -> Option<&'v str> {
    if !name.is_empty() {
        if let Some((_, v)) = attrs.iter().find(|(n, _)| n == name) {
            return Some(v.as_str());
        }
    }
    attrs.get(idx).map(|(_, v)| v.as_str())
}

fn display_name(name: &str, idx: usize) -> String {
    if name.is_empty() {
        format!("field{idx}")
    } else {
        name.to_owned()
    }
}

/// True for identifier-like values: one token mixing letters and digits
/// (model numbers, SKUs). Exact disagreement on these is decisive.
fn is_identifier(v: &str) -> bool {
    let t = v.trim();
    !t.is_empty()
        && !t.contains(char::is_whitespace)
        && t.chars().any(|c| c.is_ascii_alphabetic())
        && t.chars().any(|c| c.is_ascii_digit())
}

/// Tokens that mark a different *version* of an otherwise identically
/// named entity — the distinctions an LLM reads as "not the same entity"
/// (live recordings, remixes, sequels, second locations).
const VARIANT_MARKERS: &[&str] = &[
    "live",
    "remix",
    "deluxe",
    "remastered",
    "acoustic",
    "double",
    "part",
    "vol",
    "volume",
    "downtown",
    "ii",
    "iii",
];

/// Disagreement strength of one aligned attribute where both sides carry a
/// value. Mirrors how LLMs read entity pairs (and the paper's §VI-B
/// anecdote that GPT keys on `modelno`):
///
/// * unequal identifier values ("S1230" vs "S1231") — decisive;
/// * disjoint identifier/numeric *tokens* inside longer values
///   ("photoshop 2006" vs "photoshop 2007") — strong;
/// * a variant marker on exactly one side ("… (live)") — strong;
/// * plain dissimilarity of texty values — proportional. Purely numeric
///   single-token values (prices, years as standalone attributes) are
///   exempt: formatting drift on those is routine in matching records.
fn attr_conflict(va: &str, vb: &str, sim: f64) -> f64 {
    let na = normalize(va);
    let nb = normalize(vb);
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    if is_identifier(va) && is_identifier(vb) {
        return if na == nb { 0.0 } else { 0.45 };
    }
    let ta = jaccard_word_tokens(&na);
    let tb = jaccard_word_tokens(&nb);
    let mut conflict: f64 = 0.0;

    // Disjoint digit-bearing tokens on both sides: different versions,
    // model numbers or vintages embedded in otherwise similar text.
    let nums_a: Vec<&String> = ta
        .iter()
        .filter(|t| t.chars().any(|c| c.is_ascii_digit()))
        .collect();
    let nums_b: Vec<&String> = tb
        .iter()
        .filter(|t| t.chars().any(|c| c.is_ascii_digit()))
        .collect();
    if !nums_a.is_empty() && !nums_b.is_empty() && nums_a.iter().all(|t| !nums_b.contains(t)) {
        conflict = conflict.max(0.35);
    }

    // A variant marker on exactly one side.
    for marker in VARIANT_MARKERS {
        let in_a = ta.iter().any(|t| t == marker);
        let in_b = tb.iter().any(|t| t == marker);
        if in_a != in_b {
            conflict = conflict.max(0.30);
        }
    }

    // Plain dissimilarity, for texty values only: single-token pure-number
    // values (prices, years) drift in format too often to be evidence.
    let texty = ta.len() >= 2
        || tb.len() >= 2
        || na.chars().any(|c| c.is_ascii_alphabetic())
        || nb.chars().any(|c| c.is_ascii_alphabetic());
    if texty {
        conflict = conflict.max((0.55 - sim).max(0.0));
    }
    conflict
}

fn jaccard_word_tokens(normalized: &str) -> Vec<String> {
    normalized
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Blend of edit-based and token-based similarity over normalized values.
/// Both-missing reads as weak evidence (0.5); one-missing as disagreement.
fn value_similarity(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    match (na.is_empty(), nb.is_empty()) {
        (true, true) => 0.5,
        (true, false) | (false, true) => 0.0,
        (false, false) => 0.5 * levenshtein_ratio(&na, &nb) + 0.5 * jaccard_tokens(&na, &nb),
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn population_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Standard normal sample via Box-Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Derives the per-call RNG from the request seed and the prompt text, so
/// identical requests are reproducible while different prompts decorrelate.
pub fn call_rng(seed: u64, prompt: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in prompt.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_prompt;
    use crate::profile::ModelKind;

    fn quiet_profile() -> CapabilityProfile {
        CapabilityProfile {
            noise_sigma: 0.0,
            standard_extra_sigma: 0.0,
            copy_prob: 0.0,
            ..ModelKind::Gpt4.profile()
        }
    }

    fn rng() -> StdRng {
        call_rng(7, "test")
    }

    #[test]
    fn identical_pair_answers_yes() {
        let p = parse_prompt("Q1: title: iphone 13, id: 77 [SEP] title: iphone 13, id: 77");
        let d = decide(&p, &quiet_profile(), 1.0, &mut rng());
        assert_eq!(d.len(), 1);
        assert!(d[0].answer);
        assert!(!d[0].copied);
    }

    #[test]
    fn disjoint_pair_answers_no() {
        let p =
            parse_prompt("Q1: title: lawn mower, id: 9 [SEP] title: quantum textbook, id: 4411");
        let d = decide(&p, &quiet_profile(), 1.0, &mut rng());
        assert!(!d[0].answer);
        assert!(d[0].decisive_attr.is_some());
    }

    #[test]
    fn relevant_demo_flips_borderline_case() {
        // A borderline question: moderate similarity. Without demos, the
        // quiet model with threshold 0.5 sits near the boundary.
        let q = "Q1: title: acer aspire 5 laptop, id: a515 [SEP] title: acer aspire five, id: a515";
        let base = parse_prompt(q);
        let without = decide(&base, &quiet_profile(), 1.0, &mut rng());

        // Add a nearby matching demonstration (same textual pattern, label
        // yes): the kernel term must push the logit up.
        let with_demo_prompt = format!(
            "D1: title: asus rog strix laptop, id: g713 [SEP] title: asus rog strix, id: g713 => yes\n{q}"
        );
        let with = decide(
            &parse_prompt(&with_demo_prompt),
            &quiet_profile(),
            1.0,
            &mut rng(),
        );
        assert!(with[0].confidence >= without[0].confidence || with[0].answer);
    }

    #[test]
    fn demo_labels_control_direction() {
        let q = "Q1: title: widget alpha, id: 1 [SEP] title: widget alpha v2, id: 1x";
        let yes_prompt = format!(
            "D1: title: widget beta, id: 2 [SEP] title: widget beta v2, id: 2x => yes\n{q}"
        );
        let no_prompt =
            format!("D1: title: widget beta, id: 2 [SEP] title: widget beta v2, id: 2x => no\n{q}");
        let profile = quiet_profile();
        let yes = decide(&parse_prompt(&yes_prompt), &profile, 1.0, &mut rng());
        let no = decide(&parse_prompt(&no_prompt), &profile, 1.0, &mut rng());
        // Identical question, opposite demo labels: the yes-demo run must
        // not be less match-inclined than the no-demo run.
        let incline = |d: &Decision| {
            if d.answer {
                d.confidence
            } else {
                -d.confidence
            }
        };
        assert!(incline(&yes[0]) > incline(&no[0]));
    }

    #[test]
    fn near_duplicate_questions_get_copied_answers() {
        let profile = CapabilityProfile {
            copy_prob: 1.0,
            copy_radius: 0.05,
            noise_sigma: 0.0,
            standard_extra_sigma: 0.0,
            ..ModelKind::Gpt35Turbo0301.profile()
        };
        let p = parse_prompt(
            "Q1: title: red chair, id: 5 [SEP] title: red chair, id: 5\n\
             Q2: title: red chair, id: 5 [SEP] title: red chair, id: 5",
        );
        let d = decide(&p, &profile, 1.0, &mut rng());
        assert!(d[1].copied);
        assert_eq!(d[0].answer, d[1].answer);
    }

    #[test]
    fn noise_scale_zero_is_deterministic() {
        let p = parse_prompt("Q1: title: a b c, id: 1 [SEP] title: a b d, id: 2");
        let d1 = decide(&p, &quiet_profile(), 0.0, &mut call_rng(1, "x"));
        let d2 = decide(&p, &quiet_profile(), 0.0, &mut call_rng(2, "y"));
        assert_eq!(d1[0].answer, d2[0].answer);
    }

    #[test]
    fn single_question_noisier_than_batch() {
        // With the full profile (nonzero sigmas), repeated single-question
        // calls over many seeds should flip more often than batch calls on
        // a borderline question.
        let profile = ModelKind::Gpt35Turbo0301.profile();
        let borderline =
            "title: zen stone mp3 4gb, id: c31 [SEP] title: zen stone mp3 8gb, id: c32";
        let single = format!("Q1: {borderline}");
        // The batch embeds the same question among diverse companions.
        let batch = format!(
            "Q1: {borderline}\n\
             Q2: title: desk lamp, id: 1 [SEP] title: desk lamp, id: 1\n\
             Q3: title: red car, id: 2 [SEP] title: blue boat, id: 9"
        );
        let flips = |prompt: &str, qidx: usize| {
            let parsed = parse_prompt(prompt);
            let mut yes = 0;
            for seed in 0..60u64 {
                let d = decide(&parsed, &profile, 1.0, &mut call_rng(seed, prompt));
                if d[qidx].answer {
                    yes += 1;
                }
            }
            yes.min(60 - yes) // instability: distance from unanimity
        };
        let single_instability = flips(&single, 0);
        let batch_instability = flips(&batch, 0);
        assert!(
            single_instability >= batch_instability,
            "single {single_instability} < batch {batch_instability}"
        );
    }

    #[test]
    fn feature_distance_is_zero_on_self() {
        let p = parse_prompt("Q1: title: x, id: 1 [SEP] title: x, id: 1");
        let f = PairFeatures::of(&p.questions[0]);
        assert_eq!(f.distance(&f), 0.0);
    }

    #[test]
    fn both_missing_is_neutral() {
        assert_eq!(value_similarity("", ""), 0.5);
        assert_eq!(value_similarity("x", ""), 0.0);
    }

    #[test]
    fn call_rng_depends_on_both_inputs() {
        let a: u64 = call_rng(1, "p").gen();
        let b: u64 = call_rng(2, "p").gen();
        let c: u64 = call_rng(1, "q").gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
