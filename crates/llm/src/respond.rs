//! Response rendering (simulator side) and answer extraction (client side).

use er_core::MatchLabel;

use crate::engine::Decision;

/// Renders decisions into a natural-language-ish completion:
///
/// ```text
/// Q1: yes — the `id` values agree.
/// Q2: no — the `title` values differ.
/// ```
///
/// The rationale phrasing varies with confidence so responses look like
/// generated text rather than a fixed template, and — like a real model —
/// the *client* must parse labels back out of prose.
pub fn render_answers(decisions: &[Decision]) -> String {
    let mut out = String::new();
    for (i, d) in decisions.iter().enumerate() {
        let verdict = if d.answer { "yes" } else { "no" };
        let attr = d.decisive_attr.as_deref().unwrap_or("description");
        let rationale = match (d.answer, d.confidence > 0.8) {
            (true, true) => format!("the `{attr}` values agree exactly"),
            (true, false) => format!("the `{attr}` values are close enough to refer to one entity"),
            (false, true) => format!("the `{attr}` values clearly differ"),
            (false, false) => format!("the `{attr}` values do not line up"),
        };
        out.push_str(&format!("Q{}: {verdict} — {rationale}.\n", i + 1));
    }
    out
}

/// Failure to extract per-question answers from a completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerParseError {
    /// Fewer answers than questions were found.
    Missing {
        /// Answers expected (questions asked).
        expected: usize,
        /// Answers found.
        found: usize,
    },
    /// The completion was empty.
    Empty,
}

impl std::fmt::Display for AnswerParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnswerParseError::Missing { expected, found } => {
                write!(f, "expected {expected} answers, found {found}")
            }
            AnswerParseError::Empty => write!(f, "completion was empty"),
        }
    }
}

impl std::error::Error for AnswerParseError {}

/// Extracts `expected` yes/no answers from a completion.
///
/// Primary format: lines containing `Q<i>: <verdict>`. Fallback: any lines
/// starting with a verdict word, taken in order. This mirrors how the
/// paper's harness (and any production client) must defensively parse LLM
/// output.
pub fn parse_answers(content: &str, expected: usize) -> Result<Vec<MatchLabel>, AnswerParseError> {
    if content.trim().is_empty() {
        return Err(AnswerParseError::Empty);
    }
    let mut indexed: Vec<(usize, MatchLabel)> = Vec::new();
    let mut ordered: Vec<MatchLabel> = Vec::new();
    for line in content.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some((idx, rest)) = split_q_tag(trimmed) {
            if let Some(label) = leading_verdict(rest) {
                indexed.push((idx, label));
                continue;
            }
        }
        if let Some(label) = leading_verdict(trimmed) {
            ordered.push(label);
        }
    }
    // Prefer explicitly indexed answers; fill gaps from ordered ones.
    let mut out: Vec<Option<MatchLabel>> = vec![None; expected];
    for (idx, label) in indexed {
        if idx >= 1 && idx <= expected && out[idx - 1].is_none() {
            out[idx - 1] = Some(label);
        }
    }
    let mut ordered_iter = ordered.into_iter();
    for slot in out.iter_mut() {
        if slot.is_none() {
            *slot = ordered_iter.next();
        }
    }
    let found = out.iter().filter(|s| s.is_some()).count();
    if found < expected {
        return Err(AnswerParseError::Missing { expected, found });
    }
    Ok(out.into_iter().map(Option::unwrap).collect())
}

/// Splits a leading `Q<number>:` tag, returning the 1-based index and the
/// remainder.
fn split_q_tag(line: &str) -> Option<(usize, &str)> {
    let rest = line.strip_prefix(['Q', 'q'])?;
    let digits_end = rest.find(|c: char| !c.is_ascii_digit())?;
    if digits_end == 0 {
        return None;
    }
    let idx: usize = rest[..digits_end].parse().ok()?;
    let after = rest[digits_end..]
        .trim_start_matches([':', '.', ')'])
        .trim_start();
    Some((idx, after))
}

/// Reads a verdict from the start of free text.
fn leading_verdict(text: &str) -> Option<MatchLabel> {
    let lower = text.trim_start().to_ascii_lowercase();
    if lower.starts_with("yes") || lower.starts_with("match") || lower.starts_with("same") {
        Some(MatchLabel::Matching)
    } else if lower.starts_with("no") || lower.starts_with("different") {
        Some(MatchLabel::NonMatching)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Decision;

    fn d(answer: bool, confidence: f64) -> Decision {
        Decision { answer, confidence, decisive_attr: Some("title".into()), copied: false }
    }

    #[test]
    fn render_then_parse_roundtrips() {
        let decisions = vec![d(true, 0.95), d(false, 0.6), d(true, 0.55), d(false, 0.99)];
        let text = render_answers(&decisions);
        let labels = parse_answers(&text, 4).unwrap();
        let expect: Vec<MatchLabel> = decisions
            .iter()
            .map(|x| MatchLabel::from_bool(x.answer))
            .collect();
        assert_eq!(labels, expect);
    }

    #[test]
    fn parses_unindexed_verdict_lines() {
        let labels = parse_answers("yes\nno, they differ\nYes definitely", 3).unwrap();
        assert_eq!(
            labels,
            vec![
                MatchLabel::Matching,
                MatchLabel::NonMatching,
                MatchLabel::Matching
            ]
        );
    }

    #[test]
    fn mixed_indexed_and_ordered() {
        // Q2 indexed, the other two answers given as bare lines in order.
        let text = "Q2: no — mismatch.\nyes\nyes";
        let labels = parse_answers(text, 3).unwrap();
        assert_eq!(labels[1], MatchLabel::NonMatching);
        assert_eq!(labels[0], MatchLabel::Matching);
        assert_eq!(labels[2], MatchLabel::Matching);
    }

    #[test]
    fn missing_answers_is_error() {
        let err = parse_answers("Q1: yes.", 3).unwrap_err();
        assert_eq!(err, AnswerParseError::Missing { expected: 3, found: 1 });
    }

    #[test]
    fn empty_is_error() {
        assert_eq!(
            parse_answers("   \n ", 1).unwrap_err(),
            AnswerParseError::Empty
        );
    }

    #[test]
    fn out_of_range_indices_ignored() {
        let text = "Q9: yes.\nno";
        let labels = parse_answers(text, 1).unwrap();
        assert_eq!(labels, vec![MatchLabel::NonMatching]);
    }

    #[test]
    fn q_tag_variants() {
        assert_eq!(split_q_tag("Q3: yes"), Some((3, "yes")));
        assert_eq!(split_q_tag("q12. no"), Some((12, "no")));
        assert_eq!(split_q_tag("Q) nope"), None);
        assert_eq!(split_q_tag("hello"), None);
    }

    #[test]
    fn rationale_mentions_attribute() {
        let text = render_answers(&[d(false, 0.9)]);
        assert!(text.contains("`title`"));
        assert!(text.starts_with("Q1: no"));
    }
}
