//! Deterministic subword tokenizer.
//!
//! Approximates a BPE tokenizer's *counting behaviour* — the only property
//! the cost model needs — with a transparent rule set: text splits into
//! word / number / punctuation pieces, and long alphanumeric pieces break
//! into subword chunks of at most [`MAX_SUBWORD_CHARS`] characters. English
//! prose lands near the familiar "~4 characters per token" ratio while the
//! algorithm stays reproducible without a vocabulary file.

/// Maximum characters per subword chunk.
pub const MAX_SUBWORD_CHARS: usize = 4;

/// Splits `text` into subword tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            word.push(ch);
            continue;
        }
        flush_word(&mut tokens, &mut word);
        if !ch.is_whitespace() {
            // Punctuation and symbols are single tokens, as in BPE vocabs.
            tokens.push(ch.to_string());
        }
    }
    flush_word(&mut tokens, &mut word);
    tokens
}

/// Number of tokens in `text`. Equivalent to `tokenize(text).len()` but
/// allocation-free; this is the hot path of cost accounting.
pub fn count_tokens(text: &str) -> u64 {
    let mut count = 0u64;
    let mut word_len = 0usize;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            word_len += 1;
            continue;
        }
        count += chunks_of(word_len);
        word_len = 0;
        if !ch.is_whitespace() {
            count += 1;
        }
    }
    count + chunks_of(word_len)
}

fn chunks_of(len: usize) -> u64 {
    len.div_ceil(MAX_SUBWORD_CHARS) as u64
}

fn flush_word(tokens: &mut Vec<String>, word: &mut String) {
    if word.is_empty() {
        return;
    }
    let chars: Vec<char> = word.chars().collect();
    for chunk in chars.chunks(MAX_SUBWORD_CHARS) {
        tokens.push(chunk.iter().collect());
    }
    word.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert!(tokenize("").is_empty());
        assert_eq!(count_tokens(""), 0);
    }

    #[test]
    fn short_words_one_token() {
        assert_eq!(tokenize("the cat sat"), vec!["the", "cat", "sat"]);
    }

    #[test]
    fn long_words_split() {
        assert_eq!(tokenize("entity"), vec!["enti", "ty"]);
        assert_eq!(tokenize("resolution"), vec!["reso", "luti", "on"]);
    }

    #[test]
    fn punctuation_is_tokens() {
        assert_eq!(tokenize("a, b."), vec!["a", ",", "b", "."]);
    }

    #[test]
    fn count_matches_tokenize() {
        for text in [
            "",
            "hello world",
            "title: iphone-13, id: 0256 [SEP] title: iphone-14, id: ",
            "a(b)c{d}e 12345678 UPPER lower MiXeD",
            "unicode: héllo wörld 日本語テキスト",
        ] {
            assert_eq!(
                count_tokens(text),
                tokenize(text).len() as u64,
                "mismatch on {text:?}"
            );
        }
    }

    #[test]
    fn prose_lands_near_four_chars_per_token() {
        let prose = "This is a deduplication task. Decide whether the two \
                     entity descriptions refer to the same real world entity.";
        let tokens = count_tokens(prose) as f64;
        let chars = prose.chars().count() as f64;
        let ratio = chars / tokens;
        assert!(
            (3.0..6.0).contains(&ratio),
            "chars/token ratio {ratio} outside plausible BPE range"
        );
    }

    #[test]
    fn whitespace_never_counts() {
        assert_eq!(count_tokens("   \t\n  "), 0);
        assert_eq!(count_tokens("a   b"), count_tokens("a b"));
    }
}
