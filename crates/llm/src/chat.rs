//! Chat-completion request/response types and errors.
//!
//! Deliberately shaped like the OpenAI chat-completions contract so the
//! HTTP service in `llm-service` can expose the simulator without an
//! adaptation layer, and so a real client could implement [`crate::ChatApi`]
//! against the production API.

use er_core::{Money, TokenCount};
use serde::{Deserialize, Serialize};

use crate::profile::ModelKind;

/// A chat-completion request: one prompt to one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatRequest {
    /// Target model.
    pub model: ModelKind,
    /// The full rendered prompt (system + user content concatenated; the
    /// ER prompts in this workspace are single-message).
    pub prompt: String,
    /// Sampling temperature. The paper sets 0.01 (§VI-A); the simulator
    /// scales its noise by `temperature / 0.01`, so higher temperatures
    /// produce noisier answers just like a real model.
    pub temperature: f64,
    /// Per-request seed for reproducible runs. Two identical requests with
    /// the same seed produce identical responses.
    pub seed: u64,
    /// Caller's trace id, propagated across service hops as a
    /// `traceparent`-style header by HTTP clients (0 = untraced). Never
    /// affects the completion itself.
    #[serde(default)]
    pub trace_id: u64,
    /// Which retry attempt this request is (0 = first try); recorded on
    /// the callee's child span.
    #[serde(default)]
    pub attempt: u32,
}

impl ChatRequest {
    /// A request with the paper's default temperature (0.01).
    pub fn new(model: ModelKind, prompt: impl Into<String>, seed: u64) -> Self {
        Self { model, prompt: prompt.into(), temperature: 0.01, seed, trace_id: 0, attempt: 0 }
    }

    /// Stamps the propagated trace context onto the request.
    pub fn with_trace(mut self, trace_id: u64, attempt: u32) -> Self {
        self.trace_id = trace_id;
        self.attempt = attempt;
        self
    }
}

/// Why the model stopped generating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FinishReason {
    /// Natural end of answer.
    Stop,
    /// Output cut at the token limit.
    Length,
}

/// Token usage of one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Usage {
    /// Tokens in the prompt.
    pub prompt_tokens: TokenCount,
    /// Tokens in the completion.
    pub completion_tokens: TokenCount,
}

impl Usage {
    /// Prompt + completion tokens.
    pub fn total(&self) -> TokenCount {
        self.prompt_tokens + self.completion_tokens
    }
}

/// A successful chat completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatResponse {
    /// The generated text.
    pub content: String,
    /// Why generation stopped.
    pub finish_reason: FinishReason,
    /// Token usage.
    pub usage: Usage,
    /// Cost of this call at the model's price table.
    pub cost: Money,
}

/// Errors surfaced by a chat API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The prompt exceeded the model's context window.
    ContextLengthExceeded {
        /// Tokens in the offending prompt.
        prompt_tokens: u64,
        /// The model's limit.
        limit: u64,
    },
    /// The service rejected the call due to rate limiting; retry later.
    RateLimited,
    /// Transport-level failure (used by the HTTP client).
    Transport(String),
    /// The service answered with a malformed or unparseable payload.
    Protocol(String),
    /// The requested model is unknown to the endpoint.
    UnknownModel(String),
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::ContextLengthExceeded { prompt_tokens, limit } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds the {limit}-token context window"
            ),
            LlmError::RateLimited => write!(f, "rate limited; retry with backoff"),
            LlmError::Transport(msg) => write!(f, "transport error: {msg}"),
            LlmError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            LlmError::UnknownModel(id) => write!(f, "unknown model id: {id}"),
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_to_paper_temperature() {
        let r = ChatRequest::new(ModelKind::Gpt4, "hello", 1);
        assert_eq!(r.temperature, 0.01);
        assert_eq!(r.seed, 1);
    }

    #[test]
    fn usage_total() {
        let u = Usage { prompt_tokens: TokenCount(10), completion_tokens: TokenCount(5) };
        assert_eq!(u.total(), TokenCount(15));
    }

    #[test]
    fn errors_display() {
        let e = LlmError::ContextLengthExceeded { prompt_tokens: 9000, limit: 4096 };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4096"));
        assert!(!LlmError::RateLimited.to_string().is_empty());
    }

    #[test]
    fn request_and_response_are_serializable() {
        // The wire format lives in llm-service; here we only pin that the
        // serde impls exist (compile-time check via trait bounds).
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<ChatRequest>();
        assert_serde::<ChatResponse>();
        assert_serde::<Usage>();
    }
}
