//! Fuzzy prompt parsing.
//!
//! The simulator receives the *rendered prompt text* — exactly what a real
//! API receives — and must recover the task structure from it, the way an
//! LLM implicitly does. The parser is deliberately tolerant: extra prose,
//! blank lines, case differences and unknown sections are ignored rather
//! than rejected.
//!
//! Recognized line shapes (the framework's prompt builder emits these, see
//! `batcher-core::prompt`):
//!
//! ```text
//! D3: title: a, id: 1 [SEP] title: b, id: 2 => yes
//! Q7: title: x, id: 9 [SEP] title: y, id: 9
//! ```
//!
//! Everything else is accumulated into the task description.

/// One attribute of a parsed entity: `(name, value)`.
pub type ParsedAttr = (String, String);

/// A parsed entity pair: the attributes of both sides plus the raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPair {
    /// Attributes of the left entity, in textual order.
    pub a: Vec<ParsedAttr>,
    /// Attributes of the right entity, in textual order.
    pub b: Vec<ParsedAttr>,
    /// The raw pair text as it appeared in the prompt.
    pub raw: String,
}

/// A demonstration: a pair with its stated answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDemo {
    /// The demonstrated pair.
    pub pair: ParsedPair,
    /// The demonstrated answer (`true` = matching).
    pub label: bool,
}

/// The structure recovered from a prompt.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedPrompt {
    /// Free text outside demonstration/question lines.
    pub task_description: String,
    /// In-context demonstrations, in prompt order.
    pub demos: Vec<ParsedDemo>,
    /// Questions to answer, in prompt order.
    pub questions: Vec<ParsedPair>,
}

/// Parses a full prompt into its structure. Never fails: unrecognizable
/// content lands in `task_description`, mirroring how an LLM would simply
/// read past it.
pub fn parse_prompt(prompt: &str) -> ParsedPrompt {
    let mut out = ParsedPrompt::default();
    for line in prompt.lines() {
        let trimmed = line.trim();
        if let Some(rest) = strip_tag(trimmed, 'D') {
            if let Some((pair_text, label_text)) = rest.rsplit_once("=>") {
                if let Some(label) = parse_label(label_text) {
                    out.demos
                        .push(ParsedDemo { pair: parse_pair_text(pair_text.trim()), label });
                    continue;
                }
            }
            // A D-line without a readable answer is still a pair the model
            // can look at, but carries no supervision; treat as prose.
            out.push_description(trimmed);
        } else if let Some(rest) = strip_tag(trimmed, 'Q') {
            out.questions.push(parse_pair_text(rest.trim()));
        } else if !trimmed.is_empty() {
            out.push_description(trimmed);
        }
    }
    out
}

impl ParsedPrompt {
    fn push_description(&mut self, line: &str) {
        if !self.task_description.is_empty() {
            self.task_description.push('\n');
        }
        self.task_description.push_str(line);
    }
}

/// Strips a leading `D<number>:` / `Q<number>:` tag (case-insensitive)
/// and returns the remainder.
fn strip_tag(line: &str, tag: char) -> Option<&str> {
    let mut chars = line.char_indices();
    let (_, first) = chars.next()?;
    if !first.eq_ignore_ascii_case(&tag) {
        return None;
    }
    let mut saw_digit = false;
    for (i, c) in chars {
        if c.is_ascii_digit() {
            saw_digit = true;
        } else if c == ':' && saw_digit {
            return Some(&line[i + 1..]);
        } else {
            return None;
        }
    }
    None
}

/// Reads a yes/no answer out of free text (`"yes"`, `"No."`, `"match"`...).
fn parse_label(text: &str) -> Option<bool> {
    let lower = text.trim().to_ascii_lowercase();
    if lower.starts_with("yes") || lower.starts_with("match") {
        Some(true)
    } else if lower.starts_with("no") || lower.starts_with("different") {
        Some(false)
    } else {
        None
    }
}

/// Splits a serialized pair on `[SEP]` and parses each side's attributes.
pub fn parse_pair_text(text: &str) -> ParsedPair {
    let (left, right) = match text.split_once("[SEP]") {
        Some((l, r)) => (l, r),
        // Degenerate input: treat everything as the left entity.
        None => (text, ""),
    };
    ParsedPair { a: parse_attrs(left.trim()), b: parse_attrs(right.trim()), raw: text.to_owned() }
}

/// Parses `name: value, name2: value2, ...`, tolerating commas and colons
/// inside values.
///
/// An attribute start is recognized as a single word followed by `": "`
/// at the beginning of the text or after `", "`. Anything between two
/// attribute starts belongs to the earlier attribute's value — the same
/// disambiguation a human reader applies.
fn parse_attrs(text: &str) -> Vec<ParsedAttr> {
    let mut attrs: Vec<ParsedAttr> = Vec::new();
    if text.is_empty() {
        return attrs;
    }
    // Candidate attribute starts: byte offsets where a name begins. All
    // boundary checks work on raw bytes so multibyte characters inside
    // values can never cause a slicing panic.
    let bytes = text.as_bytes();
    // (name_start, name_end, value_start) byte offsets per attribute.
    let mut starts: Vec<(usize, usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let at_boundary = i == 0 || (i >= 2 && bytes[i - 2] == b',' && bytes[i - 1] == b' ');
        if at_boundary && text.is_char_boundary(i) {
            if let Some((name_end, value_start)) = read_name(text, i) {
                starts.push((i, name_end, value_start));
                i = name_end;
                continue;
            }
        }
        i += 1;
    }
    if starts.is_empty() {
        // No recognizable structure: expose the whole text as one value.
        return vec![(String::new(), text.to_owned())];
    }
    for (k, &(name_start, name_end, value_start)) in starts.iter().enumerate() {
        let name = text[name_start..name_end].trim().to_owned();
        let value_end = if k + 1 < starts.len() {
            // Value runs up to the ", " preceding the next attribute name.
            starts[k + 1].0.saturating_sub(2)
        } else {
            text.len()
        };
        let value = text[value_start..value_end.max(value_start)]
            .trim()
            .to_owned();
        attrs.push((name, value));
    }
    attrs
}

/// If a word followed by `": "` begins at `start`, returns
/// `(end_of_name, start_of_value)`.
fn read_name(text: &str, start: usize) -> Option<(usize, usize)> {
    let rest = &text[start..];
    let mut name_len = 0usize;
    for c in rest.chars() {
        if c.is_alphanumeric() || c == '_' || c == '-' {
            name_len += c.len_utf8();
        } else {
            break;
        }
    }
    if name_len == 0 {
        return None;
    }
    if rest[name_len..].starts_with(": ") {
        Some((start + name_len, start + name_len + 2))
    } else if rest[name_len..].starts_with(':') && rest[name_len + 1..].is_empty() {
        // Trailing "name:" with empty value at end of text.
        Some((start + name_len, start + name_len + 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_attrs() {
        let p = parse_pair_text("title: iphone-13, id: 0256 [SEP] title: iphone-14, id: ");
        assert_eq!(
            p.a,
            vec![
                ("title".into(), "iphone-13".into()),
                ("id".into(), "0256".into())
            ]
        );
        assert_eq!(
            p.b,
            vec![
                ("title".into(), "iphone-14".into()),
                ("id".into(), String::new())
            ]
        );
    }

    #[test]
    fn commas_inside_values_survive() {
        let p = parse_pair_text(
            "title: Rashi, genre: Dance,Music,Hip-Hop [SEP] title: Rashi, genre: Music",
        );
        assert_eq!(p.a[1], ("genre".into(), "Dance,Music,Hip-Hop".into()));
        assert_eq!(p.b[1], ("genre".into(), "Music".into()));
    }

    #[test]
    fn colons_inside_values_survive() {
        // "time: 3:45" — the 45 is not an attribute because "3" is followed
        // by ":4", not ": ".
        let p = parse_pair_text("title: intro, time: 3:45 [SEP] title: intro, time: 3:45");
        assert_eq!(p.a[1], ("time".into(), "3:45".into()));
    }

    #[test]
    fn missing_sep_is_tolerated() {
        let p = parse_pair_text("title: lonely record");
        assert_eq!(p.a.len(), 1);
        assert!(p.b.is_empty());
    }

    #[test]
    fn full_prompt_roundtrip() {
        let prompt = "\
This is an entity resolution task.

Demonstrations:
D1: title: a [SEP] title: a => yes
D2: title: a [SEP] title: z => no, they differ

Questions:
Q1: title: iphone [SEP] title: iphone
Q2: title: mac [SEP] title: windows

Answer each question with yes or no.";
        let parsed = parse_prompt(prompt);
        assert_eq!(parsed.demos.len(), 2);
        assert!(parsed.demos[0].label);
        assert!(!parsed.demos[1].label);
        assert_eq!(parsed.questions.len(), 2);
        assert!(parsed.task_description.contains("entity resolution"));
        assert!(parsed.task_description.contains("Answer each question"));
    }

    #[test]
    fn unlabeled_demo_becomes_prose() {
        let parsed = parse_prompt("D1: title: a [SEP] title: b => maybe?");
        assert!(parsed.demos.is_empty());
        assert!(parsed.task_description.contains("maybe"));
    }

    #[test]
    fn tag_variants() {
        assert!(strip_tag("Q12: x", 'Q').is_some());
        assert!(strip_tag("q3: x", 'Q').is_some());
        assert!(strip_tag("Q: x", 'Q').is_none()); // no digits
        assert!(strip_tag("Quant: x", 'Q').is_none());
        assert!(strip_tag("", 'Q').is_none());
    }

    #[test]
    fn label_variants() {
        assert_eq!(parse_label(" Yes, same entity"), Some(true));
        assert_eq!(parse_label("NO"), Some(false));
        assert_eq!(parse_label("match"), Some(true));
        assert_eq!(parse_label("different versions"), Some(false));
        assert_eq!(parse_label("uncertain"), None);
    }

    #[test]
    fn empty_prompt() {
        let parsed = parse_prompt("");
        assert!(parsed.demos.is_empty());
        assert!(parsed.questions.is_empty());
        assert!(parsed.task_description.is_empty());
    }

    #[test]
    fn unstructured_side_becomes_single_value() {
        let p = parse_pair_text("just some words [SEP] more words");
        assert_eq!(p.a, vec![(String::new(), "just some words".into())]);
        assert_eq!(p.b, vec![(String::new(), "more words".into())]);
    }
}
