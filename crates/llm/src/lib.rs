//! Simulated large language models for entity resolution.
//!
//! The BatchER paper evaluates against proprietary LLM APIs (GPT-3.5-turbo
//! 0301/0613, GPT-4-1106, Llama2-chat-70B). Those are unavailable offline,
//! so this crate provides a **behavioural simulator** that exercises exactly
//! the interfaces a real deployment would:
//!
//! 1. The caller renders a *textual* prompt (task description +
//!    demonstrations + questions) and submits it through the [`ChatApi`]
//!    trait.
//! 2. The simulator re-parses the prompt text ([`parse`]), never seeing any
//!    structured data or gold labels.
//! 3. A noisy decision engine ([`engine`]) answers each question using the
//!    entity text plus whatever demonstrations the prompt contains; model
//!    capability is controlled by a per-model [`profile::CapabilityProfile`].
//! 4. The response is rendered back to natural-language-ish text
//!    ([`respond`]) that the client must parse, with failure injection
//!    available for resilience testing.
//! 5. Token counting ([`tokenizer`]) and per-token pricing ([`pricing`])
//!    feed the paper's monetary cost accounting.
//!
//! Behavioural phenomena reproduced (see DESIGN.md §1): relevant
//! demonstrations raise accuracy; near-duplicate batches induce answer
//! copying (similarity batching hurts, §VI-C); diverse batches sharpen
//! calibration (batch prompting beats standard prompting on precision,
//! Fig. 6); single-question prompts carry extra per-call variance
//! (Table III's large std); Llama2 cannot answer multi-question prompts
//! (§VI-F).

pub mod chat;
pub mod client;
pub mod engine;
pub mod parse;
pub mod pricing;
pub mod profile;
pub mod respond;
pub mod tokenizer;

pub use chat::{ChatRequest, ChatResponse, FinishReason, LlmError, Usage};
pub use client::{ChatApi, InjectedFault, SimLlm, SimLlmConfig};
pub use pricing::PriceTable;
pub use profile::{CapabilityProfile, ModelKind};
pub use respond::parse_answers;
pub use tokenizer::{count_tokens, tokenize};
