//! The [`ChatApi`] trait and the in-process simulated client.

use er_core::TokenCount;
use parking_lot::Mutex;
use rand::Rng;

use crate::chat::{ChatRequest, ChatResponse, FinishReason, LlmError, Usage};
use crate::engine::{call_rng, decide};
use crate::parse::parse_prompt;
use crate::pricing::PriceTable;
use crate::respond::render_answers;
use crate::tokenizer::count_tokens;

/// A chat-completion endpoint.
///
/// Implemented by [`SimLlm`] (in-process simulator) and by
/// `llm_service::HttpChatClient` (HTTP loopback); a production OpenAI
/// client would implement it too. `Send + Sync` so executors can fan out
/// calls across threads.
pub trait ChatApi: Send + Sync {
    /// Performs one chat completion.
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, LlmError>;

    /// The endpoint's child spans for a propagated trace id, as a JSON
    /// array, for assembling a cross-service span tree. `None` when the
    /// endpoint keeps no trace log (the in-process simulator) or cannot
    /// be reached; remote clients fetch the callee's `GET /trace?id=`.
    fn trace_children(&self, _trace_id: u64) -> Option<String> {
        None
    }
}

/// Fault-injection knobs for resilience testing. All rates are
/// probabilities in `[0, 1]`, evaluated deterministically per request from
/// the request seed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimLlmConfig {
    /// Probability of returning garbled, unparseable output.
    pub malformed_rate: f64,
    /// Probability of cutting the completion in half with
    /// [`FinishReason::Length`].
    pub truncation_rate: f64,
    /// Probability of a [`LlmError::RateLimited`] rejection.
    pub rate_limit_rate: f64,
}

/// One fault injected by a deterministic failure schedule
/// ([`SimLlm::with_failure_schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Reject the request with [`LlmError::RateLimited`].
    RateLimited,
    /// Return garbled output the answer parser cannot read.
    Malformed,
    /// Cut the completion in half with [`FinishReason::Length`].
    Truncated,
}

/// Aggregate statistics of a [`SimLlm`] endpoint (observability surface
/// for tests and harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimLlmStats {
    /// Successful completions served.
    pub completions: u64,
    /// Requests rejected with rate limiting.
    pub rate_limited: u64,
    /// Requests rejected for context overflow.
    pub context_overflows: u64,
    /// Total prompt tokens processed.
    pub prompt_tokens: u64,
    /// Total completion tokens generated.
    pub completion_tokens: u64,
}

/// The simulated LLM endpoint.
///
/// Stateless per call (all randomness derives from the request seed and
/// prompt text), so a single instance can serve concurrent callers.
#[derive(Debug, Default)]
pub struct SimLlm {
    config: SimLlmConfig,
    stats: Mutex<SimLlmStats>,
    /// Deterministic per-call fault queue; `None` entries are healthy
    /// calls, an exhausted queue serves healthily forever.
    schedule: Mutex<std::collections::VecDeque<Option<InjectedFault>>>,
}

impl SimLlm {
    /// An endpoint with no fault injection.
    pub fn new() -> Self {
        Self::default()
    }

    /// An endpoint with the given fault-injection configuration.
    pub fn with_config(config: SimLlmConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// An endpoint that fails on an explicit per-call schedule: the i-th
    /// `complete` call consumes `schedule[i]` (`Some(fault)` injects that
    /// fault, `None` serves healthily); calls beyond the schedule are
    /// healthy. Unlike the probabilistic [`SimLlm::with_config`] rates —
    /// whose per-call verdicts depend on the prompt text and therefore
    /// shift whenever planning changes batch composition — a schedule
    /// pins exactly which calls fail, whatever the plan looks like.
    pub fn with_failure_schedule<I>(schedule: I) -> Self
    where
        I: IntoIterator<Item = Option<InjectedFault>>,
    {
        Self { schedule: Mutex::new(schedule.into_iter().collect()), ..Self::default() }
    }

    /// Snapshot of the endpoint statistics.
    pub fn stats(&self) -> SimLlmStats {
        *self.stats.lock()
    }
}

impl ChatApi for SimLlm {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        let profile = request.model.profile();
        let prompt_tokens = count_tokens(&request.prompt);

        if prompt_tokens > profile.max_context_tokens {
            self.stats.lock().context_overflows += 1;
            return Err(LlmError::ContextLengthExceeded {
                prompt_tokens,
                limit: profile.max_context_tokens,
            });
        }

        let injected = self.schedule.lock().pop_front().flatten();
        let mut rng = call_rng(request.seed, &request.prompt);
        if injected == Some(InjectedFault::RateLimited)
            || rng.gen::<f64>() < self.config.rate_limit_rate
        {
            self.stats.lock().rate_limited += 1;
            return Err(LlmError::RateLimited);
        }

        let parsed = parse_prompt(&request.prompt);

        // Llama2 fails to produce usable output for multi-question prompts
        // (§VI-F); emulated as an empty completion the client cannot parse.
        let mut content = if !profile.batch_capable && parsed.questions.len() > 1 {
            String::new()
        } else if parsed.questions.is_empty() {
            "I could not find any questions to answer in the prompt.".to_owned()
        } else {
            // Temperature scales noise relative to the paper's 0.01 setting.
            let noise_scale = (request.temperature / 0.01).clamp(0.0, 100.0);
            let decisions = decide(&parsed, &profile, noise_scale, &mut rng);
            render_answers(&decisions)
        };

        let mut finish_reason = FinishReason::Stop;
        if injected == Some(InjectedFault::Truncated)
            || rng.gen::<f64>() < self.config.truncation_rate
        {
            // Cut at the nearest char boundary at or below the midpoint.
            let mut cut = content.len() / 2;
            while cut > 0 && !content.is_char_boundary(cut) {
                cut -= 1;
            }
            content.truncate(cut);
            finish_reason = FinishReason::Length;
        }
        if injected == Some(InjectedFault::Malformed)
            || rng.gen::<f64>() < self.config.malformed_rate
        {
            // Garble: strip the line structure the client's parser needs.
            content = content.replace(['Q', 'q'], "#").replace(':', ";");
        }

        let completion_tokens = count_tokens(&content);
        let usage = Usage {
            prompt_tokens: TokenCount(prompt_tokens),
            completion_tokens: TokenCount(completion_tokens),
        };
        let cost =
            PriceTable::for_model(request.model).cost(usage.prompt_tokens, usage.completion_tokens);

        let mut stats = self.stats.lock();
        stats.completions += 1;
        stats.prompt_tokens += prompt_tokens;
        stats.completion_tokens += completion_tokens;
        drop(stats);

        Ok(ChatResponse { content, finish_reason, usage, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelKind;
    use crate::respond::parse_answers;
    use er_core::{MatchLabel, Money};

    fn simple_prompt() -> String {
        "Decide whether the entities match.\n\
         D1: title: acme widget, id: 1 [SEP] title: acme widget, id: 1 => yes\n\
         D2: title: acme widget, id: 1 [SEP] title: zeta gadget, id: 9 => no\n\
         Q1: title: blue phone, id: 5 [SEP] title: blue phone, id: 5\n\
         Q2: title: blue phone, id: 5 [SEP] title: green rake, id: 8\n\
         Answer each question with yes or no."
            .to_owned()
    }

    #[test]
    fn answers_are_parseable_and_sensible() {
        let llm = SimLlm::new();
        let resp = llm
            .complete(&ChatRequest::new(ModelKind::Gpt4, simple_prompt(), 3))
            .unwrap();
        let labels = parse_answers(&resp.content, 2).unwrap();
        assert_eq!(labels[0], MatchLabel::Matching);
        assert_eq!(labels[1], MatchLabel::NonMatching);
        assert_eq!(resp.finish_reason, FinishReason::Stop);
        assert!(resp.usage.prompt_tokens.get() > 20);
        assert!(resp.cost > Money::ZERO);
    }

    #[test]
    fn identical_requests_identical_responses() {
        let llm = SimLlm::new();
        let req = ChatRequest::new(ModelKind::Gpt35Turbo0301, simple_prompt(), 42);
        let a = llm.complete(&req).unwrap();
        let b = llm.complete(&req).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn context_overflow_rejected() {
        let llm = SimLlm::new();
        let huge = format!("Q1: title: {} [SEP] title: x", "word ".repeat(10_000));
        let err = llm
            .complete(&ChatRequest::new(ModelKind::Gpt35Turbo0301, huge, 1))
            .unwrap_err();
        assert!(matches!(err, LlmError::ContextLengthExceeded { .. }));
        assert_eq!(llm.stats().context_overflows, 1);
    }

    #[test]
    fn llama_fails_on_batches_but_answers_singles() {
        let llm = SimLlm::new();
        let batch = llm
            .complete(&ChatRequest::new(
                ModelKind::Llama2Chat70b,
                simple_prompt(),
                1,
            ))
            .unwrap();
        assert!(parse_answers(&batch.content, 2).is_err());

        let single = "Q1: title: same thing, id: 1 [SEP] title: same thing, id: 1";
        let resp = llm
            .complete(&ChatRequest::new(ModelKind::Llama2Chat70b, single, 1))
            .unwrap();
        assert!(parse_answers(&resp.content, 1).is_ok());
    }

    #[test]
    fn rate_limit_injection() {
        let llm = SimLlm::with_config(SimLlmConfig { rate_limit_rate: 1.0, ..Default::default() });
        let err = llm
            .complete(&ChatRequest::new(ModelKind::Gpt4, simple_prompt(), 1))
            .unwrap_err();
        assert_eq!(err, LlmError::RateLimited);
        assert_eq!(llm.stats().rate_limited, 1);
        assert_eq!(llm.stats().completions, 0);
    }

    #[test]
    fn malformed_injection_breaks_parsing() {
        let llm = SimLlm::with_config(SimLlmConfig { malformed_rate: 1.0, ..Default::default() });
        let resp = llm
            .complete(&ChatRequest::new(ModelKind::Gpt4, simple_prompt(), 1))
            .unwrap();
        assert!(parse_answers(&resp.content, 2).is_err());
    }

    #[test]
    fn truncation_injection_sets_finish_reason() {
        let llm = SimLlm::with_config(SimLlmConfig { truncation_rate: 1.0, ..Default::default() });
        let resp = llm
            .complete(&ChatRequest::new(ModelKind::Gpt4, simple_prompt(), 1))
            .unwrap();
        assert_eq!(resp.finish_reason, FinishReason::Length);
    }

    #[test]
    fn failure_schedule_is_positional_and_exhausts() {
        let llm = SimLlm::with_failure_schedule([
            Some(InjectedFault::RateLimited),
            None,
            Some(InjectedFault::Malformed),
            Some(InjectedFault::Truncated),
        ]);
        let req = |seed| ChatRequest::new(ModelKind::Gpt4, simple_prompt(), seed);
        // Call 1: rate limited, whatever the prompt/seed.
        assert_eq!(llm.complete(&req(1)).unwrap_err(), LlmError::RateLimited);
        // Call 2: healthy.
        let ok = llm.complete(&req(2)).unwrap();
        assert!(parse_answers(&ok.content, 2).is_ok());
        // Call 3: malformed output.
        let bad = llm.complete(&req(3)).unwrap();
        assert!(parse_answers(&bad.content, 2).is_err());
        // Call 4: truncated.
        assert_eq!(
            llm.complete(&req(4)).unwrap().finish_reason,
            FinishReason::Length
        );
        // Schedule exhausted: healthy forever after.
        for seed in 5..8 {
            let resp = llm.complete(&req(seed)).unwrap();
            assert_eq!(resp.finish_reason, FinishReason::Stop);
            assert!(parse_answers(&resp.content, 2).is_ok());
        }
        assert_eq!(llm.stats().rate_limited, 1);
    }

    #[test]
    fn stats_accumulate() {
        let llm = SimLlm::new();
        for seed in 0..3 {
            llm.complete(&ChatRequest::new(ModelKind::Gpt4, simple_prompt(), seed))
                .unwrap();
        }
        let s = llm.stats();
        assert_eq!(s.completions, 3);
        assert!(s.prompt_tokens > 0);
        assert!(s.completion_tokens > 0);
    }

    #[test]
    fn gpt4_costs_more_than_gpt35_for_same_prompt() {
        let llm = SimLlm::new();
        let p = simple_prompt();
        let c4 = llm
            .complete(&ChatRequest::new(ModelKind::Gpt4, p.clone(), 1))
            .unwrap()
            .cost;
        let c35 = llm
            .complete(&ChatRequest::new(ModelKind::Gpt35Turbo0301, p, 1))
            .unwrap()
            .cost;
        assert!(c4.micros() >= 10 * c35.micros() / 2, "c4 {c4} vs c35 {c35}");
    }
}
