//! Model capability profiles.
//!
//! Each simulated model is described by a handful of behavioural
//! parameters. The defaults are calibrated so the reproduction benches
//! land in the same ordering the paper reports (Table VI): GPT-4 is the
//! most accurate, GPT-3.5-0301 is close behind at a tenth of the price,
//! GPT-3.5-0613 regresses on several datasets, and Llama2 cannot answer
//! batched prompts at all.

use serde::{Deserialize, Serialize};

/// The models evaluated in the paper (§VI-A, §VI-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// GPT-3.5-turbo-0301 — the paper's default ("GPT-3.5-03").
    Gpt35Turbo0301,
    /// GPT-3.5-turbo-0613 ("GPT-3.5-06").
    Gpt35Turbo0613,
    /// GPT-4-1106-preview.
    Gpt4,
    /// Llama2-chat-70B — open-source; fails on batch prompting.
    Llama2Chat70b,
}

impl ModelKind {
    /// All simulated models.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Gpt35Turbo0301,
        ModelKind::Gpt35Turbo0613,
        ModelKind::Gpt4,
        ModelKind::Llama2Chat70b,
    ];

    /// The OpenAI-style model id string used on the wire.
    pub fn id(self) -> &'static str {
        match self {
            ModelKind::Gpt35Turbo0301 => "gpt-3.5-turbo-0301",
            ModelKind::Gpt35Turbo0613 => "gpt-3.5-turbo-0613",
            ModelKind::Gpt4 => "gpt-4-1106-preview",
            ModelKind::Llama2Chat70b => "llama-2-70b-chat",
        }
    }

    /// Parses a wire id back into a model kind.
    pub fn from_id(id: &str) -> Option<Self> {
        ModelKind::ALL.into_iter().find(|m| m.id() == id)
    }

    /// The behavioural profile of this model.
    pub fn profile(self) -> CapabilityProfile {
        match self {
            ModelKind::Gpt35Turbo0301 => CapabilityProfile {
                sharpness: 13.0,
                threshold: 0.68,
                noise_sigma: 0.50,
                standard_extra_sigma: 1.40,
                demo_weight: 1.25,
                demo_bandwidth: 0.18,
                batch_contrast_bonus: 5.0,
                similar_batch_noise: 1.6,
                copy_prob: 0.55,
                copy_radius: 0.055,
                max_context_tokens: 4_096,
                batch_capable: true,
            },
            // The 0613 revision: the paper observes sizable regressions on
            // AB / AG / DS. Modeled as a conservative threshold shift (says
            // "no" too eagerly, hurting recall) plus more noise.
            ModelKind::Gpt35Turbo0613 => CapabilityProfile {
                sharpness: 11.0,
                threshold: 0.76,
                noise_sigma: 0.75,
                standard_extra_sigma: 1.40,
                demo_weight: 1.0,
                demo_bandwidth: 0.18,
                batch_contrast_bonus: 3.5,
                similar_batch_noise: 1.8,
                copy_prob: 0.60,
                copy_radius: 0.055,
                max_context_tokens: 4_096,
                batch_capable: true,
            },
            ModelKind::Gpt4 => CapabilityProfile {
                sharpness: 17.0,
                threshold: 0.665,
                noise_sigma: 0.30,
                standard_extra_sigma: 0.95,
                demo_weight: 1.4,
                demo_bandwidth: 0.20,
                batch_contrast_bonus: 5.5,
                similar_batch_noise: 1.2,
                copy_prob: 0.35,
                copy_radius: 0.045,
                max_context_tokens: 128_000,
                batch_capable: true,
            },
            ModelKind::Llama2Chat70b => CapabilityProfile {
                sharpness: 8.0,
                threshold: 0.70,
                noise_sigma: 1.0,
                standard_extra_sigma: 1.3,
                demo_weight: 0.8,
                demo_bandwidth: 0.18,
                batch_contrast_bonus: 0.0,
                similar_batch_noise: 2.0,
                copy_prob: 0.8,
                copy_radius: 0.08,
                max_context_tokens: 4_096,
                // §VI-F: "When prompted to answer multiple questions,
                // Llama2 fails to produce any output in most cases."
                batch_capable: false,
            },
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Behavioural parameters of one simulated model.
///
/// The decision engine computes, per question,
/// `logit = sharpness·(score − threshold) + demo_weight·demo_term + ε`
/// where `score` is the engine's internal text-similarity judgement,
/// `demo_term` pulls toward the labels of nearby in-context
/// demonstrations, and `ε ~ N(0, σ²)` with σ depending on prompt shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapabilityProfile {
    /// Slope of the logistic decision: higher = crisper judgements.
    pub sharpness: f64,
    /// Similarity score at which the model is indifferent.
    pub threshold: f64,
    /// Base Gaussian noise σ on the logit.
    pub noise_sigma: f64,
    /// Extra noise σ added when the prompt contains a single question
    /// (standard prompting): no in-batch context to calibrate against,
    /// reproducing Table III's much larger F1 standard deviations.
    pub standard_extra_sigma: f64,
    /// Weight of the demonstration-label kernel term.
    pub demo_weight: f64,
    /// Bandwidth of the RBF kernel over demonstration distance.
    pub demo_bandwidth: f64,
    /// Sharpness bonus earned when a batch's questions are mutually
    /// diverse — the model contrasts questions against each other
    /// (the paper's explanation for batch prompting's precision gain).
    pub batch_contrast_bonus: f64,
    /// Noise multiplier applied as a batch's questions become mutually
    /// similar: near-duplicate batches leave the model nothing to contrast
    /// against, degrading its judgements — the paper's explanation for why
    /// similarity-based batching underperforms (§VI-C). Effective σ is
    /// `noise_sigma · (1 + similar_batch_noise · (1 − diversity))`.
    pub similar_batch_noise: f64,
    /// Probability of copying the previous answer when the previous
    /// question in the batch is nearly identical to the current one
    /// (the failure mode of similarity-based batching, §VI-C).
    pub copy_prob: f64,
    /// Feature-space radius within which two questions count as nearly
    /// identical for answer copying.
    pub copy_radius: f64,
    /// Context window size in tokens.
    pub max_context_tokens: u64,
    /// Whether the model can answer multi-question prompts at all.
    pub batch_capable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for m in ModelKind::ALL {
            assert_eq!(ModelKind::from_id(m.id()), Some(m));
        }
        assert_eq!(ModelKind::from_id("gpt-5"), None);
    }

    #[test]
    fn gpt4_is_sharpest_and_quietest() {
        let g4 = ModelKind::Gpt4.profile();
        for other in [ModelKind::Gpt35Turbo0301, ModelKind::Gpt35Turbo0613] {
            let p = other.profile();
            assert!(g4.sharpness > p.sharpness);
            assert!(g4.noise_sigma < p.noise_sigma);
        }
    }

    #[test]
    fn gpt35_06_is_conservative_vs_03() {
        let p03 = ModelKind::Gpt35Turbo0301.profile();
        let p06 = ModelKind::Gpt35Turbo0613.profile();
        assert!(p06.threshold > p03.threshold);
        assert!(p06.noise_sigma > p03.noise_sigma);
    }

    #[test]
    fn llama_cannot_batch() {
        assert!(!ModelKind::Llama2Chat70b.profile().batch_capable);
        assert!(ModelKind::Gpt35Turbo0301.profile().batch_capable);
    }

    #[test]
    fn display_is_wire_id() {
        assert_eq!(ModelKind::Gpt4.to_string(), "gpt-4-1106-preview");
    }
}
