//! Per-token pricing (§VI-A: "the API is priced per token").

use er_core::{Money, TokenCount};

use crate::profile::ModelKind;

/// Input/output token prices for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriceTable {
    /// Price per input (prompt) token.
    pub input_per_token: Money,
    /// Price per output (completion) token.
    pub output_per_token: Money,
}

impl PriceTable {
    /// The price table for a model, mirroring the paper's ratios:
    /// GPT-4 input tokens cost 10× GPT-3.5's ($0.01 vs $0.001 per 1K).
    /// Llama2 is open-source: price zero (self-hosted compute is not
    /// part of the paper's cost model).
    pub fn for_model(kind: ModelKind) -> Self {
        // 1 micro-dollar per token == $0.001 per 1K tokens.
        match kind {
            ModelKind::Gpt35Turbo0301 | ModelKind::Gpt35Turbo0613 => Self {
                input_per_token: Money::from_micros(1),
                output_per_token: Money::from_micros(2),
            },
            ModelKind::Gpt4 => Self {
                input_per_token: Money::from_micros(10),
                output_per_token: Money::from_micros(30),
            },
            ModelKind::Llama2Chat70b => {
                Self { input_per_token: Money::ZERO, output_per_token: Money::ZERO }
            }
        }
    }

    /// Cost of one call with the given token usage.
    pub fn cost(&self, prompt: TokenCount, completion: TokenCount) -> Money {
        self.input_per_token.per_token_times(prompt)
            + self.output_per_token.per_token_times(completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt4_is_10x_gpt35_on_input() {
        let g35 = PriceTable::for_model(ModelKind::Gpt35Turbo0301);
        let g4 = PriceTable::for_model(ModelKind::Gpt4);
        assert_eq!(
            g4.input_per_token.micros(),
            10 * g35.input_per_token.micros()
        );
    }

    #[test]
    fn paper_example_cost() {
        // Paper §I: 500,000 calls × 360 tokens at $0.01/1K = $1,800.
        let g4 = PriceTable::for_model(ModelKind::Gpt4);
        let per_call = g4.cost(TokenCount(360), TokenCount(0));
        let total = per_call * 500_000;
        assert_eq!(total, Money::from_dollars(1800.0));
    }

    #[test]
    fn llama_is_free() {
        let l = PriceTable::for_model(ModelKind::Llama2Chat70b);
        assert_eq!(
            l.cost(TokenCount(1_000_000), TokenCount(1_000)),
            Money::ZERO
        );
    }

    #[test]
    fn output_tokens_priced_separately() {
        let g35 = PriceTable::for_model(ModelKind::Gpt35Turbo0613);
        let c = g35.cost(TokenCount(1000), TokenCount(500));
        assert_eq!(c, Money::from_micros(1000 + 2 * 500));
    }
}
