//! Torn-write corpus: every shape of invalid tail a crash can leave on
//! the last segment must be truncated on open, and the same damage in a
//! sealed (non-last) segment must be a hard corruption error. This file
//! is the deterministic "torn-write corpus" CI step.

use std::path::{Path, PathBuf};

use wal::{frame, RecoveryStats, Wal, WalOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wal-torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a single-segment log of `n` records, returning per-record end
/// offsets.
fn build(dir: &Path, n: u64) -> Vec<u64> {
    let (wal, _) = Wal::open(dir, WalOptions::default(), |_| {}).expect("open");
    (0..n)
        .map(|i| {
            wal.append(format!("record-{i:04}").as_bytes())
                .expect("append")
        })
        .collect()
}

fn seg0(dir: &Path) -> PathBuf {
    dir.join(format!("{:016}.wal", 0))
}

fn reopen(dir: &Path) -> (RecoveryStats, Vec<String>) {
    let mut seen = Vec::new();
    let (_wal, stats) = Wal::open(dir, WalOptions::default(), |p| {
        seen.push(String::from_utf8_lossy(p).into_owned())
    })
    .expect("reopen");
    (stats, seen)
}

#[test]
fn garbage_appended_after_valid_records_is_truncated() {
    let dir = temp_dir("garbage");
    let ends = build(&dir, 4);
    let mut bytes = std::fs::read(seg0(&dir)).unwrap();
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03]);
    std::fs::write(seg0(&dir), &bytes).unwrap();

    let (stats, seen) = reopen(&dir);
    assert_eq!(stats.records, 4);
    assert_eq!(stats.truncated_bytes, 7);
    assert!(stats.torn_tail);
    assert_eq!(seen.last().map(String::as_str), Some("record-0003"));
    // The truncation is physical: a second reopen sees a clean log.
    let (stats, _) = reopen(&dir);
    assert!(!stats.torn_tail);
    assert_eq!(
        std::fs::metadata(seg0(&dir)).unwrap().len(),
        *ends.last().unwrap()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tail_cut_mid_header_and_mid_payload_is_truncated() {
    for cut_back in [1u64, 3, 7, 9, 12] {
        let dir = temp_dir(&format!("cut-{cut_back}"));
        let ends = build(&dir, 3);
        let total = *ends.last().unwrap();
        // Cut `cut_back` bytes off the end: lands mid-payload (<12) or
        // mid-header (>=12, record payloads are 11 bytes + 8 header).
        std::fs::OpenOptions::new()
            .write(true)
            .open(seg0(&dir))
            .unwrap()
            .set_len(total - cut_back)
            .unwrap();
        let (stats, seen) = reopen(&dir);
        assert_eq!(stats.records, 2, "cut_back={cut_back}");
        assert_eq!(
            seen,
            vec!["record-0000".to_owned(), "record-0001".to_owned()]
        );
        assert_eq!(stats.bytes, ends[1], "cut_back={cut_back}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn bit_flip_in_last_record_is_dropped_as_torn_tail() {
    let dir = temp_dir("flip-last");
    let ends = build(&dir, 3);
    let mut bytes = std::fs::read(seg0(&dir)).unwrap();
    // Flip a payload byte inside the final record.
    let idx = (ends[1] as usize) + frame::HEADER_BYTES + 2;
    bytes[idx] ^= 0x20;
    std::fs::write(seg0(&dir), &bytes).unwrap();
    let (stats, seen) = reopen(&dir);
    assert_eq!(stats.records, 2);
    assert!(stats.torn_tail);
    assert_eq!(stats.truncated_bytes, ends[2] - ends[1]);
    assert_eq!(seen.len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn implausible_length_header_is_treated_as_torn() {
    let dir = temp_dir("length");
    build(&dir, 2);
    let mut bytes = std::fs::read(seg0(&dir)).unwrap();
    // Append a frame whose header claims a 2 GiB payload.
    bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(b"short");
    std::fs::write(seg0(&dir), &bytes).unwrap();
    let (stats, _) = reopen(&dir);
    assert_eq!(stats.records, 2);
    assert_eq!(stats.truncated_bytes, 13);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn same_damage_in_sealed_segment_is_corruption() {
    let dir = temp_dir("sealed");
    let options = WalOptions { segment_bytes: 40, ..WalOptions::default() };
    let (wal, _) = Wal::open(&dir, options.clone(), |_| {}).unwrap();
    for i in 0..8u64 {
        wal.append(format!("record-{i:04}").as_bytes()).unwrap();
    }
    drop(wal);
    // Damage the first segment's tail — sealed segments must not self-heal.
    let path = seg0(&dir);
    let len = std::fs::metadata(&path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    let err = match Wal::open(&dir, options, |_| {}) {
        Err(err) => err,
        Ok(_) => panic!("corrupt sealed segment must refuse to open"),
    };
    assert!(
        matches!(err, wal::WalError::Corrupt { segment: 0, .. }),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_and_fresh_directories_open_clean() {
    let dir = temp_dir("fresh");
    let (stats, seen) = reopen(&dir);
    assert_eq!(stats, RecoveryStats::default());
    assert!(seen.is_empty());
    // An empty existing segment file is also fine.
    std::fs::remove_dir_all(&dir).unwrap();
}
