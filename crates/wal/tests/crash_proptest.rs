//! The WAL's core crash property: for ANY crash offset, reopening
//! replays exactly the records whose frames were fully on disk before
//! the cut — a prefix of the append history — and the log keeps working
//! afterwards.

use std::path::PathBuf;

use proptest::prelude::*;
use wal::{testing, SyncPolicy, Wal, WalOptions};

fn temp_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wal-crashprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn replay_is_exact_prefix_of_history(
        payload_lens in prop::collection::vec(0usize..40, 1..30),
        segment_bytes in 32u64..512,
        crash_sel in any::<u64>(),
        case in any::<u64>(),
    ) {
        let dir = temp_dir(case);
        let options = WalOptions {
            segment_bytes,
            sync: SyncPolicy::Never,
            ..WalOptions::default()
        };
        // Append distinct records; remember the end offset of each.
        let (wal, _) = Wal::open(&dir, options.clone(), |_| {}).expect("open");
        let mut ends = Vec::new();
        for (i, len) in payload_lens.iter().enumerate() {
            let payload: Vec<u8> = (0..*len).map(|j| (i * 31 + j) as u8).collect();
            let mut framed = vec![i as u8];
            framed.extend_from_slice(&payload);
            ends.push(wal.append(&framed).expect("append"));
        }
        let total = *ends.last().unwrap();
        drop(wal);

        let offset = crash_sel % (total + 1);
        testing::crash_at_offset(&dir, offset).expect("crash");

        // Expected survivors: records whose end offset fits before the cut.
        let expect = ends.iter().filter(|&&e| e <= offset).count();
        let mut seen = Vec::new();
        let (wal, stats) =
            Wal::open(&dir, options.clone(), |p| seen.push(p[0])).expect("reopen");
        prop_assert_eq!(seen.len(), expect);
        // Replay order matches append order.
        for (i, tag) in seen.iter().enumerate() {
            prop_assert_eq!(*tag, i as u8);
        }
        prop_assert_eq!(stats.records, expect as u64);
        prop_assert_eq!(stats.bytes, ends.get(expect.wrapping_sub(1)).copied().unwrap_or(0));

        // The reopened log accepts new appends and they survive another cycle.
        wal.append(b"post-crash").expect("append after recovery");
        drop(wal);
        let mut n = 0u64;
        let (_wal, _) = Wal::open(&dir, options, |_| n += 1).expect("second reopen");
        prop_assert_eq!(n, expect as u64 + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
