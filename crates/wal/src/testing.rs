//! Crash simulation for tests: cut the on-disk log at an arbitrary
//! global byte offset, exactly as a power failure mid-write would leave
//! it (every byte before the offset durable, everything after gone).

use std::path::Path;

/// Truncates the log in `dir` to `offset` global bytes: the segment
/// containing the offset is shortened, every later segment is deleted.
/// Offsets past the end of the log are a no-op. Returns the number of
/// bytes removed.
///
/// Must not be called while a [`crate::Wal`] has the directory open.
pub fn crash_at_offset(dir: &Path, offset: u64) -> std::io::Result<u64> {
    let mut removed = 0u64;
    let mut base = 0u64;
    let mut cutting = false;
    for seq in crate::segment_seqs(dir)? {
        let path = dir.join(format!("{seq:016}.wal"));
        let len = std::fs::metadata(&path)?.len();
        // Everything after the first cut segment goes, including the
        // empty next segment a roll pre-creates.
        if !cutting && base + len <= offset {
            base += len;
            continue;
        }
        if cutting || base >= offset {
            removed += len;
            std::fs::remove_file(&path)?;
        } else {
            let keep = offset - base;
            removed += len - keep;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(keep)?;
        }
        cutting = true;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Wal, WalOptions};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wal-testing-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crash_cuts_across_segment_boundaries() {
        let dir = temp_dir("cut");
        let options = WalOptions { segment_bytes: 48, ..WalOptions::default() };
        let (wal, _) = Wal::open(&dir, options.clone(), |_| {}).unwrap();
        let mut ends = Vec::new();
        for i in 0..12u64 {
            ends.push(wal.append(&i.to_le_bytes()).unwrap());
        }
        let total = *ends.last().unwrap();
        drop(wal);

        // Cut one byte into the 6th record: exactly 5 records survive.
        let offset = ends[4] + 1;
        let removed = crash_at_offset(&dir, offset).unwrap();
        assert_eq!(removed, total - offset);
        let mut n = 0u64;
        let (_wal, stats) = {
            let (w, s) = Wal::open(&dir, options, |_| n += 1).unwrap();
            (w, s)
        };
        assert_eq!(n, 5);
        assert!(stats.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_past_end_is_noop() {
        let dir = temp_dir("noop");
        let (wal, _) = Wal::open(&dir, WalOptions::default(), |_| {}).unwrap();
        let end = wal.append(b"whole").unwrap();
        drop(wal);
        assert_eq!(crash_at_offset(&dir, end + 100).unwrap(), 0);
        let mut n = 0;
        Wal::open(&dir, WalOptions::default(), |_| n += 1).unwrap();
        assert_eq!(n, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
