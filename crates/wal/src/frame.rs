//! Record framing: `[len: u32 LE][crc32: u32 LE][payload]`.
//!
//! The CRC covers the payload only; the length field is sanity-capped at
//! [`MAX_RECORD`] so a corrupt header cannot make the scanner walk off
//! into gigabytes of garbage. A frame that fails any check ends the scan
//! — the caller decides whether the invalid tail is a torn write (last
//! segment, truncate and continue) or corruption (any other segment,
//! hard error).

/// Frame header size: length + CRC, both little-endian `u32`.
pub const HEADER_BYTES: usize = 8;

/// Upper bound on a single record payload (16 MiB). Real records here are
/// tens of bytes; the cap exists to reject implausible lengths read out
/// of a torn or corrupt header.
pub const MAX_RECORD: usize = 1 << 24;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xedb8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Appends one framed record to `buf`.
pub fn encode_into(buf: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_RECORD);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Why a scan stopped before the end of the segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanStop {
    /// Fewer than [`HEADER_BYTES`] bytes left — a torn header.
    TruncatedHeader,
    /// The header's length field exceeds [`MAX_RECORD`].
    ImplausibleLength(u32),
    /// The segment ends before the payload does — a torn payload.
    TruncatedPayload { want: u32, have: u64 },
    /// The payload is present but its CRC does not match.
    CrcMismatch { want: u32, got: u32 },
}

impl std::fmt::Display for ScanStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanStop::TruncatedHeader => write!(f, "torn frame header"),
            ScanStop::ImplausibleLength(len) => {
                write!(f, "implausible record length {len}")
            }
            ScanStop::TruncatedPayload { want, have } => {
                write!(f, "torn payload: header says {want} bytes, {have} remain")
            }
            ScanStop::CrcMismatch { want, got } => {
                write!(f, "crc mismatch: stored {want:#010x}, computed {got:#010x}")
            }
        }
    }
}

/// Walks `buf` frame by frame, calling `on_record` for each valid
/// payload. Returns the byte length of the valid prefix and, when that
/// prefix is shorter than `buf`, the reason the scan stopped.
pub fn scan(buf: &[u8], mut on_record: impl FnMut(&[u8])) -> (u64, Option<ScanStop>) {
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        if rest.is_empty() {
            return (pos as u64, None);
        }
        if rest.len() < HEADER_BYTES {
            return (pos as u64, Some(ScanStop::TruncatedHeader));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let stored_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len as usize > MAX_RECORD {
            return (pos as u64, Some(ScanStop::ImplausibleLength(len)));
        }
        let body = &rest[HEADER_BYTES..];
        if body.len() < len as usize {
            return (
                pos as u64,
                Some(ScanStop::TruncatedPayload { want: len, have: body.len() as u64 }),
            );
        }
        let payload = &body[..len as usize];
        let got = crc32(payload);
        if got != stored_crc {
            return (
                pos as u64,
                Some(ScanStop::CrcMismatch { want: stored_crc, got }),
            );
        }
        on_record(payload);
        pos += HEADER_BYTES + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn scan_roundtrips_multiple_frames() {
        let mut buf = Vec::new();
        encode_into(&mut buf, b"alpha");
        encode_into(&mut buf, b"");
        encode_into(&mut buf, b"gamma-delta");
        let mut seen: Vec<Vec<u8>> = Vec::new();
        let (valid, stop) = scan(&buf, |p| seen.push(p.to_vec()));
        assert_eq!(valid, buf.len() as u64);
        assert_eq!(stop, None);
        assert_eq!(
            seen,
            vec![b"alpha".to_vec(), b"".to_vec(), b"gamma-delta".to_vec()]
        );
    }

    #[test]
    fn scan_stops_at_each_torn_shape() {
        let mut full = Vec::new();
        encode_into(&mut full, b"keep-me");
        let keep = full.len() as u64;
        encode_into(&mut full, b"torn-record");

        // Torn anywhere inside the second frame leaves exactly one record.
        for cut in keep as usize + 1..full.len() {
            let mut n = 0;
            let (valid, stop) = scan(&full[..cut], |_| n += 1);
            assert_eq!(valid, keep, "cut at {cut}");
            assert_eq!(n, 1, "cut at {cut}");
            assert!(stop.is_some(), "cut at {cut}");
        }

        // A flipped payload bit is a CRC mismatch, not a torn write.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let (valid, stop) = scan(&flipped, |_| {});
        assert_eq!(valid, keep);
        assert!(
            matches!(stop, Some(ScanStop::CrcMismatch { .. })),
            "{stop:?}"
        );
    }
}
