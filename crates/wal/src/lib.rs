//! `wal` — an embedded, zero-dependency, segmented append-only log.
//!
//! The durability contract, from weakest to strongest:
//!
//! * Every append is written through to the kernel before the call
//!   returns (the file handle is unbuffered), so records survive a
//!   process kill (`SIGKILL`) under **every** sync policy — only the
//!   machine losing power can drop unsynced bytes.
//! * [`SyncPolicy::Batched`] additionally fsyncs every N records;
//!   [`SyncPolicy::Always`] fsyncs after every append call, bounding
//!   power-loss exposure to zero completed appends.
//!
//! Records are CRC-framed ([`frame`]); on open the last segment's torn
//! tail (a partial write from a crash) is detected and physically
//! truncated, while invalid bytes in any *earlier* segment are reported
//! as hard [`WalError::Corrupt`] — a sealed segment has no business
//! changing. Offsets returned by [`Wal::append`] are global log offsets
//! (bytes since the first record ever written), the same coordinate
//! system [`testing::crash_at_offset`] cuts at.
//!
//! Writes can be failure-scripted through [`FaultSchedule`] for
//! deterministic crash testing; see [`fault`].

mod fault;
pub mod frame;
pub mod testing;

pub use fault::{FaultSchedule, WalFault};

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// When appended records are fsynced to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append call. Zero completed appends lost on
    /// power failure; the slowest option.
    Always,
    /// `fsync` once at least `every` records are unsynced. Bounded
    /// power-loss exposure at near-[`SyncPolicy::Never`] throughput.
    Batched { every: u32 },
    /// Never fsync on the append path (segments are still synced when
    /// sealed and on drop). Process kills lose nothing; power loss may
    /// drop any unsynced suffix.
    Never,
}

/// Open-time options.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Segment roll threshold in bytes. A segment is sealed (fsynced)
    /// once it reaches this size and a fresh file is started.
    pub segment_bytes: u64,
    pub sync: SyncPolicy,
    /// Scripted write failures; empty = always healthy.
    pub faults: FaultSchedule,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 8 << 20,
            sync: SyncPolicy::Batched { every: 32 },
            faults: FaultSchedule::none(),
        }
    }
}

/// Everything that can go wrong appending to or opening the log.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// Invalid frames somewhere other than the tail of the last segment.
    Corrupt {
        segment: u64,
        offset: u64,
        detail: String,
    },
    /// A single record larger than [`frame::MAX_RECORD`].
    RecordTooLarge(usize),
    /// The log wedged after a torn or failed write of unknown extent;
    /// it must be reopened (which truncates the torn tail) to continue.
    Wedged,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { segment, offset, detail } => write!(
                f,
                "wal corrupt: segment {segment} offset {offset}: {detail}"
            ),
            WalError::RecordTooLarge(n) => write!(f, "wal record too large: {n} bytes"),
            WalError::Wedged => write!(f, "wal wedged by a prior failed write; reopen to recover"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid records replayed to the `on_record` callback.
    pub records: u64,
    /// Valid bytes retained across all segments (frames included).
    pub bytes: u64,
    /// Segment files found on disk.
    pub segments: u64,
    /// Invalid tail bytes physically truncated from the last segment.
    pub truncated_bytes: u64,
    /// Whether a torn tail was found (and truncated).
    pub torn_tail: bool,
}

/// Point-in-time write-path status, for health endpoints.
#[derive(Debug, Clone, Copy)]
pub struct WalStatus {
    /// Global log size: bytes of valid frames ever appended.
    pub total_bytes: u64,
    pub segments: u64,
    /// Records appended this process (replayed records not included).
    pub appends: u64,
    pub fsyncs: u64,
    /// Records written through to the kernel but not yet fsynced.
    pub unsynced_appends: u64,
    /// Time since the last fsync (`None` before the first one).
    pub last_sync_age: Option<Duration>,
    pub wedged: bool,
}

struct Writer {
    file: File,
    dir: PathBuf,
    options: WalOptions,
    /// Sequence number of the segment currently appended to.
    seg_seq: u64,
    /// Bytes in the current segment.
    seg_bytes: u64,
    /// Global offset of the current segment's first byte.
    base_offset: u64,
    appends: u64,
    fsyncs: u64,
    unsynced_appends: u64,
    last_sync: Option<Instant>,
    wedged: bool,
}

/// The log. All methods take `&self`; appends serialize on an internal
/// lock (one writer at a time is the point of a WAL).
pub struct Wal {
    writer: Mutex<Writer>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.lock();
        f.debug_struct("Wal")
            .field("dir", &w.dir)
            .field("seg_seq", &w.seg_seq)
            .field("total_bytes", &(w.base_offset + w.seg_bytes))
            .field("wedged", &w.wedged)
            .finish()
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:016}.wal"))
}

/// Segment sequence numbers present in `dir`, ascending. Non-segment
/// files are ignored.
pub(crate) fn segment_seqs(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_suffix(".wal") {
            if let Ok(seq) = stem.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, replaying every valid
    /// record into `on_record` in append order. A torn tail on the last
    /// segment is truncated; invalid frames anywhere else are
    /// [`WalError::Corrupt`].
    pub fn open(
        dir: &Path,
        options: WalOptions,
        mut on_record: impl FnMut(&[u8]),
    ) -> Result<(Wal, RecoveryStats), WalError> {
        std::fs::create_dir_all(dir)?;
        let seqs = segment_seqs(dir)?;
        let mut stats = RecoveryStats { segments: seqs.len() as u64, ..RecoveryStats::default() };

        let mut total_bytes = 0u64;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(dir, seq);
            let buf = std::fs::read(&path)?;
            let last = i + 1 == seqs.len();
            let (valid, stop) = frame::scan(&buf, |payload| {
                stats.records += 1;
                on_record(payload);
            });
            if valid < buf.len() as u64 {
                let detail = stop.map(|s| s.to_string()).unwrap_or_default();
                if !last {
                    return Err(WalError::Corrupt { segment: seq, offset: valid, detail });
                }
                OpenOptions::new().write(true).open(&path)?.set_len(valid)?;
                stats.truncated_bytes = buf.len() as u64 - valid;
                stats.torn_tail = true;
            }
            total_bytes += valid;
        }
        stats.bytes = total_bytes;

        let seg_seq = seqs.last().copied().unwrap_or(0);
        let path = segment_path(dir, seg_seq);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false) // re-opening the live tail: existing records must survive
            .write(true)
            .open(&path)?;
        let seg_bytes = file.seek(SeekFrom::End(0))?;
        let writer = Writer {
            file,
            dir: dir.to_path_buf(),
            options,
            seg_seq,
            seg_bytes,
            base_offset: total_bytes - seg_bytes,
            appends: 0,
            fsyncs: 0,
            unsynced_appends: 0,
            last_sync: Some(Instant::now()),
            wedged: false,
        };
        Ok((Wal { writer: Mutex::new(writer) }, stats))
    }

    /// Appends one record. Returns the global log offset of the byte
    /// *after* this record (i.e. the log's new total length).
    pub fn append(&self, payload: &[u8]) -> Result<u64, WalError> {
        self.append_all(std::iter::once(payload))
    }

    /// Appends a group of records as one physical write (and, under
    /// [`SyncPolicy::Always`], one fsync) — the cheap way to journal a
    /// batch outcome. Consumes one fault-schedule slot. Returns the
    /// global end offset after the last record.
    pub fn append_all<'a, I>(&self, payloads: I) -> Result<u64, WalError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut buf = Vec::new();
        let mut count = 0u64;
        for p in payloads {
            if p.len() > frame::MAX_RECORD {
                return Err(WalError::RecordTooLarge(p.len()));
            }
            frame::encode_into(&mut buf, p);
            count += 1;
        }
        let mut w = self.lock();
        if w.wedged {
            return Err(WalError::Wedged);
        }
        if count == 0 {
            return Ok(w.base_offset + w.seg_bytes);
        }

        match w.options.faults.next() {
            Some(WalFault::IoError) => {
                // Clean failure: nothing written, log stays usable.
                return Err(WalError::Io(std::io::Error::other(
                    "injected wal write error",
                )));
            }
            Some(WalFault::TornWrite { keep }) => {
                let keep = (keep as usize).min(buf.len());
                let torn = w.file.write_all(&buf[..keep]);
                w.seg_bytes += keep as u64;
                w.wedged = true;
                torn?;
                return Err(WalError::Wedged);
            }
            None => {}
        }

        if let Err(e) = w.file.write_all(&buf) {
            // Partial write of unknown extent: wedge until reopen.
            w.wedged = true;
            return Err(WalError::Io(e));
        }
        w.seg_bytes += buf.len() as u64;
        w.appends += count;
        w.unsynced_appends += count;

        match w.options.sync {
            SyncPolicy::Always => sync_writer(&mut w)?,
            SyncPolicy::Batched { every } => {
                if w.unsynced_appends >= every as u64 {
                    sync_writer(&mut w)?;
                }
            }
            SyncPolicy::Never => {}
        }

        if w.seg_bytes >= w.options.segment_bytes {
            roll_segment(&mut w)?;
        }
        Ok(w.base_offset + w.seg_bytes)
    }

    /// Forces an fsync of the current segment.
    pub fn sync(&self) -> Result<(), WalError> {
        let mut w = self.lock();
        if w.wedged {
            return Err(WalError::Wedged);
        }
        sync_writer(&mut w)
    }

    /// Current write-path status.
    pub fn status(&self) -> WalStatus {
        let w = self.lock();
        WalStatus {
            total_bytes: w.base_offset + w.seg_bytes,
            segments: w.seg_seq + 1,
            appends: w.appends,
            fsyncs: w.fsyncs,
            unsynced_appends: w.unsynced_appends,
            last_sync_age: w.last_sync.map(|t| t.elapsed()),
            wedged: w.wedged,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Writer> {
        self.writer.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let mut w = self.lock();
        if !w.wedged && w.unsynced_appends > 0 {
            let _ = sync_writer(&mut w);
        }
    }
}

fn sync_writer(w: &mut Writer) -> Result<(), WalError> {
    if let Err(e) = w.file.sync_data() {
        // A failed fsync leaves the device state unknown.
        w.wedged = true;
        return Err(WalError::Io(e));
    }
    w.fsyncs += 1;
    w.unsynced_appends = 0;
    w.last_sync = Some(Instant::now());
    Ok(())
}

/// Seals the current segment (fsync) and starts the next one.
fn roll_segment(w: &mut Writer) -> Result<(), WalError> {
    sync_writer(w)?;
    let next = w.seg_seq + 1;
    let file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(segment_path(&w.dir, next))?;
    w.base_offset += w.seg_bytes;
    w.seg_bytes = 0;
    w.seg_seq = next;
    w.file = file;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wal-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn collect_open(dir: &Path, options: WalOptions) -> (Wal, RecoveryStats, Vec<Vec<u8>>) {
        let mut seen = Vec::new();
        let (wal, stats) = Wal::open(dir, options, |p| seen.push(p.to_vec())).expect("open");
        (wal, stats, seen)
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = temp_dir("roundtrip");
        let (wal, stats, seen) = collect_open(&dir, WalOptions::default());
        assert_eq!(stats, RecoveryStats::default());
        assert!(seen.is_empty());
        let mut end = 0;
        for i in 0..10u32 {
            end = wal.append(&i.to_le_bytes()).expect("append");
        }
        assert_eq!(end, 10 * (frame::HEADER_BYTES as u64 + 4));
        drop(wal);

        let (_wal, stats, seen) = collect_open(&dir, WalOptions::default());
        assert_eq!(stats.records, 10);
        assert_eq!(stats.bytes, end);
        assert!(!stats.torn_tail);
        let want: Vec<Vec<u8>> = (0..10u32).map(|i| i.to_le_bytes().to_vec()).collect();
        assert_eq!(seen, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_replay_across_files() {
        let dir = temp_dir("roll");
        let options = WalOptions { segment_bytes: 64, ..WalOptions::default() };
        let (wal, _, _) = collect_open(&dir, options.clone());
        for i in 0..20u64 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        assert!(wal.status().segments > 1, "{:?}", wal.status());
        drop(wal);
        let (_wal, stats, seen) = collect_open(&dir, options);
        assert_eq!(stats.records, 20);
        assert!(stats.segments > 1);
        assert_eq!(seen.len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_all_is_one_fsync_under_always() {
        let dir = temp_dir("group");
        let options = WalOptions { sync: SyncPolicy::Always, ..WalOptions::default() };
        let (wal, _, _) = collect_open(&dir, options);
        let records: Vec<&[u8]> = vec![b"a", b"bb", b"ccc"];
        wal.append_all(records).expect("append_all");
        let status = wal.status();
        assert_eq!(status.appends, 3);
        assert_eq!(status.fsyncs, 1);
        assert_eq!(status.unsynced_appends, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_io_error_is_clean_and_torn_write_wedges() {
        let dir = temp_dir("faults");
        let options = WalOptions {
            faults: FaultSchedule::of([
                None,
                Some(WalFault::IoError),
                None,
                Some(WalFault::TornWrite { keep: 5 }),
            ]),
            ..WalOptions::default()
        };
        let (wal, _, _) = collect_open(&dir, options);
        wal.append(b"first").expect("healthy slot");
        assert!(matches!(wal.append(b"dropped"), Err(WalError::Io(_))));
        wal.append(b"second").expect("healthy after clean failure");
        assert!(matches!(wal.append(b"torn"), Err(WalError::Wedged)));
        assert!(wal.status().wedged);
        assert!(matches!(wal.append(b"after"), Err(WalError::Wedged)));
        drop(wal);

        // Reopen truncates the 5 torn bytes and keeps the two records.
        let (_wal, stats, seen) = collect_open(&dir, WalOptions::default());
        assert_eq!(stats.records, 2);
        assert!(stats.torn_tail);
        assert_eq!(stats.truncated_bytes, 5);
        assert_eq!(seen, vec![b"first".to_vec(), b"second".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sealed_segment_is_a_hard_error() {
        let dir = temp_dir("sealed");
        let options = WalOptions { segment_bytes: 32, ..WalOptions::default() };
        let (wal, _, _) = collect_open(&dir, options.clone());
        for i in 0..8u64 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        drop(wal);
        let seqs = segment_seqs(&dir).unwrap();
        assert!(seqs.len() > 1);
        // Flip a byte in the first (sealed) segment.
        let path = segment_path(&dir, seqs[0]);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = match Wal::open(&dir, options, |_| {}) {
            Err(err) => err,
            Ok(_) => panic!("corrupt sealed segment must refuse to open"),
        };
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
