//! Deterministic fault injection for the log's write path, mirroring the
//! positional-schedule idiom of `SimLlm::with_failure_schedule`: slot *k*
//! of the schedule decides the fate of the *k*-th append call (an
//! `append_all` batch consumes one slot — it is one physical write).
//! Once the schedule is exhausted every append is healthy, so tests can
//! script "fail the third write" without wrapping the filesystem.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One scripted write failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFault {
    /// The write fails cleanly: nothing reaches the file, the caller gets
    /// an I/O error, and the log stays usable.
    IoError,
    /// The write is torn: only the first `keep` bytes of the framed batch
    /// reach the file, then the log wedges (as a real device would after
    /// a partial write of unknown extent). Recovery truncates the tail.
    TornWrite { keep: u32 },
}

/// A shared, consumable schedule of per-append faults. `None` slots are
/// healthy writes. Cloning shares the underlying queue, so a test can
/// keep a handle and extend the schedule while the log is live.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    slots: Arc<Mutex<VecDeque<Option<WalFault>>>>,
}

impl FaultSchedule {
    /// An empty schedule: every write is healthy.
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule from explicit slots, first slot first.
    pub fn of<I: IntoIterator<Item = Option<WalFault>>>(slots: I) -> Self {
        Self { slots: Arc::new(Mutex::new(slots.into_iter().collect())) }
    }

    /// Appends one slot to the end of the schedule.
    pub fn push(&self, slot: Option<WalFault>) {
        self.lock().push_back(slot);
    }

    /// Slots not yet consumed.
    pub fn remaining(&self) -> usize {
        self.lock().len()
    }

    /// Consumes the next slot; `None` means a healthy write (either a
    /// scripted healthy slot or an exhausted schedule).
    pub(crate) fn next(&self) -> Option<WalFault> {
        self.lock().pop_front().flatten()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Option<WalFault>>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_positional_and_shared() {
        let s = FaultSchedule::of([None, Some(WalFault::IoError), None]);
        let alias = s.clone();
        assert_eq!(s.next(), None);
        assert_eq!(alias.next(), Some(WalFault::IoError));
        assert_eq!(s.next(), None);
        // Exhausted => healthy forever.
        assert_eq!(s.next(), None);
        assert_eq!(s.remaining(), 0);
        s.push(Some(WalFault::TornWrite { keep: 3 }));
        assert_eq!(alias.next(), Some(WalFault::TornWrite { keep: 3 }));
    }
}
