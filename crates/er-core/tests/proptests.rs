//! Property-based tests for the ER data model invariants.

use std::sync::Arc;

use er_core::{
    BinaryConfusion, Dataset, EntityPair, F1Summary, LabeledPair, MatchLabel, Money, PairId,
    Record, RecordId, Schema, ThreeWaySplit, TokenCount,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = MatchLabel> {
    prop::bool::ANY.prop_map(MatchLabel::from_bool)
}

fn make_pairs(values: &[String]) -> Vec<LabeledPair> {
    let schema = Arc::new(Schema::new(["v"]).unwrap());
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let a = Arc::new(
                Record::new(RecordId::a(i as u32), Arc::clone(&schema), vec![v.clone()]).unwrap(),
            );
            let b = Arc::new(
                Record::new(RecordId::b(i as u32), Arc::clone(&schema), vec![v.clone()]).unwrap(),
            );
            LabeledPair::new(
                EntityPair::new(PairId(i as u32), a, b).unwrap(),
                MatchLabel::from_bool(i % 2 == 0),
            )
        })
        .collect()
}

proptest! {
    /// F1 is always within [0, 1] and precision/recall denominators never
    /// produce NaN.
    #[test]
    fn f1_bounded(gold in prop::collection::vec(arb_label(), 1..200),
                  flips in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let n = gold.len().min(flips.len());
        let predicted: Vec<MatchLabel> = gold[..n]
            .iter()
            .zip(&flips[..n])
            .map(|(&g, &flip)| if flip { MatchLabel::from_bool(!g.is_match()) } else { g })
            .collect();
        let c = BinaryConfusion::from_slices(&gold[..n], &predicted);
        prop_assert!((0.0..=1.0).contains(&c.f1()));
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
        prop_assert_eq!(c.total(), n as u64);
    }

    /// Perfect prediction always yields F1 = recall = 1 when at least one
    /// positive exists.
    #[test]
    fn perfect_prediction_is_perfect(gold in prop::collection::vec(arb_label(), 1..100)) {
        let c = BinaryConfusion::from_slices(&gold, &gold);
        if gold.iter().any(|l| l.is_match()) {
            prop_assert!((c.f1() - 1.0).abs() < 1e-12);
        }
        prop_assert_eq!(c.fp, 0);
        prop_assert_eq!(c.fn_, 0);
    }

    /// Money addition is associative and commutative on realistic ranges.
    #[test]
    fn money_arithmetic(a in -1_000_000_000i64..1_000_000_000,
                        b in -1_000_000_000i64..1_000_000_000,
                        c in -1_000_000_000i64..1_000_000_000) {
        let (ma, mb, mc) = (Money::from_micros(a), Money::from_micros(b), Money::from_micros(c));
        prop_assert_eq!(ma + mb, mb + ma);
        prop_assert_eq!((ma + mb) + mc, ma + (mb + mc));
        prop_assert_eq!(ma + Money::ZERO, ma);
        prop_assert_eq!(ma - ma, Money::ZERO);
    }

    /// Token pricing is linear: price(n + m) = price(n) + price(m).
    #[test]
    fn token_pricing_linear(per_tok in 0i64..100, n in 0u64..1_000_000, m in 0u64..1_000_000) {
        let p = Money::from_micros(per_tok);
        let lhs = p.per_token_times(TokenCount(n + m));
        let rhs = p.per_token_times(TokenCount(n)) + p.per_token_times(TokenCount(m));
        prop_assert_eq!(lhs, rhs);
    }

    /// Any 3:1:1 split partitions the dataset exactly: disjoint and
    /// complete, sizes within one bucket of the ideal ratio.
    #[test]
    fn split_partitions(n in 5usize..500, seed in any::<u64>()) {
        let values: Vec<String> = (0..n).map(|i| format!("rec {i}")).collect();
        let pairs = make_pairs(&values);
        let split = ThreeWaySplit::new(&pairs, 3, 1, 1, seed).unwrap();
        let mut ids: Vec<u32> = split.train.iter()
            .chain(&split.valid)
            .chain(&split.test)
            .map(|p| p.pair.id().0)
            .collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(ids, expect);
        prop_assert_eq!(split.valid.len(), n / 5);
        prop_assert_eq!(split.test.len(), n / 5);
    }

    /// Serialization of a pair always contains every attribute name and the
    /// `[SEP]` marker.
    #[test]
    fn serialization_total(vals in prop::collection::vec("[a-z0-9 ]{0,20}", 1..6)) {
        let names: Vec<String> = (0..vals.len()).map(|i| format!("attr{i}")).collect();
        let schema = Arc::new(Schema::new(names.clone()).unwrap());
        let a = Arc::new(Record::new(RecordId::a(0), Arc::clone(&schema), vals.clone()).unwrap());
        let b = Arc::new(Record::new(RecordId::b(0), Arc::clone(&schema), vals).unwrap());
        let pair = EntityPair::new(PairId(0), a, b).unwrap();
        let s = pair.serialize();
        prop_assert!(s.contains(er_core::SEP));
        for name in &names {
            prop_assert!(s.contains(name.as_str()));
        }
    }

    /// F1Summary mean lies within [min, max] of its inputs and std is
    /// non-negative.
    #[test]
    fn f1_summary_sane(f1s in prop::collection::vec(0.0f64..100.0, 1..20)) {
        let s = F1Summary::from_runs(&f1s).unwrap();
        let lo = f1s.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = f1s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean >= lo - 1e-9 && s.mean <= hi + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.runs, f1s.len());
    }
}

#[test]
fn dataset_stats_match_table_ii_shape() {
    let values: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
    let pairs = make_pairs(&values);
    let schema = pairs[0].pair.a().schema().clone();
    let d = Dataset::new("WA", "Electronics", Arc::new(schema), pairs).unwrap();
    let stats = d.stats();
    assert_eq!(stats.name, "WA");
    assert_eq!(stats.domain, "Electronics");
    assert_eq!(stats.pairs, 20);
    assert_eq!(stats.matches, 10);
}
