//! Matching-accuracy metrics: precision, recall, F1 (§VI-A), and
//! mean/std aggregation over repeated runs (the paper reports mean ± std
//! over three runs in Table III).

use serde::{Deserialize, Serialize};

use crate::pair::MatchLabel;

/// Confusion counts for the binary matching task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Matching pairs correctly identified.
    pub tp: u64,
    /// Non-matching pairs incorrectly identified as matching.
    pub fp: u64,
    /// Matching pairs incorrectly omitted.
    pub fn_: u64,
    /// Non-matching pairs correctly identified.
    pub tn: u64,
}

impl BinaryConfusion {
    /// A zeroed confusion table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (gold, predicted) observation.
    pub fn observe(&mut self, gold: MatchLabel, predicted: MatchLabel) {
        match (gold.is_match(), predicted.is_match()) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Builds a confusion table from parallel gold/predicted slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths — that is always a
    /// harness bug, not a data condition.
    pub fn from_slices(gold: &[MatchLabel], predicted: &[MatchLabel]) -> Self {
        assert_eq!(
            gold.len(),
            predicted.len(),
            "gold and predicted label slices must be parallel"
        );
        let mut c = Self::new();
        for (&g, &p) in gold.iter().zip(predicted) {
            c.observe(g, p);
        }
        c
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision `TP / (TP + FP)`; 0 when the denominator is 0.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `TP / (TP + FN)`; 0 when the denominator is 0.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 = harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Packages the three scores (as percentages, matching the paper's
    /// tables).
    pub fn scores(&self) -> PrfScores {
        PrfScores {
            precision: self.precision() * 100.0,
            recall: self.recall() * 100.0,
            f1: self.f1() * 100.0,
        }
    }

    /// Merges another confusion table into this one.
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Precision / recall / F1 as percentages in `[0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrfScores {
    /// Precision × 100.
    pub precision: f64,
    /// Recall × 100.
    pub recall: f64,
    /// F1 × 100.
    pub f1: f64,
}

/// Mean ± population standard deviation of F1 over repeated runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct F1Summary {
    /// Mean F1 (percentage).
    pub mean: f64,
    /// Population standard deviation of F1 (percentage points).
    pub std: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl F1Summary {
    /// Aggregates F1 percentages from repeated runs.
    ///
    /// Returns `None` for an empty slice (no runs to summarize).
    pub fn from_runs(f1s: &[f64]) -> Option<Self> {
        if f1s.is_empty() {
            return None;
        }
        let n = f1s.len() as f64;
        let mean = f1s.iter().sum::<f64>() / n;
        let var = f1s.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Some(Self { mean, std: var.sqrt(), runs: f1s.len() })
    }
}

impl std::fmt::Display for F1Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}±{:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MatchLabel::{Matching as M, NonMatching as N};

    #[test]
    fn perfect_prediction_scores_100() {
        let c = BinaryConfusion::from_slices(&[M, N, M, N], &[M, N, M, N]);
        let s = c.scores();
        assert_eq!(s.precision, 100.0);
        assert_eq!(s.recall, 100.0);
        assert_eq!(s.f1, 100.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let c = BinaryConfusion::from_slices(&[M, N], &[N, M]);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.tp, 0);
        assert_eq!(c.fp, 1);
        assert_eq!(c.fn_, 1);
    }

    #[test]
    fn textbook_f1() {
        // TP=8, FP=2 -> P=0.8; FN=2 -> R=0.8; F1=0.8.
        let mut c = BinaryConfusion::new();
        for _ in 0..8 {
            c.observe(M, M);
        }
        for _ in 0..2 {
            c.observe(N, M);
        }
        for _ in 0..2 {
            c.observe(M, N);
        }
        for _ in 0..5 {
            c.observe(N, N);
        }
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
        assert_eq!(c.total(), 17);
    }

    #[test]
    fn empty_confusion_is_zero_not_nan() {
        let c = BinaryConfusion::new();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn from_slices_panics_on_length_mismatch() {
        let _ = BinaryConfusion::from_slices(&[M], &[M, N]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BinaryConfusion::from_slices(&[M], &[M]);
        let b = BinaryConfusion::from_slices(&[N], &[M]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fp, 1);
    }

    #[test]
    fn f1_summary_mean_and_std() {
        let s = F1Summary::from_runs(&[70.0, 80.0, 90.0]).unwrap();
        assert!((s.mean - 80.0).abs() < 1e-12);
        assert!((s.std - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.runs, 3);
        assert!(F1Summary::from_runs(&[]).is_none());
        assert_eq!(F1Summary::from_runs(&[50.0]).unwrap().std, 0.0);
    }
}
