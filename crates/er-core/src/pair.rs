//! Entity pairs, match labels and the serialization function of Eq. 1.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::ErError;
use crate::record::Record;
use crate::SEP;

/// Identifier of a candidate pair within a dataset (index into the pair
/// list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairId(pub u32);

impl fmt::Display for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Gold label of a pair: do the two records refer to the same real-world
/// entity?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchLabel {
    /// The records refer to the same entity.
    Matching,
    /// The records refer to different entities.
    NonMatching,
}

impl MatchLabel {
    /// True for [`MatchLabel::Matching`].
    pub fn is_match(self) -> bool {
        matches!(self, MatchLabel::Matching)
    }

    /// Builds a label from a boolean (`true` = matching).
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            MatchLabel::Matching
        } else {
            MatchLabel::NonMatching
        }
    }
}

impl fmt::Display for MatchLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchLabel::Matching => write!(f, "matching"),
            MatchLabel::NonMatching => write!(f, "non-matching"),
        }
    }
}

/// A candidate pair `(a, b)` produced by the blocker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityPair {
    id: PairId,
    a: Arc<Record>,
    b: Arc<Record>,
}

impl EntityPair {
    /// Builds a pair; both records must share one schema.
    pub fn new(id: PairId, a: Arc<Record>, b: Arc<Record>) -> Result<Self, ErError> {
        if a.schema() != b.schema() {
            return Err(ErError::SchemaMismatch);
        }
        Ok(Self { id, a, b })
    }

    /// The pair identifier.
    pub fn id(&self) -> PairId {
        self.id
    }

    /// The left record (from `T_A`).
    pub fn a(&self) -> &Record {
        &self.a
    }

    /// The right record (from `T_B`).
    pub fn b(&self) -> &Record {
        &self.b
    }

    /// Serializes this pair per Eq. 1: `S(a)[SEP]S(b)`.
    pub fn serialize(&self) -> String {
        serialize_pair(&self.a, &self.b)
    }
}

/// A pair together with its gold label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledPair {
    /// The candidate pair.
    pub pair: EntityPair,
    /// Its gold label.
    pub label: MatchLabel,
}

impl LabeledPair {
    /// Convenience constructor.
    pub fn new(pair: EntityPair, label: MatchLabel) -> Self {
        Self { pair, label }
    }
}

/// Serializes a single record per Eq. 1: `attr1: val1, attr2: val2, ...`.
///
/// The comma-space separator between attributes and the colon-space between
/// name and value mirror the prompt layout in Fig. 1 / Example 5 of the
/// paper. Missing values render as an empty string after the colon, which
/// lets the LLM (and its simulator) observe missingness.
pub fn serialize_record(record: &Record) -> String {
    let mut out = String::with_capacity(64);
    for (i, name) in record.schema().attributes().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(name);
        out.push_str(": ");
        out.push_str(record.value(i).unwrap_or(""));
    }
    out
}

/// Serializes a pair per Eq. 1: `S(a)[SEP]S(b)`.
pub fn serialize_pair(a: &Record, b: &Record) -> String {
    let sa = serialize_record(a);
    let sb = serialize_record(b);
    let mut out = String::with_capacity(sa.len() + sb.len() + SEP.len() + 2);
    out.push_str(&sa);
    out.push(' ');
    out.push_str(SEP);
    out.push(' ');
    out.push_str(&sb);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordId, Schema};

    fn pair() -> EntityPair {
        let schema = Arc::new(Schema::new(["title", "id"]).unwrap());
        let a = Arc::new(
            Record::new(
                RecordId::a(0),
                Arc::clone(&schema),
                vec!["iphone-13".into(), "0256".into()],
            )
            .unwrap(),
        );
        let b = Arc::new(
            Record::new(
                RecordId::b(0),
                Arc::clone(&schema),
                vec!["iphone-14".into(), String::new()],
            )
            .unwrap(),
        );
        EntityPair::new(PairId(0), a, b).unwrap()
    }

    #[test]
    fn serialization_follows_eq1() {
        let p = pair();
        assert_eq!(
            p.serialize(),
            "title: iphone-13, id: 0256 [SEP] title: iphone-14, id: "
        );
    }

    #[test]
    fn pair_rejects_schema_mismatch() {
        let s1 = Arc::new(Schema::new(["title"]).unwrap());
        let s2 = Arc::new(Schema::new(["name"]).unwrap());
        let a = Arc::new(Record::new(RecordId::a(0), s1, vec!["x".into()]).unwrap());
        let b = Arc::new(Record::new(RecordId::b(0), s2, vec!["y".into()]).unwrap());
        assert_eq!(
            EntityPair::new(PairId(1), a, b).unwrap_err(),
            ErError::SchemaMismatch
        );
    }

    #[test]
    fn label_roundtrip() {
        assert!(MatchLabel::from_bool(true).is_match());
        assert!(!MatchLabel::from_bool(false).is_match());
        assert_eq!(MatchLabel::Matching.to_string(), "matching");
    }

    #[test]
    fn serialized_pair_contains_sep_exactly_once_for_clean_values() {
        let p = pair();
        let s = p.serialize();
        assert_eq!(s.matches(SEP).count(), 1);
    }
}
