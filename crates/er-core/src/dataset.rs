//! Labeled ER benchmark datasets (Table II of the paper).

use std::sync::Arc;

use crate::error::ErError;
use crate::pair::{LabeledPair, MatchLabel};
use crate::record::Schema;
use crate::split::ThreeWaySplit;

/// A labeled benchmark: a schema plus a list of candidate pairs with gold
/// labels, as produced by a blocker over two source tables.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    domain: String,
    schema: Arc<Schema>,
    pairs: Vec<LabeledPair>,
}

impl Dataset {
    /// Builds a dataset; at least one labeled pair is required.
    pub fn new(
        name: impl Into<String>,
        domain: impl Into<String>,
        schema: Arc<Schema>,
        pairs: Vec<LabeledPair>,
    ) -> Result<Self, ErError> {
        if pairs.is_empty() {
            return Err(ErError::EmptyDataset);
        }
        Ok(Self { name: name.into(), domain: domain.into(), schema, pairs })
    }

    /// Short dataset name, e.g. `"WA"` for Walmart-Amazon.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Domain string, e.g. `"Electronics"`.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All labeled pairs.
    pub fn pairs(&self) -> &[LabeledPair] {
        &self.pairs
    }

    /// Number of labeled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Always false — construction rejects empty datasets.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Summary statistics in the shape of the paper's Table II.
    pub fn stats(&self) -> DatasetStats {
        let matches = self
            .pairs
            .iter()
            .filter(|p| p.label == MatchLabel::Matching)
            .count();
        DatasetStats {
            name: self.name.clone(),
            domain: self.domain.clone(),
            attributes: self.schema.arity(),
            pairs: self.pairs.len(),
            matches,
        }
    }

    /// Splits into train : valid : test = 3 : 1 : 1 (§VI-A), deterministic
    /// in `seed`.
    pub fn split_3_1_1(&self, seed: u64) -> Result<ThreeWaySplit<'_>, ErError> {
        ThreeWaySplit::new(&self.pairs, 3, 1, 1, seed)
    }
}

/// One row of Table II: per-dataset statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Short name (WA, AB, ...).
    pub name: String,
    /// Domain (Electronics, Citation, ...).
    pub domain: String,
    /// Attribute count `m`.
    pub attributes: usize,
    /// Number of labeled candidate pairs.
    pub pairs: usize,
    /// Number of matching pairs among them.
    pub matches: usize,
}

impl DatasetStats {
    /// Fraction of pairs that match (class balance).
    pub fn match_rate(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.matches as f64 / self.pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{EntityPair, PairId};
    use crate::record::{Record, RecordId};

    fn tiny_dataset(n: usize) -> Dataset {
        let schema = Arc::new(Schema::new(["title"]).unwrap());
        let pairs = (0..n)
            .map(|i| {
                let a = Arc::new(
                    Record::new(
                        RecordId::a(i as u32),
                        Arc::clone(&schema),
                        vec![format!("item {i}")],
                    )
                    .unwrap(),
                );
                let b = Arc::new(
                    Record::new(
                        RecordId::b(i as u32),
                        Arc::clone(&schema),
                        vec![format!("item {i} deluxe")],
                    )
                    .unwrap(),
                );
                LabeledPair::new(
                    EntityPair::new(PairId(i as u32), a, b).unwrap(),
                    MatchLabel::from_bool(i % 3 == 0),
                )
            })
            .collect();
        Dataset::new("TD", "Test", schema, pairs).unwrap()
    }

    #[test]
    fn rejects_empty() {
        let schema = Arc::new(Schema::new(["title"]).unwrap());
        assert!(matches!(
            Dataset::new("E", "none", schema, vec![]),
            Err(ErError::EmptyDataset)
        ));
    }

    #[test]
    fn stats_count_matches() {
        let d = tiny_dataset(9);
        let s = d.stats();
        assert_eq!(s.pairs, 9);
        assert_eq!(s.matches, 3); // i = 0, 3, 6
        assert_eq!(s.attributes, 1);
        assert!((s.match_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_covers_everything_without_overlap() {
        let d = tiny_dataset(50);
        let split = d.split_3_1_1(42).unwrap();
        assert_eq!(split.train.len() + split.valid.len() + split.test.len(), 50);
        // 3:1:1 over 50 = 30/10/10.
        assert_eq!(split.train.len(), 30);
        assert_eq!(split.valid.len(), 10);
        assert_eq!(split.test.len(), 10);
    }

    #[test]
    fn split_is_deterministic_in_seed() {
        let d = tiny_dataset(25);
        let s1 = d.split_3_1_1(7).unwrap();
        let s2 = d.split_3_1_1(7).unwrap();
        let ids = |ps: &[&LabeledPair]| ps.iter().map(|p| p.pair.id()).collect::<Vec<_>>();
        assert_eq!(ids(&s1.train), ids(&s2.train));
        let s3 = d.split_3_1_1(8).unwrap();
        assert_ne!(ids(&s1.train), ids(&s3.train));
    }
}
