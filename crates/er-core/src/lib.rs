//! Core data model for entity resolution (ER).
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace:
//!
//! * [`Record`] / [`Schema`] — relational tuples with named attributes
//!   (§II-A of the BatchER paper: a tuple `a = {attr_i, val_i}`).
//! * [`EntityPair`] / [`MatchLabel`] — candidate pairs and gold labels.
//! * [`serialize_record`] / [`serialize_pair`] — the serialization function
//!   `S(e) = attr1: val1 ... attrm: valm` with `[SEP]` between the two
//!   entities of a pair (Eq. 1).
//! * [`Dataset`] and [`split::ThreeWaySplit`] — labeled benchmarks with the
//!   paper's 3:1:1 train/valid/test split.
//! * [`metrics`] — precision / recall / F1 and run aggregation.
//! * [`cost`] — token counts, micro-dollar money arithmetic, API and
//!   labeling cost accounting.

pub mod cost;
pub mod dataset;
pub mod error;
pub mod metrics;
pub mod pair;
pub mod record;
pub mod split;

pub use cost::{CostLedger, Money, SharedCostLedger, TokenCount, LABEL_COST_PER_PAIR};
pub use dataset::{Dataset, DatasetStats};
pub use error::ErError;
pub use metrics::{BinaryConfusion, F1Summary, PrfScores};
pub use pair::{serialize_pair, serialize_record, EntityPair, LabeledPair, MatchLabel, PairId};
pub use record::{Record, RecordId, Schema, SourceTable};
pub use split::ThreeWaySplit;

/// The `[SEP]` marker used between the two serialized entities of a pair
/// (Eq. 1 in the paper).
pub const SEP: &str = "[SEP]";
