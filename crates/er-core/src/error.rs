//! Error type shared by the ER data-model crate.

use std::fmt;

/// Errors raised while constructing or manipulating ER data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErError {
    /// A schema must have at least one attribute.
    EmptySchema,
    /// Attribute names within a schema must be unique.
    DuplicateAttribute(String),
    /// A record's value count does not match its schema arity.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// The two records of a pair use different schemas.
    SchemaMismatch,
    /// A dataset split ratio does not cover the whole dataset.
    BadSplit(String),
    /// A dataset was empty where at least one labeled pair was required.
    EmptyDataset,
}

impl fmt::Display for ErError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErError::EmptySchema => write!(f, "schema must contain at least one attribute"),
            ErError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name in schema: {name:?}")
            }
            ErError::ArityMismatch { expected, got } => write!(
                f,
                "record arity mismatch: schema has {expected} attributes, got {got} values"
            ),
            ErError::SchemaMismatch => {
                write!(f, "both records of an entity pair must share one schema")
            }
            ErError::BadSplit(why) => write!(f, "invalid dataset split: {why}"),
            ErError::EmptyDataset => write!(f, "dataset contains no labeled pairs"),
        }
    }
}

impl std::error::Error for ErError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            ErError::EmptySchema.to_string(),
            ErError::DuplicateAttribute("title".into()).to_string(),
            ErError::ArityMismatch { expected: 3, got: 1 }.to_string(),
            ErError::SchemaMismatch.to_string(),
            ErError::BadSplit("zero parts".into()).to_string(),
            ErError::EmptyDataset.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(ErError::ArityMismatch { expected: 3, got: 1 }
            .to_string()
            .contains("3"));
    }
}
