//! Monetary cost accounting: token counts, micro-dollar arithmetic, and the
//! API + labeling cost ledger used throughout the evaluation (§VI-A).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Cost of labeling one entity pair, derived from AMT's $0.08 per 10-pair
/// labeling task (§VI-A): $0.008 = 8 000 micro-dollars.
pub const LABEL_COST_PER_PAIR: Money = Money::from_micros(8_000);

/// A number of LLM tokens.
///
/// Thin wrapper so token counts cannot be confused with other integers in
/// cost formulas.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TokenCount(pub u64);

impl TokenCount {
    /// Zero tokens.
    pub const ZERO: TokenCount = TokenCount(0);

    /// The raw count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl Add for TokenCount {
    type Output = TokenCount;
    fn add(self, rhs: TokenCount) -> TokenCount {
        TokenCount(self.0 + rhs.0)
    }
}

impl AddAssign for TokenCount {
    fn add_assign(&mut self, rhs: TokenCount) {
        self.0 += rhs.0;
    }
}

impl Sum for TokenCount {
    fn sum<I: Iterator<Item = TokenCount>>(iter: I) -> TokenCount {
        iter.fold(TokenCount::ZERO, Add::add)
    }
}

impl fmt::Display for TokenCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tok", self.0)
    }
}

/// Money in micro-dollars (1e-6 USD), stored as a signed 64-bit integer.
///
/// Fixed-point avoids the float-summation drift that would otherwise creep
/// into per-token prices on the order of 1e-8 dollars. The representable
/// range (±9.2e12 USD) is comfortably beyond any experiment's budget.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money {
    micros: i64,
}

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money { micros: 0 };

    /// Builds from micro-dollars.
    pub const fn from_micros(micros: i64) -> Self {
        Self { micros }
    }

    /// Builds from whole dollars (may round toward zero beyond 1e-6).
    pub fn from_dollars(dollars: f64) -> Self {
        Self { micros: (dollars * 1e6).round() as i64 }
    }

    /// The amount in micro-dollars.
    pub const fn micros(self) -> i64 {
        self.micros
    }

    /// The amount as floating-point dollars (for display / plotting only).
    pub fn dollars(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Multiplies a per-token price by a token count.
    pub fn per_token_times(self, tokens: TokenCount) -> Money {
        Money { micros: self.micros.saturating_mul(tokens.0 as i64) }
    }

    /// Saturating ratio of two amounts, for "Nx cheaper" style reporting.
    /// Returns `f64::INFINITY` when `other` is zero and `self` is not.
    pub fn ratio(self, other: Money) -> f64 {
        if other.micros == 0 {
            if self.micros == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.micros as f64 / other.micros as f64
        }
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money { micros: self.micros + rhs.micros }
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.micros += rhs.micros;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money { micros: self.micros - rhs.micros }
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, rhs: u64) -> Money {
        Money { micros: self.micros.saturating_mul(rhs as i64) }
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.micros < 0 { "-" } else { "" };
        let abs = self.micros.unsigned_abs();
        write!(f, "{sign}${}.{:06}", abs / 1_000_000, abs % 1_000_000)
    }
}

/// Accumulates the two cost components the paper reports per approach:
/// API cost (token-priced LLM calls) and labeling cost (human annotation of
/// selected demonstrations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Total spent on LLM API calls.
    pub api: Money,
    /// Total spent on human labeling of demonstrations.
    pub labeling: Money,
    /// Prompt tokens sent.
    pub prompt_tokens: TokenCount,
    /// Completion tokens received.
    pub completion_tokens: TokenCount,
    /// Number of API calls issued.
    pub api_calls: u64,
    /// Number of entity pairs labeled by annotators.
    pub pairs_labeled: u64,
}

impl CostLedger {
    /// A fresh, zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one API call.
    pub fn record_api_call(
        &mut self,
        prompt_tokens: TokenCount,
        completion_tokens: TokenCount,
        cost: Money,
    ) {
        self.api += cost;
        self.prompt_tokens += prompt_tokens;
        self.completion_tokens += completion_tokens;
        self.api_calls += 1;
    }

    /// Records human labeling of `pairs` demonstrations at the AMT rate.
    pub fn record_labeling(&mut self, pairs: u64) {
        self.labeling += LABEL_COST_PER_PAIR * pairs;
        self.pairs_labeled += pairs;
    }

    /// API + labeling.
    pub fn total(&self) -> Money {
        self.api + self.labeling
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.api += other.api;
        self.labeling += other.labeling;
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.api_calls += other.api_calls;
        self.pairs_labeled += other.pairs_labeled;
    }
}

/// A thread-safe, shareable handle to a [`CostLedger`].
///
/// The offline experiment runner owns its ledger outright; the serving
/// layer (`er-service`) instead needs many worker threads charging one
/// budget concurrently. Cloning the handle shares the underlying ledger;
/// all recording methods take `&self`.
#[derive(Debug, Clone, Default)]
pub struct SharedCostLedger {
    inner: std::sync::Arc<std::sync::Mutex<CostLedger>>,
}

impl SharedCostLedger {
    /// A fresh zeroed shared ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one API call (thread-safe).
    pub fn record_api_call(
        &self,
        prompt_tokens: TokenCount,
        completion_tokens: TokenCount,
        cost: Money,
    ) {
        self.lock()
            .record_api_call(prompt_tokens, completion_tokens, cost);
    }

    /// Records human labeling of `pairs` demonstrations (thread-safe).
    pub fn record_labeling(&self, pairs: u64) {
        self.lock().record_labeling(pairs);
    }

    /// Merges a detached ledger (e.g. one batch execution's accounting)
    /// into this one.
    pub fn merge(&self, other: &CostLedger) {
        self.lock().merge(other);
    }

    /// A point-in-time copy of the ledger.
    pub fn snapshot(&self) -> CostLedger {
        *self.lock()
    }

    /// Current API + labeling total.
    pub fn total(&self) -> Money {
        self.lock().total()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CostLedger> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn money_display_is_fixed_point() {
        assert_eq!(Money::from_micros(1_234_567).to_string(), "$1.234567");
        assert_eq!(Money::from_micros(-500).to_string(), "-$0.000500");
        assert_eq!(Money::ZERO.to_string(), "$0.000000");
    }

    #[test]
    fn money_from_dollars_roundtrips() {
        let m = Money::from_dollars(0.008);
        assert_eq!(m, LABEL_COST_PER_PAIR);
        assert!((m.dollars() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn per_token_pricing() {
        // GPT-4 style: $0.01 per 1K tokens = 10 micro-dollars per token.
        let per_tok = Money::from_micros(10);
        let cost = per_tok.per_token_times(TokenCount(90_000));
        assert_eq!(cost, Money::from_dollars(0.9));
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(Money::ZERO.ratio(Money::ZERO), 1.0);
        assert!(Money::from_micros(5).ratio(Money::ZERO).is_infinite());
        assert!((Money::from_micros(700).ratio(Money::from_micros(100)) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut l = CostLedger::new();
        l.record_api_call(TokenCount(100), TokenCount(20), Money::from_micros(120));
        l.record_labeling(10);
        assert_eq!(l.api_calls, 1);
        assert_eq!(l.pairs_labeled, 10);
        assert_eq!(l.labeling, Money::from_dollars(0.08));
        assert_eq!(
            l.total(),
            Money::from_micros(120) + Money::from_dollars(0.08)
        );

        let mut l2 = CostLedger::new();
        l2.record_api_call(TokenCount(1), TokenCount(1), Money::from_micros(2));
        l2.merge(&l);
        assert_eq!(l2.api_calls, 2);
        assert_eq!(l2.prompt_tokens, TokenCount(101));
    }

    #[test]
    fn shared_ledger_aggregates_across_threads() {
        let shared = SharedCostLedger::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = shared.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        handle.record_api_call(
                            TokenCount(10),
                            TokenCount(2),
                            Money::from_micros(12),
                        );
                    }
                    handle.record_labeling(1);
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.api_calls, 800);
        assert_eq!(snap.prompt_tokens, TokenCount(8_000));
        assert_eq!(snap.api, Money::from_micros(9_600));
        assert_eq!(snap.pairs_labeled, 8);
        assert_eq!(shared.total(), snap.total());
    }

    #[test]
    fn shared_ledger_merges_detached_ledgers() {
        let shared = SharedCostLedger::new();
        let mut detached = CostLedger::new();
        detached.record_api_call(TokenCount(5), TokenCount(1), Money::from_micros(7));
        shared.merge(&detached);
        assert_eq!(shared.snapshot(), detached);
    }

    #[test]
    fn token_count_sums() {
        let total: TokenCount = [TokenCount(1), TokenCount(2), TokenCount(3)]
            .into_iter()
            .sum();
        assert_eq!(total, TokenCount(6));
        assert_eq!(total.to_string(), "6 tok");
    }
}
