//! Deterministic dataset splitting.
//!
//! The paper splits each benchmark's labeled pairs into train / valid / test
//! with ratio 3:1:1 (§VI-A). The split must be reproducible across runs, so
//! the shuffle uses a small self-contained xorshift generator seeded
//! explicitly rather than a thread-local RNG.

use crate::error::ErError;
use crate::pair::LabeledPair;

/// Borrowed views of a dataset's pairs partitioned into train / valid /
/// test.
#[derive(Debug, Clone)]
pub struct ThreeWaySplit<'a> {
    /// Training pairs (the demonstration pool in the BatchER setting).
    pub train: Vec<&'a LabeledPair>,
    /// Validation pairs.
    pub valid: Vec<&'a LabeledPair>,
    /// Test pairs (the question set).
    pub test: Vec<&'a LabeledPair>,
}

impl<'a> ThreeWaySplit<'a> {
    /// Shuffles `pairs` deterministically with `seed` and partitions them
    /// `train : valid : test` proportionally to the given weights.
    ///
    /// Remainder elements (when the total does not divide exactly) go to the
    /// training partition, which matches common benchmark tooling and keeps
    /// the test set size stable across datasets.
    pub fn new(
        pairs: &'a [LabeledPair],
        train_w: usize,
        valid_w: usize,
        test_w: usize,
        seed: u64,
    ) -> Result<Self, ErError> {
        let total_w = train_w + valid_w + test_w;
        if total_w == 0 {
            return Err(ErError::BadSplit("all weights are zero".into()));
        }
        if pairs.is_empty() {
            return Err(ErError::BadSplit("no pairs to split".into()));
        }
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        shuffle(&mut order, seed);

        let n = pairs.len();
        let valid_n = n * valid_w / total_w;
        let test_n = n * test_w / total_w;
        let train_n = n - valid_n - test_n;

        let take = |range: std::ops::Range<usize>| -> Vec<&'a LabeledPair> {
            order[range].iter().map(|&i| &pairs[i]).collect()
        };
        Ok(Self {
            train: take(0..train_n),
            valid: take(train_n..train_n + valid_n),
            test: take(train_n + valid_n..n),
        })
    }
}

/// Fisher-Yates shuffle driven by [`xorshift64`].
fn shuffle(indices: &mut [usize], seed: u64) {
    // Seed 0 is a fixed point of xorshift; displace it.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    for i in (1..indices.len()).rev() {
        state = xorshift64(state);
        let j = (state % (i as u64 + 1)) as usize;
        indices.swap(i, j);
    }
}

/// One step of the xorshift64 generator (Marsaglia 2003).
fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{EntityPair, MatchLabel, PairId};
    use crate::record::{Record, RecordId, Schema};
    use std::sync::Arc;

    fn pairs(n: usize) -> Vec<LabeledPair> {
        let schema = Arc::new(Schema::new(["x"]).unwrap());
        (0..n)
            .map(|i| {
                let a = Arc::new(
                    Record::new(
                        RecordId::a(i as u32),
                        Arc::clone(&schema),
                        vec![i.to_string()],
                    )
                    .unwrap(),
                );
                let b = Arc::new(
                    Record::new(
                        RecordId::b(i as u32),
                        Arc::clone(&schema),
                        vec![i.to_string()],
                    )
                    .unwrap(),
                );
                LabeledPair::new(
                    EntityPair::new(PairId(i as u32), a, b).unwrap(),
                    MatchLabel::Matching,
                )
            })
            .collect()
    }

    #[test]
    fn split_rejects_zero_weights() {
        let ps = pairs(10);
        assert!(ThreeWaySplit::new(&ps, 0, 0, 0, 1).is_err());
    }

    #[test]
    fn split_rejects_empty_input() {
        let ps: Vec<LabeledPair> = vec![];
        assert!(ThreeWaySplit::new(&ps, 3, 1, 1, 1).is_err());
    }

    #[test]
    fn remainder_goes_to_train() {
        // 7 pairs at 3:1:1 -> valid = 1, test = 1, train = 5.
        let ps = pairs(7);
        let s = ThreeWaySplit::new(&ps, 3, 1, 1, 99).unwrap();
        assert_eq!(s.train.len(), 5);
        assert_eq!(s.valid.len(), 1);
        assert_eq!(s.test.len(), 1);
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let ps = pairs(31);
        let s = ThreeWaySplit::new(&ps, 3, 1, 1, 5).unwrap();
        let mut seen: Vec<u32> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .map(|p| p.pair.id().0)
            .collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..31).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn shuffle_actually_permutes() {
        let ps = pairs(100);
        let s = ThreeWaySplit::new(&ps, 3, 1, 1, 123).unwrap();
        // The first 60 ids in order would be 0..60 if unshuffled.
        let first: Vec<u32> = s.train.iter().map(|p| p.pair.id().0).collect();
        let sorted = {
            let mut v = first.clone();
            v.sort_unstable();
            v
        };
        assert_ne!(first, sorted, "shuffle left the order fully sorted");
    }

    #[test]
    fn xorshift_is_not_identity() {
        let a = xorshift64(1);
        let b = xorshift64(a);
        assert_ne!(a, 1);
        assert_ne!(b, a);
    }
}
