//! Relational records: schemas, tuples and identifiers.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::ErError;

/// Which of the two input tables a record belongs to (§II-A: tables `T_A`
/// and `T_B`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceTable {
    /// The left relation `T_A`.
    A,
    /// The right relation `T_B`.
    B,
}

impl fmt::Display for SourceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceTable::A => write!(f, "A"),
            SourceTable::B => write!(f, "B"),
        }
    }
}

/// Identifier of a record within one source table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId {
    /// The table the record lives in.
    pub table: SourceTable,
    /// Zero-based row index within that table.
    pub row: u32,
}

impl RecordId {
    /// A record in table `T_A`.
    pub fn a(row: u32) -> Self {
        Self { table: SourceTable::A, row }
    }

    /// A record in table `T_B`.
    pub fn b(row: u32) -> Self {
        Self { table: SourceTable::B, row }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.table, self.row)
    }
}

/// An ordered list of attribute names shared by all records of a dataset.
///
/// Both tables of a Magellan-style benchmark share one schema (the matcher
/// compares attribute `i` of `a` against attribute `i` of `b`), which is the
/// assumption the structure-aware feature extractor (§III-B) relies on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Builds a schema from attribute names.
    ///
    /// # Errors
    /// Returns [`ErError::EmptySchema`] when no attributes are given and
    /// [`ErError::DuplicateAttribute`] when a name repeats.
    pub fn new<I, S>(names: I) -> Result<Self, ErError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attributes: Vec<String> = names.into_iter().map(Into::into).collect();
        if attributes.is_empty() {
            return Err(ErError::EmptySchema);
        }
        for (i, name) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|prev| prev == name) {
                return Err(ErError::DuplicateAttribute(name.clone()));
            }
        }
        Ok(Self { attributes })
    }

    /// Number of attributes `m`.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names, in serialization order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Index of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }
}

/// One entity: a tuple of attribute values positionally aligned with a
/// [`Schema`].
///
/// Values are plain strings; a missing value is represented by an empty
/// string, matching how Magellan CSV benchmarks encode NULLs and how the
/// paper's serialization renders them (`attr: ` with nothing after the
/// colon).
///
/// Records intentionally do not implement serde traits: they travel between
/// processes as serialized prompt text (Eq. 1), never as structured JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    id: RecordId,
    schema: Arc<Schema>,
    values: Vec<String>,
}

impl Record {
    /// Builds a record; `values` must have exactly `schema.arity()` entries.
    pub fn new(id: RecordId, schema: Arc<Schema>, values: Vec<String>) -> Result<Self, ErError> {
        if values.len() != schema.arity() {
            return Err(ErError::ArityMismatch { expected: schema.arity(), got: values.len() });
        }
        Ok(Self { id, schema, values })
    }

    /// The record identifier.
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All attribute values in schema order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Value of attribute `i` (schema order).
    pub fn value(&self, i: usize) -> Option<&str> {
        self.values.get(i).map(String::as_str)
    }

    /// Value of the attribute called `name`.
    pub fn value_by_name(&self, name: &str) -> Option<&str> {
        self.schema.index_of(name).and_then(|i| self.value(i))
    }

    /// True when the attribute value at `i` is missing (empty after
    /// trimming).
    pub fn is_missing(&self, i: usize) -> bool {
        self.value(i).is_none_or(|v| v.trim().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(["title", "brand", "price"]).unwrap())
    }

    #[test]
    fn schema_rejects_empty() {
        assert!(matches!(
            Schema::new(Vec::<String>::new()),
            Err(ErError::EmptySchema)
        ));
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, ErError::DuplicateAttribute(name) if name == "a"));
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("brand"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn record_arity_checked() {
        let s = schema();
        let err = Record::new(RecordId::a(0), s, vec!["x".into()]).unwrap_err();
        assert!(matches!(
            err,
            ErError::ArityMismatch { expected: 3, got: 1 }
        ));
    }

    #[test]
    fn record_value_access() {
        let s = schema();
        let r = Record::new(
            RecordId::b(7),
            s,
            vec!["iphone 13".into(), "apple".into(), String::new()],
        )
        .unwrap();
        assert_eq!(r.value(0), Some("iphone 13"));
        assert_eq!(r.value_by_name("brand"), Some("apple"));
        assert_eq!(r.value(9), None);
        assert!(r.is_missing(2));
        assert!(!r.is_missing(0));
        assert_eq!(r.id().to_string(), "B7");
    }

    #[test]
    fn record_id_ordering_is_stable() {
        assert!(RecordId::a(1) < RecordId::a(2));
        assert!(RecordId::a(5) < RecordId::b(0));
    }
}
