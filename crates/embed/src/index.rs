//! Exact metric index over [`FeatureMatrix`] rows.
//!
//! A LAESA-style pivot table: `P` pivot rows, a per-row vector of
//! pivot distances, and triangle-inequality candidate elimination
//! before any full distance computation. For a query `q` and a row `x`,
//! `|d(q, p) − d(x, p)| ≤ d(q, x)` for every pivot `p`, so when the
//! left side exceeds the query radius (plus the float slack) the row
//! cannot be a hit and is skipped without touching its coordinates.
//!
//! **Exactness contract.** Pruning only ever *eliminates* candidates;
//! every survivor is verified with the same arithmetic the brute-force
//! reference uses ([`scan_rows_within`] for radius predicates, the
//! cached-norm dot trick of `FeatureMatrix::sq_dists_to_all` for
//! nearest-neighbour ranking). Per-row verdicts of those kernels are
//! position-independent, so the accelerated result sets are
//! bit-identical to a full scan — never approximate. The float slack
//! (`1e-9 + 1e-12 · max d₀`, the pivot-window convention from the
//! DBSCAN sweep this module generalizes) widens the pruning bound to
//! absorb the rounding gap between dot-trick and subtraction-form
//! distances; it only ever admits extra candidates for verification.
//!
//! **Degenerate inputs.** Rows with non-finite coordinates, norms, or
//! pivot distances — where the triangle bound is meaningless — live on
//! an *overflow* list that every query verifies linearly, so NaN/inf
//! features degrade to (partial) scans instead of wrong windows.
//! Empty matrices, single rows, all-identical rows (zero pivot
//! spread), and zero-dimensional rows all build degenerate-but-correct
//! indexes; the tests below pin each shape.
//!
//! **Mutability.** [`MetricIndex::append`] adds rows to an unsorted
//! tail (pivot distances computed at append time, pruned per query);
//! [`MetricIndex::tombstone`] hides a row from every subsequent query.
//! This matches the slot-major cache of the incremental planner, which
//! rebuilds the index at each full plan and appends between them.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

use crate::matrix::{scan_rows_within, FeatureMatrix};
use crate::par::par_map;
use crate::vecmath::{dot, sq_euclidean_distance};

/// Hard cap on pivots; query-side pivot distances live on the stack.
pub const MAX_PIVOTS: usize = 8;

/// Which index [`build_index`] constructs, thread-local so benches and
/// parity tests can pin a path without threading a parameter through
/// every planning call (the `embed::par::with_max_threads` idiom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Multi-pivot index sized by [`auto_pivots`].
    Auto,
    /// Single pivot: exactly the pre-index pivot-window sweep, kept as
    /// the reference implementation.
    Sweep,
}

thread_local! {
    static MODE: Cell<IndexMode> = const { Cell::new(IndexMode::Auto) };
}

/// The calling thread's current [`IndexMode`].
pub fn index_mode() -> IndexMode {
    MODE.with(Cell::get)
}

/// Runs `f` with the calling thread's [`IndexMode`] set to `mode`,
/// restoring the previous mode on exit (including unwinds). Indexes are
/// built on the planning thread, so this pins every `build_index` in
/// `f`'s dynamic extent on this thread.
pub fn with_index_mode<R>(mode: IndexMode, f: impl FnOnce() -> R) -> R {
    struct Restore(IndexMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(MODE.with(|m| m.replace(mode)));
    f()
}

/// Pivot count heuristic: small matrices fit in the single-pivot
/// window's cache footprint anyway, and at low dimension a full
/// verification costs no more than an extra-pivot check, so extra
/// pivots only fragment the streaming verify runs.
pub fn auto_pivots(n: usize, dim: usize) -> usize {
    if n < 128 {
        1
    } else {
        match dim {
            0..=8 => 1,
            _ => MAX_PIVOTS,
        }
    }
}

/// Builds the index the current [`IndexMode`] calls for.
pub fn build_index(matrix: &FeatureMatrix) -> PivotIndex {
    match index_mode() {
        IndexMode::Auto => PivotIndex::with_pivots(matrix, auto_pivots(matrix.len(), matrix.dim())),
        IndexMode::Sweep => PivotIndex::with_pivots(matrix, 1),
    }
}

// Process-wide counters (relaxed: monotone telemetry, no ordering
// dependencies). Snapshot with [`stats`]; meter a region by delta.
static BUILDS: AtomicU64 = AtomicU64::new(0);
static QUERIES: AtomicU64 = AtomicU64::new(0);
static CANDIDATES: AtomicU64 = AtomicU64::new(0);
static PRUNED: AtomicU64 = AtomicU64::new(0);
static QUERY_NS: AtomicU64 = AtomicU64::new(0);

/// Point-in-time snapshot of the process-wide index counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Indexes constructed.
    pub builds: u64,
    /// Queries answered (radius, nearest, and pair sweeps alike).
    pub queries: u64,
    /// Active rows (or row pairs, for sweeps) a brute-force pass would
    /// have fully evaluated.
    pub candidates: u64,
    /// Of those, eliminated by the triangle bound before any full
    /// distance computation.
    pub pruned: u64,
    /// Wall time spent inside queries, nanoseconds.
    pub query_ns: u64,
}

impl IndexStats {
    /// Counter increments since `earlier` (saturating, so a snapshot
    /// pair straddling little activity never underflows).
    pub fn delta_since(&self, earlier: &IndexStats) -> IndexStats {
        IndexStats {
            builds: self.builds.saturating_sub(earlier.builds),
            queries: self.queries.saturating_sub(earlier.queries),
            candidates: self.candidates.saturating_sub(earlier.candidates),
            pruned: self.pruned.saturating_sub(earlier.pruned),
            query_ns: self.query_ns.saturating_sub(earlier.query_ns),
        }
    }

    /// Fraction of candidates eliminated before full evaluation
    /// (0 when nothing was queried).
    pub fn pruned_fraction(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }
}

/// Snapshot of the process-wide index counters.
pub fn stats() -> IndexStats {
    IndexStats {
        builds: BUILDS.load(Ordering::Relaxed),
        queries: QUERIES.load(Ordering::Relaxed),
        candidates: CANDIDATES.load(Ordering::Relaxed),
        pruned: PRUNED.load(Ordering::Relaxed),
        query_ns: QUERY_NS.load(Ordering::Relaxed),
    }
}

/// A recorded symmetric pair sweep: one verdict bit per candidate slot
/// in the sweep's deterministic window layout. The layout is a pure
/// function of the index geometry and `eps` — never of pruning
/// decisions — so pruned and tombstoned candidates simply keep their
/// zero bit. Replaying re-derives the same windows and word-skips
/// straight to the set bits; no distance is recomputed and no pruning
/// check is re-evaluated.
#[derive(Debug, Clone)]
pub struct PairSweep {
    eps: f64,
    bits: Vec<u64>,
    n_bits: usize,
    pairs: usize,
}

impl PairSweep {
    /// Number of close pairs the sweep found.
    pub fn close_pair_count(&self) -> usize {
        self.pairs
    }

    /// Reserves a `len`-bit all-zero window at the end of the stream,
    /// returning its base bit position.
    fn open_window(&mut self, len: usize) -> usize {
        let base = self.n_bits;
        self.n_bits += len;
        let words = self.n_bits.div_ceil(64);
        if words > self.bits.len() {
            self.bits.resize(words, 0);
        }
        base
    }

    /// Marks absolute bit `at` as a close pair.
    fn set_hit(&mut self, at: usize) {
        self.bits[at >> 6] |= 1u64 << (at & 63);
        self.pairs += 1;
    }

    /// Visits each set bit of the `len`-bit window based at absolute
    /// bit `base`, as an offset within the window, skipping zero words
    /// whole. Out-of-range words read as zero (the caller's cursor
    /// check reports the drift).
    fn visit_hits(&self, base: usize, len: usize, f: &mut dyn FnMut(usize)) {
        if len == 0 {
            return;
        }
        let end = base + len;
        let first = base >> 6;
        let last = (end - 1) >> 6;
        for w in first..=last {
            let mut word = self.bits.get(w).copied().unwrap_or(0);
            if w == first {
                word &= !0u64 << (base & 63);
            }
            if w == last && end & 63 != 0 {
                word &= (1u64 << (end & 63)) - 1;
            }
            while word != 0 {
                let bit = (w << 6) + word.trailing_zeros() as usize;
                f(bit - base);
                word &= word - 1;
            }
        }
    }
}

/// Fate of the extra-pivot checks on one index: still being measured,
/// measured worth keeping, or measured useless. A pure performance
/// hint — extra pivots only skip verification of provably-out rows, so
/// switching them off never changes any result, window layout, or
/// recorded bit. Relaxed atomic; a clone restarts from the current
/// observation.
#[derive(Debug)]
struct GateHint(AtomicU8);

const HINT_SAMPLING: u8 = 0;
const HINT_KEEP: u8 = 1;
const HINT_OFF: u8 = 2;

impl Clone for GateHint {
    fn clone(&self) -> Self {
        GateHint(AtomicU8::new(self.0.load(Ordering::Relaxed)))
    }
}

/// Samples the first [`ExtraGate::SAMPLE`] extra-pivot checks of a
/// query or sweep and, when they reject less than 1 candidate in 16 —
/// concentrated data where every check is paid and almost none prune —
/// switches them off for the rest of this index's lifetime via
/// [`GateHint`]. Queries too small to finish the sample leave the hint
/// unresolved and the next large query resumes measuring.
struct ExtraGate<'a> {
    hint: &'a GateHint,
    enabled: bool,
    deciding: bool,
    checked: u32,
    rejected: u32,
}

impl<'a> ExtraGate<'a> {
    const SAMPLE: u32 = 8192;

    fn new(index: &'a PivotIndex) -> Self {
        let state = if index.n_pivots <= 1 {
            HINT_OFF
        } else {
            index.extra_hint.0.load(Ordering::Relaxed)
        };
        ExtraGate {
            hint: &index.extra_hint,
            enabled: state != HINT_OFF,
            deciding: state == HINT_SAMPLING,
            checked: 0,
            rejected: 0,
        }
    }

    /// Runs `check` (true = the candidate is provably out) unless the
    /// checks have been measured useless, in which case the candidate
    /// survives to exact verification.
    #[inline]
    fn rejects(&mut self, check: impl FnOnce() -> bool) -> bool {
        if !self.enabled {
            return false;
        }
        let rejected = check();
        if self.deciding {
            self.checked += 1;
            self.rejected += rejected as u32;
            if self.checked == Self::SAMPLE {
                self.deciding = false;
                self.enabled = self.rejected >= Self::SAMPLE / 16;
                self.hint.0.store(
                    if self.enabled { HINT_KEEP } else { HINT_OFF },
                    Ordering::Relaxed,
                );
            }
        }
        rejected
    }
}

/// An exact metric index over feature rows. All implementations return
/// result sets bit-identical to the brute-force reference kernels; see
/// the module docs for the contract.
pub trait MetricIndex: Send + Sync {
    /// Feature dimension.
    fn dim(&self) -> usize;
    /// Total row slots (active + tombstoned).
    fn len(&self) -> usize;
    /// Rows visible to queries.
    fn n_active(&self) -> usize;
    /// True when no slots exist at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Whether slot `id` is live.
    fn is_active(&self, id: u32) -> bool;
    /// Appends a row, returning its slot id (`len()` before the call).
    fn append(&mut self, row: &[f64]) -> u32;
    /// Hides slot `id` from queries. Returns `false` when already dead.
    fn tombstone(&mut self, id: u32) -> bool;
    /// Active ids within `eps` of `query` (`< eps` when `strict`, else
    /// `≤ eps`), ascending — the verdict per row is exactly
    /// [`scan_rows_within`]'s with threshold `eps²`.
    fn within_into(&self, query: &[f64], eps: f64, strict: bool, out: &mut Vec<u32>);
    /// [`MetricIndex::within_into`] with stored row `id` as the query
    /// (its own id included in the result, distance 0).
    fn within_row_into(&self, id: u32, eps: f64, strict: bool, out: &mut Vec<u32>);
    /// The `k` active rows nearest to `query` under the dot-trick
    /// squared distance, as `(value, id)` ascending by
    /// `(total_cmp, id)` — exactly the head a full
    /// `sq_dists_to_all` + partial sort would produce.
    fn nearest_into(&self, query: &[f64], k: usize, out: &mut Vec<(f64, u32)>);
    /// One symmetric sweep over all active pairs within `eps`
    /// (inclusive), adding 1 to `degrees[a]`/`degrees[b]` per close
    /// pair and recording verdicts for [`MetricIndex::replay_close_pairs`].
    /// `degrees.len()` must equal [`MetricIndex::len`].
    fn close_pairs(&self, eps: f64, degrees: &mut [u32]) -> PairSweep;
    /// Re-emits every close pair `(a, b)`, `a < b` in slot terms of the
    /// recorded stream, without recomputing any distance. The index
    /// must be unchanged since the sweep.
    fn replay_close_pairs(&self, sweep: &PairSweep, visit: &mut dyn FnMut(u32, u32));
}

/// Row placement: sorted segment position, tail position, or overflow
/// position, tagged into one word.
const TAG_SHIFT: u32 = 30;
const TAG_SEG: u32 = 0;
const TAG_TAIL: u32 = 1;
const TAG_OVER: u32 = 2;

fn pack_loc(tag: u32, idx: usize) -> u32 {
    debug_assert!(idx < (1usize << TAG_SHIFT));
    (tag << TAG_SHIFT) | idx as u32
}

/// The pivot-table index. See the module docs for structure and
/// guarantees; [`SweepIndex`] is the single-pivot reference
/// configuration of this same type.
#[derive(Debug, Clone)]
pub struct PivotIndex {
    dim: usize,
    n_active: usize,
    dead: Vec<bool>,
    loc: Vec<u32>,

    // Pivots (flat, `n_pivots * dim`) and the float slack padding the
    // pruning bound.
    pivot_rows: Vec<f64>,
    n_pivots: usize,
    slack: f64,

    // Build-time rows with fully finite geometry, sorted by
    // `(d0, id)`: original ids, sorted first-pivot distances, extra
    // pivot distances (pivot-major, `(n_pivots−1) × seg`), gathered
    // contiguous rows, gathered squared norms.
    order: Vec<u32>,
    keys: Vec<f64>,
    extra: Vec<f64>,
    perm: Vec<f64>,
    seg_sqn: Vec<f64>,

    // Appended rows with finite geometry: unsorted, pruned per query
    // via their stored pivot distances (`tail × n_pivots`).
    tail_ids: Vec<u32>,
    tail_rows: Vec<f64>,
    tail_piv: Vec<f64>,
    tail_sqn: Vec<f64>,

    // Rows the triangle bound cannot cover (non-finite coordinates,
    // norms, or pivot distances; every row when `dim == 0`): always
    // verified linearly.
    over_ids: Vec<u32>,
    over_rows: Vec<f64>,
    over_sqn: Vec<f64>,

    // Measured usefulness of the extra-pivot checks (performance hint
    // only; see [`GateHint`]).
    extra_hint: GateHint,

    // Times the tail was merged back into the sorted segment.
    resorts: u64,
}

/// Tail length below which a re-sort is never worth the copy.
const RESORT_MIN_TAIL: usize = 16;

impl PivotIndex {
    /// Builds with [`auto_pivots`] pivots.
    pub fn build(matrix: &FeatureMatrix) -> Self {
        Self::with_pivots(matrix, auto_pivots(matrix.len(), matrix.dim()))
    }

    /// Builds with exactly `pivots` pivots (clamped to
    /// `1..=MAX_PIVOTS`; fewer when the row spread runs out).
    pub fn with_pivots(matrix: &FeatureMatrix, pivots: usize) -> Self {
        BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = matrix.len();
        let dim = matrix.dim();
        assert!(n < (1usize << TAG_SHIFT), "row count exceeds index width");
        let target = pivots.clamp(1, MAX_PIVOTS);

        let mut index = PivotIndex {
            dim,
            n_active: n,
            dead: vec![false; n],
            loc: vec![0; n],
            pivot_rows: Vec::new(),
            n_pivots: 0,
            slack: 1e-9,
            order: Vec::new(),
            keys: Vec::new(),
            extra: Vec::new(),
            perm: Vec::new(),
            seg_sqn: Vec::new(),
            tail_ids: Vec::new(),
            tail_rows: Vec::new(),
            tail_piv: Vec::new(),
            tail_sqn: Vec::new(),
            extra_hint: GateHint(AtomicU8::new(HINT_SAMPLING)),
            over_ids: Vec::new(),
            over_rows: Vec::new(),
            over_sqn: Vec::new(),
            resorts: 0,
        };

        // Rows whose own geometry is finite are candidates for the
        // sorted segment; the rest go to overflow outright. `dim == 0`
        // rows carry no geometry to pivot on at all.
        let finite: Vec<bool> = (0..n)
            .map(|i| {
                dim > 0
                    && matrix.sq_norm(i).is_finite()
                    && matrix.row(i).iter().all(|v| v.is_finite())
            })
            .collect();

        // Pivot 0 mirrors the pre-index sweep: the row farthest from
        // the first (finite) row, first maximum winning. Extra pivots
        // by farthest-point traversal — maximize the minimum distance
        // to the pivots already chosen — stopping early once the
        // spread hits zero (all remaining rows coincide with a pivot).
        let mut pivot_ids: Vec<usize> = Vec::new();
        if let Some(base) = (0..n).find(|&i| finite[i]) {
            let base_d = par_map(n, 256, |j| matrix.sq_dist_rows(base, j));
            let mut p0 = base;
            let mut far = f64::NEG_INFINITY;
            for (j, &d) in base_d.iter().enumerate() {
                if finite[j] && d.is_finite() && d > far {
                    far = d;
                    p0 = j;
                }
            }
            pivot_ids.push(p0);
            let mut min_d: Vec<f64> = vec![f64::INFINITY; n];
            while pivot_ids.len() < target {
                let p = *pivot_ids.last().expect("at least one pivot");
                let pd = par_map(n, 256, |j| matrix.sq_dist_rows(p, j).sqrt());
                let mut next = None;
                let mut spread = 0.0f64;
                for j in 0..n {
                    if !finite[j] {
                        continue;
                    }
                    if pd[j] < min_d[j] {
                        min_d[j] = pd[j];
                    }
                    if min_d[j].is_finite() && min_d[j] > spread {
                        spread = min_d[j];
                        next = Some(j);
                    }
                }
                match next {
                    Some(j) if spread > 0.0 => pivot_ids.push(j),
                    _ => break,
                }
            }
        }
        index.n_pivots = pivot_ids.len();
        for &p in &pivot_ids {
            index.pivot_rows.extend_from_slice(matrix.row(p));
        }

        if pivot_ids.is_empty() {
            for i in 0..n {
                index.loc[i] = pack_loc(TAG_OVER, index.over_ids.len());
                index.over_ids.push(i as u32);
                index.over_rows.extend_from_slice(matrix.row(i));
                index.over_sqn.push(matrix.sq_norm(i));
            }
            return index;
        }

        // Per-row pivot distances (dot trick over cached norms, like
        // the sweep this replaces). A finite row whose distance to any
        // pivot overflows still cannot be windowed soundly — overflow.
        let pivot_d: Vec<Vec<f64>> = pivot_ids
            .iter()
            .map(|&p| par_map(n, 256, |j| matrix.sq_dist_rows(p, j).sqrt()))
            .collect();
        let indexable: Vec<bool> = (0..n)
            .map(|j| finite[j] && pivot_d.iter().all(|pd| pd[j].is_finite()))
            .collect();

        let mut order: Vec<u32> = (0..n as u32).filter(|&j| indexable[j as usize]).collect();
        order.sort_unstable_by(|&a, &b| {
            pivot_d[0][a as usize]
                .total_cmp(&pivot_d[0][b as usize])
                .then(a.cmp(&b))
        });
        let seg = order.len();
        index.keys = order.iter().map(|&j| pivot_d[0][j as usize]).collect();
        index.extra = Vec::with_capacity(seg * (index.n_pivots - 1));
        for pd in pivot_d.iter().skip(1) {
            index.extra.extend(order.iter().map(|&j| pd[j as usize]));
        }
        index.perm = Vec::with_capacity(seg * dim);
        for &j in &order {
            index.perm.extend_from_slice(matrix.row(j as usize));
        }
        index.seg_sqn = order.iter().map(|&j| matrix.sq_norm(j as usize)).collect();
        for (pos, &j) in order.iter().enumerate() {
            index.loc[j as usize] = pack_loc(TAG_SEG, pos);
        }
        index.order = order;
        index.slack = 1e-9 + 1e-12 * index.keys.last().copied().unwrap_or(0.0);

        for (j, _) in indexable.iter().enumerate().filter(|&(_, &ok)| !ok) {
            index.loc[j] = pack_loc(TAG_OVER, index.over_ids.len());
            index.over_ids.push(j as u32);
            index.over_rows.extend_from_slice(matrix.row(j));
            index.over_sqn.push(matrix.sq_norm(j));
        }
        index
    }

    /// Pivots actually in use (may fall short of the requested count on
    /// degenerate inputs).
    pub fn n_pivots(&self) -> usize {
        self.n_pivots
    }

    /// Times the unsorted tail has been merged back into the sorted
    /// segment (see [`PivotIndex::resort_tail`]).
    pub fn resorts(&self) -> u64 {
        self.resorts
    }

    /// Current unsorted-tail length (0 right after a re-sort).
    pub fn tail_len(&self) -> usize {
        self.tail_ids.len()
    }

    /// Merges the unsorted tail into the sorted segment, restoring the
    /// pivot-0 window over every appended row. The tail has no key
    /// window — each query pays one pruning check per tail row — so
    /// sustained append churn degrades pruning toward a linear scan of
    /// the churned rows; the merge re-sorts everything by `(d₀, id)`
    /// and rebuilds the gathered layouts. Dead rows are kept (their
    /// `loc` entries stay valid and queries skip them via `dead`), and
    /// all stored geometry is reused verbatim, so query results are
    /// unchanged — this is purely a layout move. O(total) copies plus
    /// the sort; amortized against the churn that triggered it.
    fn resort_tail(&mut self) {
        let seg = self.order.len();
        let tail = self.tail_ids.len();
        let total = seg + tail;
        // (key, id, tail?, source position) for every indexed row.
        let mut merged: Vec<(f64, u32, bool, usize)> = Vec::with_capacity(total);
        for pos in 0..seg {
            merged.push((self.keys[pos], self.order[pos], false, pos));
        }
        for ti in 0..tail {
            merged.push((
                self.tail_piv[ti * self.n_pivots],
                self.tail_ids[ti],
                true,
                ti,
            ));
        }
        merged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut order = Vec::with_capacity(total);
        let mut keys = Vec::with_capacity(total);
        let mut extra = vec![0.0f64; total * (self.n_pivots - 1)];
        let mut perm = Vec::with_capacity(total * self.dim);
        let mut seg_sqn = Vec::with_capacity(total);
        for (new_pos, &(key, id, from_tail, src)) in merged.iter().enumerate() {
            order.push(id);
            keys.push(key);
            for p in 1..self.n_pivots {
                extra[(p - 1) * total + new_pos] = if from_tail {
                    self.tail_piv[src * self.n_pivots + p]
                } else {
                    self.extra[(p - 1) * seg + src]
                };
            }
            perm.extend_from_slice(if from_tail {
                self.tail_row(src)
            } else {
                self.seg_row(src)
            });
            seg_sqn.push(if from_tail {
                self.tail_sqn[src]
            } else {
                self.seg_sqn[src]
            });
            self.loc[id as usize] = pack_loc(TAG_SEG, new_pos);
        }
        self.order = order;
        self.keys = keys;
        self.extra = extra;
        self.perm = perm;
        self.seg_sqn = seg_sqn;
        self.tail_ids.clear();
        self.tail_rows.clear();
        self.tail_piv.clear();
        self.tail_sqn.clear();
        // The merged keys never exceed what append already scaled the
        // slack to, but keep the invariant explicit.
        self.slack = self
            .slack
            .max(1e-9 + 1e-12 * self.keys.last().copied().unwrap_or(0.0));
        self.resorts += 1;
    }

    fn pivot_row(&self, p: usize) -> &[f64] {
        &self.pivot_rows[p * self.dim..(p + 1) * self.dim]
    }

    fn seg_row(&self, pos: usize) -> &[f64] {
        &self.perm[pos * self.dim..(pos + 1) * self.dim]
    }

    fn tail_row(&self, ti: usize) -> &[f64] {
        &self.tail_rows[ti * self.dim..(ti + 1) * self.dim]
    }

    fn over_row(&self, oi: usize) -> &[f64] {
        &self.over_rows[oi * self.dim..(oi + 1) * self.dim]
    }

    /// Extra-pivot distance of sorted position `pos` to pivot `p ≥ 1`.
    fn extra_d(&self, p: usize, pos: usize) -> f64 {
        self.extra[(p - 1) * self.order.len() + pos]
    }

    /// Query-side pivot distances (subtraction form, the established
    /// query-side convention of the coverage sweep).
    fn query_pivot_dists(&self, query: &[f64]) -> [f64; MAX_PIVOTS] {
        let mut qd = [0.0f64; MAX_PIVOTS];
        for (p, d) in qd.iter_mut().enumerate().take(self.n_pivots) {
            *d = sq_euclidean_distance(self.pivot_row(p), query).sqrt();
        }
        qd
    }

    /// True when any pivot proves `row` is farther than `pad` from the
    /// query (NaN comparisons are false, so uncertain rows survive to
    /// verification).
    fn tail_pruned(&self, qd: &[f64; MAX_PIVOTS], ti: usize, pad: f64) -> bool {
        let pd = &self.tail_piv[ti * self.n_pivots..(ti + 1) * self.n_pivots];
        (0..self.n_pivots).any(|p| (qd[p] - pd[p]).abs() > pad)
    }

    fn seg_pruned(&self, qd: &[f64; MAX_PIVOTS], pos: usize, pad: f64) -> bool {
        (1..self.n_pivots).any(|p| (qd[p] - self.extra_d(p, pos)).abs() > pad)
    }

    /// The shared radius-query core: verified hits pushed as original
    /// ids (unsorted), with the caller's pivot distances. Returns the
    /// number of rows fully evaluated.
    fn within_core(
        &self,
        query: &[f64],
        qd: &[f64; MAX_PIVOTS],
        eps: f64,
        strict: bool,
        out: &mut Vec<u32>,
    ) -> usize {
        let t_sq = eps * eps;
        let mut verified = 0usize;
        if self.dim == 0 {
            // All rows are empty vectors at distance 0.
            if (strict && 0.0 < t_sq) || (!strict && 0.0 <= t_sq) {
                out.extend((0..self.dead.len() as u32).filter(|&i| !self.dead[i as usize]));
            }
            return self.n_active;
        }
        let pad = eps + self.slack;
        let lo = self.keys.partition_point(|&v| v < qd[0] - pad);
        let hi = self.keys.partition_point(|&v| v <= qd[0] + pad);
        // Verify maximal runs of surviving candidates with one streaming
        // kernel call per run (the rows are contiguous in gathered
        // order): on low-contrast data the window barely prunes and the
        // run is the whole window, so per-row call overhead never
        // dominates the arithmetic. Verdicts per row are unchanged —
        // the kernel evaluates each row independently. Extra-pivot
        // checks run through the adaptive gate (off when measured
        // useless; the pivot-0 window above always applies).
        let mut gate = ExtraGate::new(self);
        let mut pos = lo;
        while pos < hi {
            if self.dead[self.order[pos] as usize] || gate.rejects(|| self.seg_pruned(qd, pos, pad))
            {
                pos += 1;
                continue;
            }
            let mut end = pos + 1;
            while end < hi
                && !self.dead[self.order[end] as usize]
                && !gate.rejects(|| self.seg_pruned(qd, end, pad))
            {
                end += 1;
            }
            verified += end - pos;
            let run = &self.perm[pos * self.dim..end * self.dim];
            if strict {
                scan_rows_within::<true>(self.dim, query, run, t_sq, |k| {
                    out.push(self.order[pos + k]);
                });
            } else {
                scan_rows_within::<false>(self.dim, query, run, t_sq, |k| {
                    out.push(self.order[pos + k]);
                });
            }
            pos = end;
        }
        // Tails carry no sorted window, so their pivot-0 bound is part
        // of the per-row check (ungated); only the extras go through
        // the gate.
        let tail_out = |gate: &mut ExtraGate, ti: usize| {
            let pd = &self.tail_piv[ti * self.n_pivots..(ti + 1) * self.n_pivots];
            (qd[0] - pd[0]).abs() > pad
                || gate.rejects(|| (1..self.n_pivots).any(|p| (qd[p] - pd[p]).abs() > pad))
        };
        let mut ti = 0usize;
        let n_tail = self.tail_ids.len();
        while ti < n_tail {
            if self.dead[self.tail_ids[ti] as usize] || tail_out(&mut gate, ti) {
                ti += 1;
                continue;
            }
            let mut end = ti + 1;
            while end < n_tail
                && !self.dead[self.tail_ids[end] as usize]
                && !tail_out(&mut gate, end)
            {
                end += 1;
            }
            verified += end - ti;
            let run = &self.tail_rows[ti * self.dim..end * self.dim];
            if strict {
                scan_rows_within::<true>(self.dim, query, run, t_sq, |k| {
                    out.push(self.tail_ids[ti + k]);
                });
            } else {
                scan_rows_within::<false>(self.dim, query, run, t_sq, |k| {
                    out.push(self.tail_ids[ti + k]);
                });
            }
            ti = end;
        }
        for (oi, &id) in self.over_ids.iter().enumerate() {
            if self.dead[id as usize] {
                continue;
            }
            verified += 1;
            if row_within(self.dim, query, self.over_row(oi), t_sq, strict) {
                out.push(id);
            }
        }
        verified
    }
}

/// One row's radius verdict via the reference kernel ([`scan_rows_within`]
/// dispatches per dimension, so this is bit-identical to the full scan).
fn row_within(dim: usize, query: &[f64], row: &[f64], t_sq: f64, strict: bool) -> bool {
    let mut hit = false;
    if strict {
        scan_rows_within::<true>(dim, query, row, t_sq, |_| hit = true);
    } else {
        scan_rows_within::<false>(dim, query, row, t_sq, |_| hit = true);
    }
    hit
}

/// Sorted-bounded insert for the nearest heap: ascending
/// `(total_cmp value, id)`, truncated to `k`.
fn heap_push(heap: &mut Vec<(f64, u32)>, k: usize, item: (f64, u32)) {
    let at = heap.partition_point(|&(v, id)| {
        v.total_cmp(&item.0).then(id.cmp(&item.1)) == std::cmp::Ordering::Less
    });
    if at < k {
        if heap.len() == k {
            heap.pop();
        }
        heap.insert(at, item);
    }
}

impl MetricIndex for PivotIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.dead.len()
    }

    fn n_active(&self) -> usize {
        self.n_active
    }

    fn is_active(&self, id: u32) -> bool {
        !self.dead[id as usize]
    }

    fn append(&mut self, row: &[f64]) -> u32 {
        assert_eq!(row.len(), self.dim, "appended row dimension mismatch");
        let id = u32::try_from(self.dead.len()).expect("slot count exceeds index width");
        assert!(
            (id as usize) < (1usize << TAG_SHIFT),
            "row count exceeds index width"
        );
        self.dead.push(false);
        self.n_active += 1;
        let sqn = dot(row, row);
        let mut piv = [0.0f64; MAX_PIVOTS];
        let mut ok = self.dim > 0
            && self.n_pivots > 0
            && sqn.is_finite()
            && row.iter().all(|v| v.is_finite());
        if ok {
            for (p, d) in piv.iter_mut().enumerate().take(self.n_pivots) {
                *d = sq_euclidean_distance(self.pivot_row(p), row).sqrt();
                ok &= d.is_finite();
            }
        }
        if ok {
            self.loc.push(pack_loc(TAG_TAIL, self.tail_ids.len()));
            self.tail_ids.push(id);
            self.tail_rows.extend_from_slice(row);
            self.tail_piv.extend_from_slice(&piv[..self.n_pivots]);
            self.tail_sqn.push(sqn);
            // Appends can sit beyond the build-time key range; keep the
            // slack scaled to the largest distance the bound compares.
            self.slack = self.slack.max(1e-9 + 1e-12 * piv[0]);
            // Once the tail outgrows a quarter of the sorted segment the
            // per-query tail scan rivals the windowed one: fold it in.
            if self.tail_ids.len() >= RESORT_MIN_TAIL && self.tail_ids.len() * 4 >= self.order.len()
            {
                self.resort_tail();
            }
        } else {
            self.loc.push(pack_loc(TAG_OVER, self.over_ids.len()));
            self.over_ids.push(id);
            self.over_rows.extend_from_slice(row);
            self.over_sqn.push(sqn);
        }
        id
    }

    fn tombstone(&mut self, id: u32) -> bool {
        if self.dead[id as usize] {
            return false;
        }
        self.dead[id as usize] = true;
        self.n_active -= 1;
        true
    }

    fn within_into(&self, query: &[f64], eps: f64, strict: bool, out: &mut Vec<u32>) {
        let start = Instant::now();
        out.clear();
        if self.dim > 0 {
            assert_eq!(query.len(), self.dim, "query dimension mismatch");
        }
        let qd = self.query_pivot_dists(query);
        let verified = self.within_core(query, &qd, eps, strict, out);
        out.sort_unstable();
        note_query(self.n_active, verified, start);
    }

    fn within_row_into(&self, id: u32, eps: f64, strict: bool, out: &mut Vec<u32>) {
        let start = Instant::now();
        out.clear();
        let loc = self.loc[id as usize];
        let (tag, idx) = (loc >> TAG_SHIFT, (loc & ((1 << TAG_SHIFT) - 1)) as usize);
        let verified = match tag {
            // Stored pivot distances stand in for the query-side ones
            // (both sides of the bound then share one arithmetic).
            TAG_SEG => {
                let mut qd = [0.0f64; MAX_PIVOTS];
                qd[0] = self.keys[idx];
                for (p, d) in qd.iter_mut().enumerate().take(self.n_pivots).skip(1) {
                    *d = self.extra_d(p, idx);
                }
                self.within_core(self.seg_row(idx), &qd, eps, strict, out)
            }
            TAG_TAIL => {
                let mut qd = [0.0f64; MAX_PIVOTS];
                qd[..self.n_pivots].copy_from_slice(
                    &self.tail_piv[idx * self.n_pivots..(idx + 1) * self.n_pivots],
                );
                self.within_core(self.tail_row(idx), &qd, eps, strict, out)
            }
            _ => {
                // Overflow query row: no usable pivot geometry — verify
                // against every active row (degenerate but correct).
                let query = self.over_row(idx);
                let t_sq = eps * eps;
                let mut verified = 0usize;
                if self.dim == 0 {
                    if (strict && 0.0 < t_sq) || (!strict && 0.0 <= t_sq) {
                        out.extend((0..self.dead.len() as u32).filter(|&i| !self.dead[i as usize]));
                    }
                    verified = self.n_active;
                } else {
                    for (pos, &cid) in self.order.iter().enumerate() {
                        if !self.dead[cid as usize] {
                            verified += 1;
                            if row_within(self.dim, query, self.seg_row(pos), t_sq, strict) {
                                out.push(cid);
                            }
                        }
                    }
                    for (ti, &cid) in self.tail_ids.iter().enumerate() {
                        if !self.dead[cid as usize] {
                            verified += 1;
                            if row_within(self.dim, query, self.tail_row(ti), t_sq, strict) {
                                out.push(cid);
                            }
                        }
                    }
                    for (oi, &cid) in self.over_ids.iter().enumerate() {
                        if !self.dead[cid as usize] {
                            verified += 1;
                            if row_within(self.dim, query, self.over_row(oi), t_sq, strict) {
                                out.push(cid);
                            }
                        }
                    }
                }
                verified
            }
        };
        out.sort_unstable();
        note_query(self.n_active, verified, start);
    }

    fn nearest_into(&self, query: &[f64], k: usize, out: &mut Vec<(f64, u32)>) {
        let start = Instant::now();
        out.clear();
        if k == 0 || self.n_active == 0 {
            return;
        }
        if self.dim > 0 {
            assert_eq!(query.len(), self.dim, "query dimension mismatch");
        }
        let x_sq = dot(query, query);
        let value = |row: &[f64], sqn: f64| (x_sq + sqn - 2.0 * dot(query, row)).max(0.0);
        let mut verified = 0usize;

        // Overflow rows carry no usable bound — and a non-finite row's
        // dot-trick value can legitimately be small (`.max(0.0)` maps
        // NaN to 0), so they are always evaluated exactly, first.
        for (oi, &id) in self.over_ids.iter().enumerate() {
            if !self.dead[id as usize] {
                verified += 1;
                heap_push(out, k, (value(self.over_row(oi), self.over_sqn[oi]), id));
            }
        }

        if self.dim > 0 && !self.order.is_empty() {
            let qd = self.query_pivot_dists(query);
            // A query with non-finite pivot distances (NaN/inf
            // coordinates) has no usable bound in either direction:
            // evaluate the whole segment and tail exactly instead of
            // expanding windows around a garbage key.
            if !qd[..self.n_pivots].iter().all(|v| v.is_finite()) {
                for (pos, &id) in self.order.iter().enumerate() {
                    if !self.dead[id as usize] {
                        verified += 1;
                        heap_push(out, k, (value(self.seg_row(pos), self.seg_sqn[pos]), id));
                    }
                }
                for (ti, &id) in self.tail_ids.iter().enumerate() {
                    if !self.dead[id as usize] {
                        verified += 1;
                        heap_push(out, k, (value(self.tail_row(ti), self.tail_sqn[ti]), id));
                    }
                }
                note_query(self.n_active, verified, start);
                return;
            }
            // Current pruning radius: the kth-best distance once the
            // heap is full, else unbounded.
            let tau = |heap: &Vec<(f64, u32)>| {
                if heap.len() == k {
                    heap[k - 1].0.sqrt() + self.slack
                } else {
                    f64::INFINITY
                }
            };
            let seg = self.order.len();
            let split = self.keys.partition_point(|&v| v < qd[0]);
            let (mut l, mut r) = (split, split);
            let mut t = tau(out);
            // Expand outward from the query's key position; a side
            // stops once its window gap alone proves every remaining
            // row on it is beyond the kth-best distance.
            loop {
                let lg = if l > 0 {
                    qd[0] - self.keys[l - 1]
                } else {
                    f64::INFINITY
                };
                let rg = if r < seg {
                    self.keys[r] - qd[0]
                } else {
                    f64::INFINITY
                };
                let (pos, gap) = if lg <= rg {
                    if l == 0 {
                        break;
                    }
                    l -= 1;
                    (l, lg)
                } else {
                    if r >= seg {
                        // Left side is strictly nearer yet infinite:
                        // both exhausted.
                        if lg == f64::INFINITY {
                            break;
                        }
                        l -= 1;
                        (l, lg)
                    } else {
                        let pos = r;
                        r += 1;
                        (pos, rg)
                    }
                };
                if gap > t {
                    // Everything farther out on both sides is at least
                    // this far from the pivot key; the two-pointer scan
                    // always takes the smaller gap next, so stop.
                    break;
                }
                let id = self.order[pos];
                if self.dead[id as usize] || self.seg_pruned(&qd, pos, t) {
                    continue;
                }
                verified += 1;
                heap_push(out, k, (value(self.seg_row(pos), self.seg_sqn[pos]), id));
                t = tau(out);
            }
            let t = tau(out);
            for (ti, &id) in self.tail_ids.iter().enumerate() {
                if self.dead[id as usize] || self.tail_pruned(&qd, ti, t) {
                    continue;
                }
                verified += 1;
                heap_push(out, k, (value(self.tail_row(ti), self.tail_sqn[ti]), id));
            }
        } else {
            // No indexed segment (dim 0 routes every row to overflow,
            // handled above): evaluate any tail rows linearly too.
            for (ti, &id) in self.tail_ids.iter().enumerate() {
                if !self.dead[id as usize] {
                    verified += 1;
                    heap_push(out, k, (value(self.tail_row(ti), self.tail_sqn[ti]), id));
                }
            }
        }
        note_query(self.n_active, verified, start);
    }

    fn close_pairs(&self, eps: f64, degrees: &mut [u32]) -> PairSweep {
        let start = Instant::now();
        assert_eq!(degrees.len(), self.dead.len(), "degree buffer mismatch");
        let mut sweep = PairSweep { eps, bits: Vec::new(), n_bits: 0, pairs: 0 };
        let verified = self.sweep_record(eps, &mut sweep, &mut |a, b| {
            degrees[a as usize] += 1;
            degrees[b as usize] += 1;
        });
        let n = self.n_active as u64;
        let potential = n * n.saturating_sub(1) / 2;
        QUERIES.fetch_add(1, Ordering::Relaxed);
        CANDIDATES.fetch_add(potential, Ordering::Relaxed);
        PRUNED.fetch_add(potential.saturating_sub(verified as u64), Ordering::Relaxed);
        QUERY_NS.fetch_add(elapsed_ns(start), Ordering::Relaxed);
        sweep
    }

    fn replay_close_pairs(&self, sweep: &PairSweep, visit: &mut dyn FnMut(u32, u32)) {
        let cursor = self.sweep_replay(sweep, visit);
        assert_eq!(
            cursor, sweep.n_bits,
            "index changed since the sweep was recorded"
        );
    }
}

impl PivotIndex {
    /// Records one symmetric sweep into `sweep`: per live left-hand
    /// row, one bit window per candidate section (see
    /// [`PivotIndex::sweep_replay`] for the exact layout), hits
    /// verified by the reference kernel in one streaming call per
    /// maximal run of surviving candidates. Pruning — window bounds
    /// aside — only decides *which* candidates are verified, never
    /// which bits exist, so the adaptive [`ExtraGate`] can switch the
    /// extra-pivot checks off mid-sweep without affecting the stream.
    /// Calls `on_hit(min_id, max_id)` per close pair; returns the
    /// number of rows fully verified.
    fn sweep_record<F: FnMut(u32, u32)>(
        &self,
        eps: f64,
        sweep: &mut PairSweep,
        on_hit: &mut F,
    ) -> usize {
        let t_sq = eps * eps;
        let mut verified = 0usize;
        if self.dim == 0 {
            // Every pair of empty rows sits at distance 0.
            let n = self.dead.len();
            let hit0 = 0.0 <= t_sq;
            for a in 0..n {
                if self.dead[a] {
                    continue;
                }
                let base = sweep.open_window(n - a - 1);
                for b in a + 1..n {
                    if self.dead[b] {
                        continue;
                    }
                    verified += 1;
                    if hit0 {
                        sweep.set_hit(base + (b - a - 1));
                        on_hit(a as u32, b as u32);
                    }
                }
            }
            return verified;
        }
        let pad = eps + self.slack;
        let seg = self.order.len();
        let mut gate = ExtraGate::new(self);

        // Segment × segment: ascending key order, window bounded above
        // (symmetry covers the lower half). Surviving candidates verify
        // in maximal runs — one streaming kernel call per run over the
        // gathered contiguous rows — so when pruning barely fires the
        // sweep keeps the full streaming arithmetic of the pre-index
        // window scan.
        for a_pos in 0..seg {
            let a_id = self.order[a_pos];
            if self.dead[a_id as usize] {
                continue;
            }
            let hi = self.keys[a_pos + 1..].partition_point(|&v| v <= self.keys[a_pos] + pad)
                + a_pos
                + 1;
            let base = sweep.open_window(hi - a_pos - 1);
            let a_row = self.seg_row(a_pos);
            let mut pos = a_pos + 1;
            while pos < hi {
                if self.dead[self.order[pos] as usize]
                    || gate.rejects(|| {
                        (1..self.n_pivots)
                            .any(|p| (self.extra_d(p, a_pos) - self.extra_d(p, pos)).abs() > pad)
                    })
                {
                    pos += 1;
                    continue;
                }
                let mut end = pos + 1;
                while end < hi
                    && !self.dead[self.order[end] as usize]
                    && !gate.rejects(|| {
                        (1..self.n_pivots)
                            .any(|p| (self.extra_d(p, a_pos) - self.extra_d(p, end)).abs() > pad)
                    })
                {
                    end += 1;
                }
                verified += end - pos;
                let run = &self.perm[pos * self.dim..end * self.dim];
                scan_rows_within::<false>(self.dim, a_row, run, t_sq, |k| {
                    let b_id = self.order[pos + k];
                    sweep.set_hit(base + (pos + k - a_pos - 1));
                    on_hit(a_id.min(b_id), a_id.max(b_id));
                });
                pos = end;
            }
        }

        // Tail × segment and tail × earlier tail, pruned via stored
        // pivot distances.
        for (ti, &t_id) in self.tail_ids.iter().enumerate() {
            if self.dead[t_id as usize] {
                continue;
            }
            let td = &self.tail_piv[ti * self.n_pivots..(ti + 1) * self.n_pivots];
            let lo = self.keys.partition_point(|&v| v < td[0] - pad);
            let hi = self.keys.partition_point(|&v| v <= td[0] + pad);
            let base = sweep.open_window(hi - lo);
            let t_row = self.tail_row(ti);
            let mut pos = lo;
            while pos < hi {
                if self.dead[self.order[pos] as usize]
                    || gate.rejects(|| {
                        (1..self.n_pivots).any(|p| (td[p] - self.extra_d(p, pos)).abs() > pad)
                    })
                {
                    pos += 1;
                    continue;
                }
                let mut end = pos + 1;
                while end < hi
                    && !self.dead[self.order[end] as usize]
                    && !gate.rejects(|| {
                        (1..self.n_pivots).any(|p| (td[p] - self.extra_d(p, end)).abs() > pad)
                    })
                {
                    end += 1;
                }
                verified += end - pos;
                let run = &self.perm[pos * self.dim..end * self.dim];
                scan_rows_within::<false>(self.dim, t_row, run, t_sq, |k| {
                    let s_id = self.order[pos + k];
                    sweep.set_hit(base + (pos + k - lo));
                    on_hit(s_id.min(t_id), s_id.max(t_id));
                });
                pos = end;
            }
            // Earlier tails carry no sorted window; the pivot-0 bound
            // is part of the per-pair check (ungated).
            let base = sweep.open_window(ti);
            for tj in 0..ti {
                let u_id = self.tail_ids[tj];
                if self.dead[u_id as usize] {
                    continue;
                }
                let ud = &self.tail_piv[tj * self.n_pivots..(tj + 1) * self.n_pivots];
                if (td[0] - ud[0]).abs() > pad
                    || gate.rejects(|| (1..self.n_pivots).any(|p| (td[p] - ud[p]).abs() > pad))
                {
                    continue;
                }
                verified += 1;
                if row_within(self.dim, t_row, self.tail_row(tj), t_sq, false) {
                    sweep.set_hit(base + tj);
                    on_hit(u_id.min(t_id), u_id.max(t_id));
                }
            }
        }

        // Overflow × everything: no bound available, verify linearly;
        // one window per section keeps the replay offset maps O(1).
        for (oi, &o_id) in self.over_ids.iter().enumerate() {
            if self.dead[o_id as usize] {
                continue;
            }
            let o_row = self.over_row(oi);
            let base = sweep.open_window(seg);
            for (pos, &s_id) in self.order.iter().enumerate() {
                if self.dead[s_id as usize] {
                    continue;
                }
                verified += 1;
                if row_within(self.dim, o_row, self.seg_row(pos), t_sq, false) {
                    sweep.set_hit(base + pos);
                    on_hit(s_id.min(o_id), s_id.max(o_id));
                }
            }
            let base = sweep.open_window(self.tail_ids.len());
            for (ti, &t_id) in self.tail_ids.iter().enumerate() {
                if self.dead[t_id as usize] {
                    continue;
                }
                verified += 1;
                if row_within(self.dim, o_row, self.tail_row(ti), t_sq, false) {
                    sweep.set_hit(base + ti);
                    on_hit(t_id.min(o_id), t_id.max(o_id));
                }
            }
            let base = sweep.open_window(oi);
            for oj in 0..oi {
                let u_id = self.over_ids[oj];
                if self.dead[u_id as usize] {
                    continue;
                }
                verified += 1;
                if row_within(self.dim, o_row, self.over_row(oj), t_sq, false) {
                    sweep.set_hit(base + oj);
                    on_hit(u_id.min(o_id), u_id.max(o_id));
                }
            }
        }
        verified
    }

    /// Re-derives [`PivotIndex::sweep_record`]'s window layout — per
    /// live left-hand row: its key window (segment rows), then for
    /// tails the segment window plus one bit per earlier tail, then
    /// for overflow rows one bit per segment position, per tail, and
    /// per earlier overflow (for `dim == 0`, one bit per later slot) —
    /// and emits the recorded set bits through `visit`. No distance or
    /// pruning work. Returns the total bits walked, which the caller
    /// checks against the recording.
    fn sweep_replay(&self, sweep: &PairSweep, visit: &mut dyn FnMut(u32, u32)) -> usize {
        let mut cursor = 0usize;
        if self.dim == 0 {
            let n = self.dead.len();
            for a in 0..n {
                if self.dead[a] {
                    continue;
                }
                let len = n - a - 1;
                sweep.visit_hits(cursor, len, &mut |off| {
                    visit(a as u32, (a + 1 + off) as u32);
                });
                cursor += len;
            }
            return cursor;
        }
        let pad = sweep.eps + self.slack;
        let seg = self.order.len();
        for a_pos in 0..seg {
            let a_id = self.order[a_pos];
            if self.dead[a_id as usize] {
                continue;
            }
            let hi = self.keys[a_pos + 1..].partition_point(|&v| v <= self.keys[a_pos] + pad)
                + a_pos
                + 1;
            let len = hi - a_pos - 1;
            sweep.visit_hits(cursor, len, &mut |off| {
                let b_id = self.order[a_pos + 1 + off];
                visit(a_id.min(b_id), a_id.max(b_id));
            });
            cursor += len;
        }
        for (ti, &t_id) in self.tail_ids.iter().enumerate() {
            if self.dead[t_id as usize] {
                continue;
            }
            let td0 = self.tail_piv[ti * self.n_pivots];
            let lo = self.keys.partition_point(|&v| v < td0 - pad);
            let hi = self.keys.partition_point(|&v| v <= td0 + pad);
            sweep.visit_hits(cursor, hi - lo, &mut |off| {
                let s_id = self.order[lo + off];
                visit(s_id.min(t_id), s_id.max(t_id));
            });
            cursor += hi - lo;
            sweep.visit_hits(cursor, ti, &mut |off| {
                let u_id = self.tail_ids[off];
                visit(u_id.min(t_id), u_id.max(t_id));
            });
            cursor += ti;
        }
        for (oi, &o_id) in self.over_ids.iter().enumerate() {
            if self.dead[o_id as usize] {
                continue;
            }
            sweep.visit_hits(cursor, seg, &mut |off| {
                let s_id = self.order[off];
                visit(s_id.min(o_id), s_id.max(o_id));
            });
            cursor += seg;
            let n_tail = self.tail_ids.len();
            sweep.visit_hits(cursor, n_tail, &mut |off| {
                let t_id = self.tail_ids[off];
                visit(t_id.min(o_id), t_id.max(o_id));
            });
            cursor += n_tail;
            sweep.visit_hits(cursor, oi, &mut |off| {
                let u_id = self.over_ids[off];
                visit(u_id.min(o_id), u_id.max(o_id));
            });
            cursor += oi;
        }
        cursor
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn note_query(potential: usize, verified: usize, start: Instant) {
    QUERIES.fetch_add(1, Ordering::Relaxed);
    CANDIDATES.fetch_add(potential as u64, Ordering::Relaxed);
    PRUNED.fetch_add(potential.saturating_sub(verified) as u64, Ordering::Relaxed);
    QUERY_NS.fetch_add(elapsed_ns(start), Ordering::Relaxed);
}

/// The single-pivot reference configuration — semantically the
/// pivot-window sweep the planner used before multi-pivot pruning
/// existed. Parity and property tests compare [`PivotIndex`] against
/// this (and both against brute force).
#[derive(Debug, Clone)]
pub struct SweepIndex(PivotIndex);

impl SweepIndex {
    /// Builds the one-pivot window over `matrix`.
    pub fn build(matrix: &FeatureMatrix) -> Self {
        SweepIndex(PivotIndex::with_pivots(matrix, 1))
    }
}

impl MetricIndex for SweepIndex {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn n_active(&self) -> usize {
        self.0.n_active()
    }
    fn is_active(&self, id: u32) -> bool {
        self.0.is_active(id)
    }
    fn append(&mut self, row: &[f64]) -> u32 {
        self.0.append(row)
    }
    fn tombstone(&mut self, id: u32) -> bool {
        self.0.tombstone(id)
    }
    fn within_into(&self, query: &[f64], eps: f64, strict: bool, out: &mut Vec<u32>) {
        self.0.within_into(query, eps, strict, out);
    }
    fn within_row_into(&self, id: u32, eps: f64, strict: bool, out: &mut Vec<u32>) {
        self.0.within_row_into(id, eps, strict, out);
    }
    fn nearest_into(&self, query: &[f64], k: usize, out: &mut Vec<(f64, u32)>) {
        self.0.nearest_into(query, k, out);
    }
    fn close_pairs(&self, eps: f64, degrees: &mut [u32]) -> PairSweep {
        self.0.close_pairs(eps, degrees)
    }
    fn replay_close_pairs(&self, sweep: &PairSweep, visit: &mut dyn FnMut(u32, u32)) {
        self.0.replay_close_pairs(sweep, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic scattered fixture (xorshift, the cluster crate's
    /// test idiom).
    fn scattered(n: usize, dim: usize, seed: u64) -> FeatureMatrix {
        let mut s = seed.max(1);
        let mut step = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| step() * 4.0 - 2.0).collect())
            .collect();
        FeatureMatrix::from_rows(rows)
    }

    fn brute_within(m: &FeatureMatrix, query: &[f64], eps: f64, strict: bool) -> Vec<u32> {
        let mut out = Vec::new();
        if strict {
            scan_rows_within::<true>(m.dim(), query, m.flat(), eps * eps, |i| out.push(i as u32));
        } else {
            scan_rows_within::<false>(m.dim(), query, m.flat(), eps * eps, |i| out.push(i as u32));
        }
        out
    }

    fn brute_nearest(m: &FeatureMatrix, query: &[f64], k: usize) -> Vec<(f64, u32)> {
        let mut buf = vec![0.0; m.len()];
        m.sq_dists_to_all(query, &mut buf);
        let mut scored: Vec<(f64, u32)> = buf
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored
    }

    fn check_all_queries(m: &FeatureMatrix, index: &dyn MetricIndex, eps: f64) {
        let mut got = Vec::new();
        for i in 0..m.len() {
            for strict in [false, true] {
                index.within_into(m.row(i), eps, strict, &mut got);
                assert_eq!(got, brute_within(m, m.row(i), eps, strict), "query {i}");
                index.within_row_into(i as u32, eps, strict, &mut got);
                assert_eq!(got, brute_within(m, m.row(i), eps, strict), "row query {i}");
            }
            let mut near = Vec::new();
            index.nearest_into(m.row(i), 3, &mut near);
            assert_eq!(near, brute_nearest(m, m.row(i), 3), "nearest {i}");
        }
    }

    #[test]
    fn multi_pivot_matches_brute_force() {
        for dim in [1, 2, 3, 7, 8, 16] {
            let m = scattered(90, dim, 7 + dim as u64);
            let index = PivotIndex::with_pivots(&m, 4);
            check_all_queries(&m, &index, 0.9);
        }
    }

    #[test]
    fn sweep_reference_matches_brute_force() {
        let m = scattered(70, 5, 3);
        let index = SweepIndex::build(&m);
        check_all_queries(&m, &index, 1.1);
    }

    #[test]
    fn close_pairs_and_replay_match_brute_force() {
        let m = scattered(80, 4, 11);
        let eps = 1.2;
        let index = PivotIndex::with_pivots(&m, 4);
        let mut degrees = vec![0u32; m.len()];
        let sweep = index.close_pairs(eps, &mut degrees);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        index.replay_close_pairs(&sweep, &mut |a, b| pairs.push((a, b)));
        pairs.sort_unstable();
        let mut expect: Vec<(u32, u32)> = Vec::new();
        let mut expect_deg = vec![0u32; m.len()];
        for a in 0..m.len() {
            for b in a + 1..m.len() {
                if row_within(m.dim(), m.row(a), m.row(b), eps * eps, false) {
                    expect.push((a as u32, b as u32));
                    expect_deg[a] += 1;
                    expect_deg[b] += 1;
                }
            }
        }
        assert_eq!(pairs, expect);
        assert_eq!(degrees, expect_deg);
        assert_eq!(sweep.close_pair_count(), expect.len());
    }

    #[test]
    fn append_and_tombstone_stay_exact() {
        let m = scattered(60, 6, 5);
        let extra = scattered(25, 6, 99);
        let mut index = PivotIndex::with_pivots(&m, 3);
        let mut all_rows = m.to_rows();
        for r in extra.rows() {
            assert_eq!(index.append(r) as usize, all_rows.len());
            all_rows.push(r.to_vec());
        }
        for id in [3u32, 17, 61, 80] {
            assert!(index.tombstone(id));
            assert!(!index.tombstone(id));
            assert!(!index.is_active(id));
        }
        let dead = [3usize, 17, 61, 80];
        let full = FeatureMatrix::from_rows(all_rows.clone());
        let mut got = Vec::new();
        for (q, row) in all_rows.iter().enumerate() {
            index.within_row_into(q as u32, 1.0, false, &mut got);
            let expect: Vec<u32> = brute_within(&full, row, 1.0, false)
                .into_iter()
                .filter(|i| !dead.contains(&(*i as usize)))
                .collect();
            assert_eq!(got, expect, "row {q}");
        }
        // Pair sweep over the mutated index vs a filtered brute force.
        let mut degrees = vec![0u32; index.len()];
        let sweep = index.close_pairs(0.8, &mut degrees);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        index.replay_close_pairs(&sweep, &mut |a, b| pairs.push((a, b)));
        pairs.sort_unstable();
        let mut expect: Vec<(u32, u32)> = Vec::new();
        for a in 0..all_rows.len() {
            for b in a + 1..all_rows.len() {
                if dead.contains(&a) || dead.contains(&b) {
                    continue;
                }
                if row_within(full.dim(), &all_rows[a], &all_rows[b], 0.64, false) {
                    expect.push((a as u32, b as u32));
                }
            }
        }
        assert_eq!(pairs, expect);
        assert_eq!(index.n_active(), all_rows.len() - dead.len());
    }

    #[test]
    fn tail_resort_fires_under_churn_and_stays_exact() {
        let m = scattered(40, 5, 13);
        let extra = scattered(120, 5, 101);
        let mut index = PivotIndex::with_pivots(&m, 3);
        let mut all_rows = m.to_rows();
        let mut dead: Vec<usize> = Vec::new();
        for (i, r) in extra.rows().enumerate() {
            index.append(r);
            all_rows.push(r.to_vec());
            // Interleave tombstones (some landing on tail rows) so the
            // merge must carry dead rows without dangling any loc entry.
            if i % 7 == 3 {
                let id = (all_rows.len() - 2) as u32;
                if index.tombstone(id) {
                    dead.push(id as usize);
                }
            }
        }
        // 120 appends over a 40-row segment must have folded the tail
        // in at least once, and the tail shrinks back below threshold.
        assert!(index.resorts() >= 1, "churn never triggered a re-sort");
        assert!(index.tail_len() < 120);
        let full = FeatureMatrix::from_rows(all_rows.clone());
        let mut got = Vec::new();
        for (q, row) in all_rows.iter().enumerate() {
            for strict in [false, true] {
                index.within_row_into(q as u32, 0.9, strict, &mut got);
                let expect: Vec<u32> = brute_within(&full, row, 0.9, strict)
                    .into_iter()
                    .filter(|i| !dead.contains(&(*i as usize)))
                    .collect();
                assert_eq!(got, expect, "row {q} strict {strict}");
            }
        }
        let mut near = Vec::new();
        index.nearest_into(all_rows[0].as_slice(), 5, &mut near);
        let expect: Vec<(f64, u32)> = brute_nearest(&full, &all_rows[0], full.len())
            .into_iter()
            .filter(|&(_, i)| !dead.contains(&(i as usize)))
            .take(5)
            .collect();
        assert_eq!(near, expect);
        // Pair sweep + replay on the re-sorted layout.
        let mut degrees = vec![0u32; index.len()];
        let sweep = index.close_pairs(0.8, &mut degrees);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        index.replay_close_pairs(&sweep, &mut |a, b| pairs.push((a, b)));
        pairs.sort_unstable();
        let mut expect: Vec<(u32, u32)> = Vec::new();
        for a in 0..all_rows.len() {
            for b in a + 1..all_rows.len() {
                if dead.contains(&a) || dead.contains(&b) {
                    continue;
                }
                if row_within(full.dim(), &all_rows[a], &all_rows[b], 0.64, false) {
                    expect.push((a as u32, b as u32));
                }
            }
        }
        assert_eq!(pairs, expect);
    }

    #[test]
    fn empty_matrix_builds_and_answers() {
        let m = FeatureMatrix::from_rows(vec![]);
        let index = build_index(&m);
        assert_eq!(index.len(), 0);
        let mut out = Vec::new();
        index.within_into(&[], 1.0, false, &mut out);
        assert!(out.is_empty());
        let mut near = Vec::new();
        index.nearest_into(&[], 2, &mut near);
        assert!(near.is_empty());
        let sweep = index.close_pairs(1.0, &mut []);
        assert_eq!(sweep.close_pair_count(), 0);
    }

    #[test]
    fn single_row_and_identical_rows() {
        let single = FeatureMatrix::from_rows(vec![vec![1.0, 2.0]]);
        let index = PivotIndex::with_pivots(&single, 4);
        let mut out = Vec::new();
        index.within_into(&[1.0, 2.0], 0.5, false, &mut out);
        assert_eq!(out, vec![0]);
        index.within_into(&[1.0, 2.0], 0.0, true, &mut out);
        assert!(
            out.is_empty(),
            "strict zero radius must exclude the exact match"
        );

        // All-identical rows: zero pivot spread must terminate pivot
        // selection, and every pair is a close pair.
        let same = FeatureMatrix::from_rows(vec![vec![3.0, -1.0]; 9]);
        let index = PivotIndex::with_pivots(&same, 4);
        assert_eq!(
            index.n_pivots(),
            1,
            "zero spread cannot support extra pivots"
        );
        check_all_queries(&same, &index, 0.25);
        let mut degrees = vec![0u32; 9];
        let sweep = index.close_pairs(0.1, &mut degrees);
        assert_eq!(sweep.close_pair_count(), 9 * 8 / 2);
        assert!(degrees.iter().all(|&d| d == 8));
    }

    #[test]
    fn zero_dimensional_rows() {
        let m = FeatureMatrix::from_rows(vec![vec![]; 5]);
        let index = build_index(&m);
        let mut out = Vec::new();
        index.within_into(&[], 0.5, false, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        index.within_row_into(2, 0.0, true, &mut out);
        assert!(out.is_empty());
        let mut near = Vec::new();
        index.nearest_into(&[], 3, &mut near);
        assert_eq!(near, vec![(0.0, 0), (0.0, 1), (0.0, 2)]);
        let mut degrees = vec![0u32; 5];
        let sweep = index.close_pairs(0.0, &mut degrees);
        assert_eq!(sweep.close_pair_count(), 10, "d = 0 ≤ eps = 0 everywhere");
    }

    #[test]
    fn non_finite_rows_degrade_but_stay_exact() {
        let mut rows = scattered(40, 3, 21).to_rows();
        rows[7] = vec![f64::NAN, 0.0, 0.0];
        rows[13] = vec![f64::INFINITY, 1.0, -1.0];
        rows[29] = vec![0.0, f64::NEG_INFINITY, f64::NAN];
        let m = FeatureMatrix::from_rows(rows.clone());
        let index = PivotIndex::with_pivots(&m, 4);
        check_all_queries(&m, &index, 1.3);
        // Non-finite queries: no hits (NaN/inf never satisfies ≤ eps²),
        // nearest degrades to the brute ranking.
        let mut out = Vec::new();
        index.within_into(&rows[7], 2.0, false, &mut out);
        assert_eq!(out, brute_within(&m, &rows[7], 2.0, false));
        assert!(out.is_empty());
        let mut near = Vec::new();
        index.nearest_into(&rows[13], 4, &mut near);
        assert_eq!(near, brute_nearest(&m, &rows[13], 4));
        // Appending a non-finite row must not disturb later queries.
        let mut index = index;
        index.append(&[f64::NAN; 3]);
        let mut all = rows.clone();
        all.push(vec![f64::NAN; 3]);
        let full = FeatureMatrix::from_rows(all);
        index.within_into(full.row(0), 1.3, false, &mut out);
        assert_eq!(out, brute_within(&full, full.row(0), 1.3, false));
    }

    #[test]
    fn huge_magnitudes_overflow_to_linear_verification() {
        // Coordinates whose squared norms overflow the dot trick: the
        // window key would be garbage, so these rows must bypass it.
        let mut rows = scattered(30, 2, 17).to_rows();
        rows[4] = vec![1e200, 1e200];
        rows[9] = vec![-1e200, 1e200];
        let m = FeatureMatrix::from_rows(rows);
        let index = PivotIndex::with_pivots(&m, 3);
        check_all_queries(&m, &index, 0.7);
    }

    #[test]
    fn index_mode_is_scoped_and_restored() {
        assert_eq!(index_mode(), IndexMode::Auto);
        let m = scattered(200, 9, 1);
        with_index_mode(IndexMode::Sweep, || {
            assert_eq!(index_mode(), IndexMode::Sweep);
            assert_eq!(build_index(&m).n_pivots(), 1);
        });
        assert_eq!(index_mode(), IndexMode::Auto);
        assert!(build_index(&m).n_pivots() > 1);
    }

    #[test]
    fn stats_count_builds_and_pruning() {
        let before = stats();
        let m = scattered(300, 8, 77);
        let index = build_index(&m);
        let mut out = Vec::new();
        for i in 0..50 {
            index.within_into(m.row(i), 0.4, false, &mut out);
        }
        // Counters are process-global and other tests run concurrently,
        // so only lower bounds are stable.
        let delta = stats().delta_since(&before);
        assert!(delta.builds >= 1);
        assert!(delta.queries >= 50);
        assert!(delta.candidates >= 50 * 300);
        assert!(
            delta.pruned > 0,
            "a 0.4 radius over scattered data must prune"
        );
        assert!(delta.pruned_fraction() > 0.0 && delta.pruned_fraction() <= 1.0);
    }

    #[test]
    fn nearest_ties_resolve_by_id_like_brute_force() {
        // Duplicate rows force (value, id) ties.
        let mut rows = vec![vec![0.5, 0.5]; 6];
        rows.extend(scattered(20, 2, 31).to_rows());
        let m = FeatureMatrix::from_rows(rows);
        let index = PivotIndex::with_pivots(&m, 2);
        let mut near = Vec::new();
        index.nearest_into(&[0.5, 0.5], 4, &mut near);
        assert_eq!(near, brute_nearest(&m, &[0.5, 0.5], 4));
        assert_eq!(
            near.iter().map(|&(_, i)| i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }
}
