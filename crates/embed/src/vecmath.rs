//! Dense-vector helpers shared by the embedder and its consumers.

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
/// Panics on length mismatch — comparing vectors from different embedding
/// spaces is always a caller bug.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector is all-zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine distance `1 − cosine_similarity`, in `[0, 2]`.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - cosine_similarity(a, b)
}

/// Normalizes `v` to unit L2 norm in place; leaves the zero vector
/// untouched.
pub fn l2_normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn euclidean_rejects_mismatch() {
        let _ = euclidean_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_convention() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn normalize_in_place() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);

        let mut z = vec![0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn scale_invariance_of_cosine() {
        let a = [0.2, 0.5, 0.9];
        let b: Vec<f64> = a.iter().map(|x| x * 7.5).collect();
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }
}
