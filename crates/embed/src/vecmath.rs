//! Dense-vector helpers shared by the embedder and its consumers.

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
/// Panics on length mismatch — comparing vectors from different embedding
/// spaces is always a caller bug.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance — the `sqrt`-free comparison kernel for hot
/// paths (threshold tests, argmin/argmax, order statistics), where the
/// monotone map `d ↦ d²` preserves every comparison.
///
/// Four independent accumulator lanes let the compiler vectorize the loop
/// without fast-math; the lane split is fixed, so the result is a
/// deterministic function of the inputs.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn sq_euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut acc = [0.0f64; 4];
    let lanes = a.len() / 4 * 4;
    let mut i = 0;
    while i < lanes {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
        i += 4;
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    while i < a.len() {
        let d = a[i] - b[i];
        s += d * d;
        i += 1;
    }
    s
}

/// Dot product with the same fixed four-lane accumulation as
/// [`sq_euclidean_distance`].
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut acc = [0.0f64; 4];
    let lanes = a.len() / 4 * 4;
    let mut i = 0;
    while i < lanes {
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    while i < a.len() {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector is all-zero.
#[inline]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine distance `1 − cosine_similarity`, in `[0, 2]`.
#[inline]
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - cosine_similarity(a, b)
}

/// Normalizes `v` to unit L2 norm in place; leaves the zero vector
/// untouched.
#[inline]
pub fn l2_normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn sq_euclidean_matches_euclidean() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.731).sin()).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 0.377).cos()).collect();
        let d = euclidean_distance(&a, &b);
        assert!((sq_euclidean_distance(&a, &b) - d * d).abs() < 1e-12);
        assert_eq!(sq_euclidean_distance(&[], &[]), 0.0);
    }

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // Odd lengths exercise the scalar tail after the 4-lane body.
        let a: Vec<f64> = (0..9).map(|i| i as f64).collect();
        assert_eq!(dot(&a, &a), 204.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn euclidean_rejects_mismatch() {
        let _ = euclidean_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_convention() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn normalize_in_place() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);

        let mut z = vec![0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn scale_invariance_of_cosine() {
        let a = [0.2, 0.5, 0.9];
        let b: Vec<f64> = a.iter().map(|x| x * 7.5).collect();
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }
}
