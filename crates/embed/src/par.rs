//! Scoped-thread sharding for the dense kernels.
//!
//! The planning pipeline parallelizes by splitting an output buffer into
//! disjoint contiguous shards and computing each shard on its own
//! `std::thread::scope` thread (no rayon — the workspace builds against
//! vendored deps only). Every sharded computation here is a pure
//! per-element function of immutable input, so the result is **bit
//! identical** regardless of shard count: serial (`with_max_threads(1)`)
//! and parallel runs produce the same bytes, which the determinism tests
//! assert end-to-end.
//!
//! Shard counts come from [`std::thread::available_parallelism`], capped
//! by a thread-local override ([`with_max_threads`]) so tests can force
//! the serial path without process-global state, and floored by a
//! per-shard minimum work size so tiny inputs (e.g. an online flush of a
//! few dozen questions) never pay thread-spawn overhead.

use std::cell::Cell;

thread_local! {
    /// 0 = no override (use `available_parallelism`).
    static MAX_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with the calling thread's shard count capped at `threads`
/// (`1` forces every kernel under `f` onto the calling thread). The cap
/// applies only to work started from the calling thread; it restores on
/// exit, including on panic.
pub fn with_max_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|cell| cell.set(self.0));
        }
    }
    let _restore = MAX_THREADS.with(|cell| {
        let prev = cell.get();
        cell.set(threads.max(1));
        Restore(prev)
    });
    f()
}

/// Process-wide default cap from the `BATCHER_MAX_THREADS` environment
/// variable, read once: 0 = unset/invalid (no cap). Unlike the
/// thread-local override it applies to *every* thread — including service
/// worker pools — which is what a deterministic single-thread CI run
/// needs.
fn env_max_threads() -> usize {
    use std::sync::OnceLock;
    static ENV_CAP: OnceLock<usize> = OnceLock::new();
    *ENV_CAP.get_or_init(|| {
        std::env::var("BATCHER_MAX_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The effective thread budget: the thread-local override if set, then
/// the `BATCHER_MAX_THREADS` environment cap, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown).
pub fn max_threads() -> usize {
    let cap = MAX_THREADS.with(Cell::get);
    if cap != 0 {
        return cap;
    }
    let env_cap = env_max_threads();
    if env_cap != 0 {
        return env_cap;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Number of shards for `n_items` units of work with at least
/// `min_per_shard` units each; always in `1..=max_threads()`.
pub fn shard_count(n_items: usize, min_per_shard: usize) -> usize {
    let by_work = n_items / min_per_shard.max(1);
    max_threads().min(by_work).max(1)
}

/// Splits `out` into near-equal contiguous shards and runs
/// `f(start_index, shard)` for each, in parallel when the thread budget
/// and `min_per_shard` allow. `start_index` is the shard's offset into
/// `out`, so `f` can compute `out[start_index + k]` from the element's
/// global index alone — the contract that makes sharding bit-exact.
pub fn par_chunks_mut<T, F>(out: &mut [T], min_per_shard: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    if n == 0 {
        return;
    }
    let shards = shard_count(n, min_per_shard);
    if shards <= 1 {
        f(0, out);
        return;
    }
    let chunk = n.div_ceil(shards);
    std::thread::scope(|scope| {
        for (s, shard) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(s * chunk, shard));
        }
    });
}

/// Maps `f` over `0..n`, sharded. Equivalent to
/// `(0..n).map(f).collect()` — including element order — but computed on
/// `shard_count(n, min_per_shard)` threads.
pub fn par_map<R, F>(n: usize, min_per_shard: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    par_chunks_mut(&mut out, min_per_shard, |start, shard| {
        for (k, slot) in shard.iter_mut().enumerate() {
            *slot = Some(f(start + k));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every shard fills its slots"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_caps_and_restores() {
        let outer = max_threads();
        with_max_threads(1, || {
            assert_eq!(max_threads(), 1);
            assert_eq!(shard_count(1_000_000, 1), 1);
            with_max_threads(3, || assert_eq!(max_threads(), 3));
            assert_eq!(max_threads(), 1);
        });
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn shard_count_respects_min_work() {
        with_max_threads(8, || {
            assert_eq!(shard_count(7, 8), 1);
            assert_eq!(shard_count(16, 8), 2);
            assert_eq!(shard_count(1000, 8), 8);
            assert_eq!(shard_count(0, 8), 1);
        });
    }

    #[test]
    fn par_chunks_fill_disjointly() {
        let mut out = vec![0usize; 1003];
        par_chunks_mut(&mut out, 1, |start, shard| {
            for (k, slot) in shard.iter_mut().enumerate() {
                *slot = (start + k) * 2;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn par_map_matches_serial_map() {
        let parallel = par_map(517, 4, |i| i as f64 * 1.5 - 3.0);
        let serial = with_max_threads(1, || par_map(517, 4, |i| i as f64 * 1.5 - 3.0));
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 517);
        assert_eq!(parallel[10], 12.0);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map(0, 1, |_| 0u8);
        assert!(out.is_empty());
        let mut empty: [u8; 0] = [];
        par_chunks_mut(&mut empty, 1, |_, _| panic!("no shards for empty output"));
    }
}
