//! Contiguous feature-matrix storage and batch distance kernels.
//!
//! The planning pipeline (clustering, batching, covering selection) spends
//! its time comparing feature vectors. Stored as `Vec<Vec<f64>>`, every
//! comparison chases a pointer per row and re-derives norms; stored as one
//! row-major buffer with cached squared L2 norms, the hot loops become
//! streaming passes the compiler can vectorize, and Euclidean work reduces
//! to dot products via `‖x − y‖² = ‖x‖² + ‖y‖² − 2·x·y`.
//!
//! Two kernel families:
//!
//! * **one-to-many** — distances from one query row to every row of a
//!   matrix, written into a caller buffer ([`FeatureMatrix::sq_dists_to_all`],
//!   [`FeatureMatrix::dists_to_all`], [`FeatureMatrix::cosine_dists_to_all`]).
//! * **pairwise chunk** — a block of rows against the whole matrix
//!   ([`FeatureMatrix::pairwise_sq_chunk`]), tiled over columns so the
//!   inner rows stay cache-resident.
//!
//! Hot paths compare **squared** Euclidean distances (`d ↦ d²` is monotone
//! on distances, so thresholds square once and argmins are unchanged) and
//! only take `sqrt` on values that escape to callers. Every kernel is a
//! pure per-element function, so sharding the output across threads
//! ([`crate::par`]) reproduces the serial result bit for bit.

use crate::vecmath::dot;

/// Column tile width for [`FeatureMatrix::pairwise_sq_chunk`]: 128 rows of
/// 64-dim `f64` features ≈ 64 KiB, comfortably L2-resident.
const PAIRWISE_TILE: usize = 128;

/// A dense row-major feature matrix with cached squared L2 norms.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    dim: usize,
    sq_norms: Vec<f64>,
    /// Unit-normalized copy of `data` (zero rows stay zero), built only
    /// when a cosine consumer asks for it.
    unit: Option<Vec<f64>>,
}

impl FeatureMatrix {
    /// Builds a matrix from per-row vectors.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths — mixing feature spaces is a
    /// caller bug.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in &rows {
            assert_eq!(row.len(), dim, "ragged feature rows");
            data.extend_from_slice(row);
        }
        Self::from_flat(data, rows.len(), dim)
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics unless `data.len() == rows * dim`.
    pub fn from_flat(data: Vec<f64>, rows: usize, dim: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * dim,
            "flat buffer does not tile into rows"
        );
        let sq_norms = (0..rows)
            .map(|i| dot(&data[i * dim..(i + 1) * dim], &data[i * dim..(i + 1) * dim]))
            .collect();
        Self { data, rows, dim, sq_norms, unit: None }
    }

    /// Precomputes the unit-normalized row copy used by the cosine
    /// kernels. Idempotent; without it cosine kernels divide by cached
    /// norms on the fly.
    pub fn with_unit_rows(mut self) -> Self {
        if self.unit.is_none() {
            let mut unit = self.data.clone();
            for i in 0..self.rows {
                let norm = self.sq_norms[i].sqrt();
                if norm > 0.0 {
                    for x in &mut unit[i * self.dim..(i + 1) * self.dim] {
                        *x /= norm;
                    }
                }
            }
            self.unit = Some(unit);
        }
        self
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Feature dimension (0 for an empty matrix built from no rows).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Cached `‖row(i)‖²`.
    #[inline]
    pub fn sq_norm(&self, i: usize) -> f64 {
        self.sq_norms[i]
    }

    /// Rows as an iterator of slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Materializes per-row vectors (tests and interop with the slice
    /// APIs).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }

    /// `row(i) · row(j)`.
    #[inline]
    pub fn dot_rows(&self, i: usize, j: usize) -> f64 {
        dot(self.row(i), self.row(j))
    }

    /// Squared Euclidean distance between rows `i` and `j` via the dot
    /// trick, clamped at 0 against cancellation.
    #[inline]
    pub fn sq_dist_rows(&self, i: usize, j: usize) -> f64 {
        (self.sq_norms[i] + self.sq_norms[j] - 2.0 * self.dot_rows(i, j)).max(0.0)
    }

    /// Squared Euclidean distance from an external query (with its
    /// precomputed squared norm) to row `j`.
    #[inline]
    pub fn sq_dist_to_row(&self, x: &[f64], x_sq_norm: f64, j: usize) -> f64 {
        (x_sq_norm + self.sq_norms[j] - 2.0 * dot(x, self.row(j))).max(0.0)
    }

    /// One-to-many squared Euclidean distances: fills `out[j] = ‖x − row(j)‖²`.
    ///
    /// # Panics
    /// Panics unless `out.len() == self.len()` and `x.len() == self.dim()`.
    pub fn sq_dists_to_all(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "output buffer length mismatch");
        assert_eq!(x.len(), self.dim, "query dimension mismatch");
        let x_sq = dot(x, x);
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = self.sq_dist_to_row(x, x_sq, j);
        }
    }

    /// One-to-many Euclidean distances (the `sqrt`-ed variant, for values
    /// that escape to callers rather than feed comparisons).
    pub fn dists_to_all(&self, x: &[f64], out: &mut [f64]) {
        self.sq_dists_to_all(x, out);
        for slot in out.iter_mut() {
            *slot = slot.sqrt();
        }
    }

    /// One-to-many cosine distances `1 − cos`, with the crate's zero-vector
    /// convention (similarity 0, hence distance 1, when either side is
    /// all-zero). Uses the unit-row copy when present, cached norms
    /// otherwise.
    ///
    /// # Panics
    /// Panics on buffer or dimension mismatch.
    pub fn cosine_dists_to_all(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "output buffer length mismatch");
        assert_eq!(x.len(), self.dim, "query dimension mismatch");
        let x_norm = dot(x, x).sqrt();
        if x_norm == 0.0 {
            out.fill(1.0);
            return;
        }
        if let Some(unit) = &self.unit {
            let mut x_unit = x.to_vec();
            for v in &mut x_unit {
                *v /= x_norm;
            }
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = if self.sq_norms[j] == 0.0 {
                    1.0
                } else {
                    1.0 - dot(&x_unit, &unit[j * self.dim..(j + 1) * self.dim])
                };
            }
        } else {
            for (j, slot) in out.iter_mut().enumerate() {
                let norm = self.sq_norms[j].sqrt();
                *slot = if norm == 0.0 {
                    1.0
                } else {
                    1.0 - dot(x, self.row(j)) / (x_norm * norm)
                };
            }
        }
    }

    /// Pairwise squared-distance block: fills the row-major
    /// `rows.len() × other.len()` buffer `out` with
    /// `‖self.row(rows.start + r) − other.row(j)‖²`, tiling `other` in
    /// [`PAIRWISE_TILE`]-row column blocks for locality.
    ///
    /// # Panics
    /// Panics on range, buffer, or dimension mismatch.
    pub fn pairwise_sq_chunk(&self, rows: std::ops::Range<usize>, other: &Self, out: &mut [f64]) {
        assert!(rows.end <= self.rows, "row range out of bounds");
        assert_eq!(self.dim, other.dim, "matrix dimension mismatch");
        let width = other.len();
        assert_eq!(
            out.len(),
            rows.len() * width,
            "output buffer length mismatch"
        );
        for tile_start in (0..width).step_by(PAIRWISE_TILE) {
            let tile_end = (tile_start + PAIRWISE_TILE).min(width);
            for (r, i) in rows.clone().enumerate() {
                let row_i = self.row(i);
                let sq_i = self.sq_norms[i];
                let out_row = &mut out[r * width + tile_start..r * width + tile_end];
                for (slot, j) in out_row.iter_mut().zip(tile_start..tile_end) {
                    *slot = (sq_i + other.sq_norms[j] - 2.0 * dot(row_i, other.row(j))).max(0.0);
                }
            }
        }
    }
}

/// Streams the contiguous row-major buffer `rows_flat` (row width `dim`)
/// and calls `on_hit(row_index)` for every row whose squared Euclidean
/// distance to `query` is below `t_sq` (strictly when `STRICT`, else
/// `≤`). Small dimensions dispatch to fully unrolled two-lane loops; the
/// four-lane kernel covers the rest. Pure per-row decisions — safe to
/// shard by splitting `rows_flat`.
pub fn scan_rows_within<const STRICT: bool>(
    dim: usize,
    query: &[f64],
    rows_flat: &[f64],
    t_sq: f64,
    on_hit: impl FnMut(usize),
) {
    assert_eq!(query.len(), dim, "query dimension mismatch");
    match dim {
        1 => scan_fixed::<1, STRICT>(query, rows_flat, t_sq, on_hit),
        2 => scan_fixed::<2, STRICT>(query, rows_flat, t_sq, on_hit),
        3 => scan_fixed::<3, STRICT>(query, rows_flat, t_sq, on_hit),
        4 => scan_fixed::<4, STRICT>(query, rows_flat, t_sq, on_hit),
        5 => scan_fixed::<5, STRICT>(query, rows_flat, t_sq, on_hit),
        6 => scan_fixed::<6, STRICT>(query, rows_flat, t_sq, on_hit),
        7 => scan_fixed::<7, STRICT>(query, rows_flat, t_sq, on_hit),
        8 => scan_fixed::<8, STRICT>(query, rows_flat, t_sq, on_hit),
        _ => {
            let mut on_hit = on_hit;
            for (k, row) in rows_flat.chunks_exact(dim.max(1)).enumerate() {
                let s = crate::vecmath::sq_euclidean_distance(query, row);
                if (STRICT && s < t_sq) || (!STRICT && s <= t_sq) {
                    on_hit(k);
                }
            }
        }
    }
}

fn scan_fixed<const D: usize, const STRICT: bool>(
    query: &[f64],
    rows_flat: &[f64],
    t_sq: f64,
    mut on_hit: impl FnMut(usize),
) {
    let q: &[f64; D] = query.try_into().expect("query width matches dim");
    for (k, row) in rows_flat.chunks_exact(D).enumerate() {
        let mut even = 0.0f64;
        let mut odd = 0.0f64;
        let mut d = 0;
        while d + 1 < D {
            let t0 = q[d] - row[d];
            let t1 = q[d + 1] - row[d + 1];
            even += t0 * t0;
            odd += t1 * t1;
            d += 2;
        }
        if d < D {
            let t = q[d] - row[d];
            even += t * t;
        }
        let s = even + odd;
        if (STRICT && s < t_sq) || (!STRICT && s <= t_sq) {
            on_hit(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecmath::{cosine_distance, euclidean_distance};

    fn sample(rows: usize, dim: usize, phase: f64) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * dim + d) as f64 * 0.637 + phase).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn layout_and_norms() {
        let rows = sample(5, 7, 0.0);
        let m = FeatureMatrix::from_rows(rows.clone());
        assert_eq!(m.len(), 5);
        assert_eq!(m.dim(), 7);
        assert!(!m.is_empty());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(m.row(i), row.as_slice());
            let sq: f64 = row.iter().map(|x| x * x).sum();
            assert!((m.sq_norm(i) - sq).abs() < 1e-12);
        }
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.rows().len(), 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn sq_dists_match_scalar() {
        let rows = sample(9, 13, 0.3);
        let m = FeatureMatrix::from_rows(rows.clone());
        for i in 0..9 {
            for j in 0..9 {
                let d = euclidean_distance(&rows[i], &rows[j]);
                assert!(
                    (m.sq_dist_rows(i, j) - d * d).abs() < 1e-12,
                    "({i},{j}) kernel {} vs scalar {}",
                    m.sq_dist_rows(i, j),
                    d * d
                );
            }
        }
    }

    #[test]
    fn one_to_many_matches_scalar() {
        let rows = sample(11, 5, 0.9);
        let query: Vec<f64> = (0..5).map(|d| (d as f64 * 0.21).cos()).collect();
        let m = FeatureMatrix::from_rows(rows.clone());
        let mut sq = vec![0.0; 11];
        let mut dist = vec![0.0; 11];
        let mut cos = vec![0.0; 11];
        m.sq_dists_to_all(&query, &mut sq);
        m.dists_to_all(&query, &mut dist);
        m.cosine_dists_to_all(&query, &mut cos);
        for j in 0..11 {
            let d = euclidean_distance(&query, &rows[j]);
            assert!((sq[j] - d * d).abs() < 1e-12);
            assert!((dist[j] - d).abs() < 1e-12);
            assert!((cos[j] - cosine_distance(&query, &rows[j])).abs() < 1e-12);
        }
    }

    #[test]
    fn cosine_zero_vector_convention() {
        let m = FeatureMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 0.0]]);
        let mut out = vec![0.0; 2];
        m.cosine_dists_to_all(&[0.0, 0.0], &mut out);
        assert_eq!(out, vec![1.0, 1.0]);
        m.cosine_dists_to_all(&[1.0, 0.0], &mut out);
        assert_eq!(out[0], 1.0); // zero row
        assert!(out[1].abs() < 1e-12); // identical direction
    }

    #[test]
    fn unit_rows_agree_with_norm_division() {
        let rows = sample(6, 8, 1.7);
        let query: Vec<f64> = (0..8).map(|d| (d as f64 * 0.93).sin()).collect();
        let plain = FeatureMatrix::from_rows(rows.clone());
        let unit = FeatureMatrix::from_rows(rows).with_unit_rows();
        let mut a = vec![0.0; 6];
        let mut b = vec![0.0; 6];
        plain.cosine_dists_to_all(&query, &mut a);
        unit.cosine_dists_to_all(&query, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pairwise_chunk_matches_one_to_many() {
        // A tile-crossing width exercises the column tiling.
        let left = FeatureMatrix::from_rows(sample(7, 6, 0.1));
        let right = FeatureMatrix::from_rows(sample(PAIRWISE_TILE + 37, 6, 2.2));
        let mut chunk = vec![0.0; 3 * right.len()];
        left.pairwise_sq_chunk(2..5, &right, &mut chunk);
        let mut expect = vec![0.0; right.len()];
        for (r, i) in (2..5).enumerate() {
            right.sq_dists_to_all(left.row(i), &mut expect);
            assert_eq!(
                &chunk[r * right.len()..(r + 1) * right.len()],
                expect.as_slice(),
                "row {i} differs"
            );
        }
    }

    #[test]
    fn scan_rows_within_matches_filter() {
        for dim in [1usize, 3, 4, 7, 13] {
            let rows = sample(40, dim, 0.4);
            let flat: Vec<f64> = rows.iter().flatten().copied().collect();
            let query: Vec<f64> = (0..dim).map(|d| (d as f64 * 0.37).sin()).collect();
            let t = 1.1f64;
            let expect_strict: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| euclidean_distance(&query, r) < t)
                .map(|(k, _)| k)
                .collect();
            let mut got = Vec::new();
            scan_rows_within::<true>(dim, &query, &flat, t * t, |k| got.push(k));
            assert_eq!(got, expect_strict, "dim {dim} strict scan diverged");
            let mut inclusive = Vec::new();
            scan_rows_within::<false>(dim, &query, &flat, t * t, |k| inclusive.push(k));
            assert!(inclusive.len() >= got.len());
        }
    }

    #[test]
    fn empty_matrix() {
        let m = FeatureMatrix::from_rows(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.dim(), 0);
        assert_eq!(m.rows().count(), 0);
        let mut out: [f64; 0] = [];
        m.sq_dists_to_all(&[], &mut out);
    }
}
