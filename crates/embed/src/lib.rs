//! Semantics-based sentence embeddings — offline SBERT substitute.
//!
//! The BatchER paper's semantics-based feature extractor (§III-B) encodes
//! the serialized question `S(q)` with a pre-trained sentence encoder
//! (SBERT / RoBERTa) and measures relevance as Euclidean distance between
//! embeddings. No pre-trained model is available offline, so this crate
//! provides a deterministic **hashed n-gram embedding**: word tokens and
//! character trigrams are feature-hashed into a fixed-dimension vector with
//! signed hashing, then L2-normalized.
//!
//! The substitution is behaviour-preserving for the paper's purposes:
//! textually related strings land close together (embedding distance tracks
//! lexical-semantic overlap), while the vector carries no ER-task-specific
//! signal — exactly the weakness of semantics-based extraction the paper
//! reports in Table VII (structure-aware features win).

pub mod index;
pub mod matrix;
pub mod par;
pub mod vecmath;

pub use index::{
    build_index, with_index_mode, IndexMode, IndexStats, MetricIndex, PairSweep, PivotIndex,
    SweepIndex,
};
pub use matrix::FeatureMatrix;
pub use vecmath::{
    cosine_distance, cosine_similarity, dot, euclidean_distance, l2_normalize,
    sq_euclidean_distance,
};

use text_sim::{qgrams, word_tokens};

/// Configuration of the hashed n-gram embedder.
#[derive(Debug, Clone)]
pub struct EmbedderConfig {
    /// Embedding dimension (default 256).
    pub dim: usize,
    /// Include word-token features.
    pub use_words: bool,
    /// Include character q-gram features.
    pub use_qgrams: bool,
    /// q-gram width (default 3).
    pub q: usize,
    /// Hash seed; two embedders with different seeds produce incompatible
    /// spaces by design.
    pub seed: u64,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        Self { dim: 256, use_words: true, use_qgrams: true, q: 3, seed: 0x5EED_u64 }
    }
}

/// Deterministic hashed n-gram sentence embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    config: EmbedderConfig,
}

impl Embedder {
    /// Builds an embedder.
    ///
    /// # Panics
    /// Panics if `config.dim < 2` — an embedder that cannot separate any
    /// two strings is a construction bug.
    pub fn new(config: EmbedderConfig) -> Self {
        assert!(config.dim >= 2, "embedding dimension must be at least 2");
        Self { config }
    }

    /// The embedder configuration.
    pub fn config(&self) -> &EmbedderConfig {
        &self.config
    }

    /// Embeds a string into an L2-normalized `dim`-vector.
    ///
    /// The empty string embeds to the zero vector (the only non-unit
    /// output); cosine similarity against it is defined as 0.
    pub fn embed(&self, text: &str) -> Vec<f64> {
        let mut v = vec![0.0f64; self.config.dim];
        if self.config.use_words {
            for tok in word_tokens(text) {
                // Whole tokens are more discriminative than their
                // constituent grams, hence the double weight.
                self.scatter(&mut v, &tok, 2.0);
            }
        }
        if self.config.use_qgrams {
            for g in qgrams(text, self.config.q) {
                self.scatter(&mut v, &g, 1.0);
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Embeds many strings.
    pub fn embed_batch<'a, I>(&self, texts: I) -> Vec<Vec<f64>>
    where
        I: IntoIterator<Item = &'a str>,
    {
        texts.into_iter().map(|t| self.embed(t)).collect()
    }

    /// Adds a signed feature-hash contribution for one feature string.
    fn scatter(&self, v: &mut [f64], feature: &str, weight: f64) {
        let h = fnv1a64(feature.as_bytes(), self.config.seed);
        let idx = (h % v.len() as u64) as usize;
        // An independent high bit decides the sign, keeping hashed features
        // approximately unbiased (standard signed feature hashing).
        let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
        v[idx] += sign * weight;
    }
}

/// FNV-1a 64-bit hash with a seed mixed into the offset basis.
fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embedder {
        Embedder::new(EmbedderConfig::default())
    }

    #[test]
    fn deterministic() {
        let e = emb();
        assert_eq!(e.embed("hello world"), e.embed("hello world"));
    }

    #[test]
    fn unit_norm_for_nonempty() {
        let v = emb().embed("title: iphone 13, brand: apple");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_string_is_zero_vector() {
        let v = emb().embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn related_strings_closer_than_unrelated() {
        let e = emb();
        let a = e.embed("apple iphone 13 smartphone 128gb");
        let b = e.embed("apple iphone 13 smartphone 256gb");
        let c = e.embed("quantum chromodynamics lattice simulation");
        assert!(euclidean_distance(&a, &b) < euclidean_distance(&a, &c));
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
    }

    #[test]
    fn different_seeds_produce_different_spaces() {
        let e1 = Embedder::new(EmbedderConfig { seed: 1, ..Default::default() });
        let e2 = Embedder::new(EmbedderConfig { seed: 2, ..Default::default() });
        assert_ne!(e1.embed("same text"), e2.embed("same text"));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_dim() {
        let _ = Embedder::new(EmbedderConfig { dim: 1, ..Default::default() });
    }

    #[test]
    fn batch_matches_single() {
        let e = emb();
        let batch = e.embed_batch(["a b", "c d"]);
        assert_eq!(batch[0], e.embed("a b"));
        assert_eq!(batch[1], e.embed("c d"));
    }

    #[test]
    fn word_order_invariant_without_qgrams() {
        let e = Embedder::new(EmbedderConfig { use_qgrams: false, ..Default::default() });
        // Same multiset of words -> identical embedding when only word
        // features are active.
        assert_eq!(e.embed("alpha beta"), e.embed("beta   alpha"));
    }

    #[test]
    fn qgrams_make_order_matter() {
        let e = emb();
        assert_ne!(e.embed("alpha beta"), e.embed("beta alpha"));
    }
}
