//! Property tests pinning the batch kernels to the scalar `vecmath`
//! reference: whatever the lane split, dot trick, tiling, or sharding
//! does internally, distances must agree with the naive formulas to
//! 1e-12 across dimensions and lengths.

use embed::matrix::FeatureMatrix;
use embed::par::{par_map, with_max_threads};
use embed::{cosine_distance, dot, euclidean_distance, sq_euclidean_distance};
use proptest::prelude::*;

/// Chunks a flat value stream into `dim`-wide rows (dropping the ragged
/// tail), so row count and dimension both vary per case.
fn into_rows(flat: &[f64], dim: usize) -> Vec<Vec<f64>> {
    flat.chunks_exact(dim).map(<[f64]>::to_vec).collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 4-lane scalar kernels match the sequential formulas.
    #[test]
    fn lane_kernels_match_sequential(
        flat in prop::collection::vec(-4.0f64..4.0, 2..160),
    ) {
        let half = flat.len() / 2;
        let (a, b) = (&flat[..half], &flat[half..2 * half]);
        let seq_dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        prop_assert!(close(dot(a, b), seq_dot));
        let d = euclidean_distance(a, b);
        prop_assert!(close(sq_euclidean_distance(a, b), d * d));
    }

    /// One-to-many kernels (dot-trick Euclidean, squared and rooted, and
    /// cosine) match per-pair vecmath across dims and row counts.
    #[test]
    fn one_to_many_matches_vecmath(
        flat in prop::collection::vec(-4.0f64..4.0, 8..640),
        dim in 1usize..9,
    ) {
        let mut rows = into_rows(&flat, dim);
        if rows.len() < 2 {
            return Ok(()); // not enough rows at this dim; skip the case
        }
        let query = rows.pop().expect("at least two rows");
        let m = FeatureMatrix::from_rows(rows.clone());
        let mut sq = vec![0.0; m.len()];
        let mut dist = vec![0.0; m.len()];
        let mut cos = vec![0.0; m.len()];
        m.sq_dists_to_all(&query, &mut sq);
        m.dists_to_all(&query, &mut dist);
        m.cosine_dists_to_all(&query, &mut cos);
        for (j, row) in rows.iter().enumerate() {
            let d = euclidean_distance(&query, row);
            prop_assert!(close(sq[j], d * d), "sq[{j}] = {} vs {}", sq[j], d * d);
            prop_assert!(close(dist[j], d));
            prop_assert!(close(cos[j], cosine_distance(&query, row)));
        }
    }

    /// The blocked pairwise chunk agrees with vecmath for every (i, j).
    #[test]
    fn pairwise_chunk_matches_vecmath(
        flat in prop::collection::vec(-4.0f64..4.0, 12..400),
        dim in 1usize..7,
    ) {
        let rows = into_rows(&flat, dim);
        if rows.len() < 3 {
            return Ok(()); // not enough rows at this dim; skip the case
        }
        let m = FeatureMatrix::from_rows(rows.clone());
        let mut out = vec![0.0; 2 * m.len()];
        m.pairwise_sq_chunk(1..3, &m, &mut out);
        for (r, i) in (1..3).enumerate() {
            for j in 0..m.len() {
                let d = euclidean_distance(&rows[i], &rows[j]);
                prop_assert!(
                    close(out[r * m.len() + j], d * d),
                    "({i},{j}) chunk {} vs scalar {}", out[r * m.len() + j], d * d
                );
            }
        }
    }

    /// Sharded map output is bit-identical to the serial path — the
    /// contract the parallel planner's determinism rests on.
    #[test]
    fn sharded_equals_serial_bitwise(
        flat in prop::collection::vec(-4.0f64..4.0, 8..320),
        dim in 1usize..9,
    ) {
        let mut rows = into_rows(&flat, dim);
        if rows.len() < 2 {
            return Ok(()); // not enough rows at this dim; skip the case
        }
        let query = rows.pop().expect("at least two rows");
        let m = FeatureMatrix::from_rows(rows);
        let compute = || {
            par_map(m.len(), 1, |j| m.sq_dist_to_row(&query, dot(&query, &query), j))
        };
        let parallel = compute();
        let serial = with_max_threads(1, compute);
        prop_assert_eq!(parallel, serial);
    }
}
