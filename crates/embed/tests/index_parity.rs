//! Property tests pinning the metric index to brute force, to **zero
//! tolerance**: region queries, threshold scans, nearest-neighbour heads,
//! and pair sweeps must return exactly the id sets (and, for top-k, the
//! bit-identical `(value, id)` heads) that the reference kernels produce —
//! on random matrices and on the adversarial shapes the planner actually
//! sees (duplicate rows, zero-variance dimensions, near-collinear points,
//! eps sitting exactly on a pairwise distance, append/tombstone churn).

use embed::matrix::scan_rows_within;
use embed::{build_index, with_index_mode, FeatureMatrix, IndexMode, MetricIndex, PivotIndex};
use proptest::prelude::*;

/// Chunks a flat value stream into `dim`-wide rows (dropping the ragged
/// tail), so row count and dimension both vary per case.
fn into_rows(flat: &[f64], dim: usize) -> Vec<Vec<f64>> {
    flat.chunks_exact(dim).map(<[f64]>::to_vec).collect()
}

/// Reference region query: the scan kernel with threshold `eps²`,
/// optionally masked to active slots. This is the exact arithmetic the
/// index contracts to reproduce.
fn brute_within(
    m: &FeatureMatrix,
    query: &[f64],
    eps: f64,
    strict: bool,
    active: Option<&[bool]>,
) -> Vec<u32> {
    let mut out = Vec::new();
    if strict {
        scan_rows_within::<true>(m.dim(), query, m.flat(), eps * eps, |k| out.push(k as u32));
    } else {
        scan_rows_within::<false>(m.dim(), query, m.flat(), eps * eps, |k| out.push(k as u32));
    }
    if let Some(mask) = active {
        out.retain(|&id| mask[id as usize]);
    }
    out
}

/// Reference top-k: full `sq_dists_to_all` + `(total_cmp, id)` sort head,
/// optionally masked to active slots.
fn brute_nearest(
    m: &FeatureMatrix,
    query: &[f64],
    k: usize,
    active: Option<&[bool]>,
) -> Vec<(f64, u32)> {
    let mut sq = vec![0.0; m.len()];
    m.sq_dists_to_all(query, &mut sq);
    let mut pairs: Vec<(f64, u32)> = (0..m.len())
        .filter(|&j| active.is_none_or(|a| a[j]))
        .map(|j| (sq[j], j as u32))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    pairs.truncate(k);
    pairs
}

/// Asserts full parity (both strictness flavours of `within_into`,
/// `nearest_into` at several k) between `index` and brute force over the
/// matrix of all stored rows.
fn assert_query_parity(
    index: &dyn MetricIndex,
    all: &FeatureMatrix,
    active: Option<&[bool]>,
    query: &[f64],
    eps: f64,
) -> Result<(), String> {
    let mut got = Vec::new();
    for strict in [false, true] {
        index.within_into(query, eps, strict, &mut got);
        let want = brute_within(all, query, eps, strict, active);
        prop_assert_eq!(&got, &want, "within strict={} eps={}", strict, eps);
    }
    let n_active = active.map_or(all.len(), |a| a.iter().filter(|&&x| x).count());
    let mut knn = Vec::new();
    for k in [0usize, 1, 3, n_active + 2] {
        index.nearest_into(query, k, &mut knn);
        let want = brute_nearest(all, query, k, active);
        prop_assert_eq!(&knn, &want, "nearest k={}", k);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Region queries and top-k heads match brute force exactly on random
    /// matrices, across every pivot count (1 = sweep reference, up to 8)
    /// and across small fixed-dim kernels and the generic >8-dim kernel.
    #[test]
    fn random_matrices_match_brute(
        flat in prop::collection::vec(-4.0f64..4.0, 12..640),
        dim in 1usize..13,
        eps in 0.05f64..3.0,
    ) {
        let rows = into_rows(&flat, dim);
        if rows.len() < 2 {
            return Ok(()); // not enough rows at this dim; skip the case
        }
        let m = FeatureMatrix::from_rows(rows.clone());
        let query = rows[rows.len() / 2].clone();
        let off_query: Vec<f64> = query.iter().map(|v| v + 0.37).collect();
        for pivots in [1usize, 2, 4, 8] {
            let index = PivotIndex::with_pivots(&m, pivots);
            assert_query_parity(&index, &m, None, &query, eps)?;
            assert_query_parity(&index, &m, None, &off_query, eps)?;
        }
    }

    /// `IndexMode` only selects the pivot budget — `Auto` and `Sweep`
    /// builds answer identically, and `within_row_into` (stored pivot
    /// distances on the query side) equals `within_into` with the stored
    /// row as an external query.
    #[test]
    fn index_modes_and_row_queries_agree(
        flat in prop::collection::vec(-4.0f64..4.0, 12..400),
        dim in 1usize..9,
        eps in 0.05f64..3.0,
    ) {
        let rows = into_rows(&flat, dim);
        if rows.is_empty() {
            return Ok(());
        }
        let m = FeatureMatrix::from_rows(rows.clone());
        let auto = with_index_mode(IndexMode::Auto, || build_index(&m));
        let sweep = with_index_mode(IndexMode::Sweep, || build_index(&m));
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        for id in 0..rows.len() as u32 {
            for strict in [false, true] {
                auto.within_row_into(id, eps, strict, &mut a);
                sweep.within_row_into(id, eps, strict, &mut b);
                auto.within_into(&rows[id as usize], eps, strict, &mut c);
                prop_assert_eq!(&a, &c, "row-query vs external query, id={}", id);
                prop_assert_eq!(&b, &c, "sweep vs auto, id={}", id);
                if !strict {
                    prop_assert!(a.contains(&id), "self missing from own ball");
                }
            }
        }
    }

    /// eps placed exactly on a realized pairwise distance: the boundary
    /// row's verdict must flip between strict and non-strict exactly as
    /// the reference kernel decides, with no tolerance band.
    #[test]
    fn boundary_eps_is_exact(
        flat in prop::collection::vec(-4.0f64..4.0, 12..320),
        dim in 1usize..9,
        pick in any::<u32>(),
    ) {
        let rows = into_rows(&flat, dim);
        if rows.len() < 2 {
            return Ok(());
        }
        let m = FeatureMatrix::from_rows(rows.clone());
        let q = pick as usize % rows.len();
        let other = (q + 1 + (pick as usize / rows.len()) % (rows.len() - 1)) % rows.len();
        // eps exactly at the distance from rows[q] to rows[other].
        let eps = embed::sq_euclidean_distance(&rows[q], &rows[other]).sqrt();
        for pivots in [1usize, 4] {
            let index = PivotIndex::with_pivots(&m, pivots);
            let (mut strict_ids, mut loose_ids) = (Vec::new(), Vec::new());
            index.within_into(&rows[q], eps, true, &mut strict_ids);
            index.within_into(&rows[q], eps, false, &mut loose_ids);
            prop_assert_eq!(&strict_ids, &brute_within(&m, &rows[q], eps, true, None));
            prop_assert_eq!(&loose_ids, &brute_within(&m, &rows[q], eps, false, None));
            // The strict ball is a subset of the inclusive ball; every
            // excess id sits exactly on the boundary per the kernel.
            prop_assert!(strict_ids.iter().all(|id| loose_ids.contains(id)));
        }
    }

    /// Duplicate rows and zero-variance (constant) dimensions: ids of
    /// clones all appear or all vanish together, and parity holds.
    #[test]
    fn duplicates_and_constant_dims_match_brute(
        flat in prop::collection::vec(-4.0f64..4.0, 8..240),
        dim in 1usize..7,
        eps in 0.05f64..3.0,
    ) {
        let base = into_rows(&flat, dim);
        if base.is_empty() {
            return Ok(());
        }
        // Each base row twice, with two constant dimensions appended.
        let mut rows = Vec::with_capacity(base.len() * 2);
        for r in &base {
            let mut ext = r.clone();
            ext.push(2.5);
            ext.push(-1.0);
            rows.push(ext.clone());
            rows.push(ext);
        }
        let m = FeatureMatrix::from_rows(rows.clone());
        let query = rows[0].clone();
        for pivots in [1usize, 4] {
            let index = PivotIndex::with_pivots(&m, pivots);
            assert_query_parity(&index, &m, None, &query, eps)?;
            let mut hits = Vec::new();
            index.within_into(&query, eps, false, &mut hits);
            // Clones share identical coordinates, so membership is pairwise.
            for pair in 0..base.len() {
                let (a, b) = (2 * pair as u32, 2 * pair as u32 + 1);
                prop_assert_eq!(hits.contains(&a), hits.contains(&b));
            }
        }
    }

    /// Near-collinear points (a line plus ~1e-9 jitter) stress the pivot
    /// pruning band: keys become nearly monotone and window bounds sit on
    /// top of each other. Parity must survive regardless.
    #[test]
    fn near_collinear_points_match_brute(
        origin in prop::collection::vec(-2.0f64..2.0, 5),
        dir in prop::collection::vec(-1.0f64..1.0, 5),
        ts in prop::collection::vec(-3.0f64..3.0, 4..40),
        noise in prop::collection::vec(-1e-9f64..1e-9, 200),
        eps in 0.05f64..2.0,
    ) {
        let dim = origin.len();
        let rows: Vec<Vec<f64>> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                (0..dim)
                    .map(|d| origin[d] + t * dir[d] + noise[(i * dim + d) % noise.len()])
                    .collect()
            })
            .collect();
        let m = FeatureMatrix::from_rows(rows.clone());
        let query = rows[rows.len() / 2].clone();
        for pivots in [1usize, 2, 4] {
            let index = PivotIndex::with_pivots(&m, pivots);
            assert_query_parity(&index, &m, None, &query, eps)?;
        }
    }

    /// Random append/tombstone churn: the mutated index answers exactly
    /// like brute force over the full row log masked by the live set.
    #[test]
    fn append_tombstone_churn_matches_brute(
        flat in prop::collection::vec(-4.0f64..4.0, 24..360),
        extra_flat in prop::collection::vec(-4.0f64..4.0, 8..200),
        ops in prop::collection::vec(any::<u64>(), 4..48),
        dim in 1usize..9,
        eps in 0.1f64..2.5,
    ) {
        let mut rows = into_rows(&flat, dim);
        if rows.len() < 2 {
            return Ok(());
        }
        let mut extras = into_rows(&extra_flat, dim);
        let m = FeatureMatrix::from_rows(rows.clone());
        let mut index = build_index(&m);
        let mut active = vec![true; rows.len()];
        for &op in &ops {
            if op % 3 == 0 && !extras.is_empty() {
                let row = extras.pop().expect("checked non-empty");
                let id = index.append(&row);
                prop_assert_eq!(id as usize, rows.len(), "append id = prior len");
                rows.push(row);
                active.push(true);
            } else {
                let slot = (op / 3) as usize % rows.len();
                prop_assert_eq!(index.tombstone(slot as u32), active[slot]);
                active[slot] = false;
            }
        }
        prop_assert_eq!(index.len(), rows.len());
        prop_assert_eq!(index.n_active(), active.iter().filter(|&&a| a).count());
        for (slot, &live) in active.iter().enumerate() {
            prop_assert_eq!(index.is_active(slot as u32), live);
        }
        let all = FeatureMatrix::from_rows(rows.clone());
        for q in [0usize, rows.len() / 2, rows.len() - 1] {
            let query = rows[q].clone();
            assert_query_parity(&index, &all, Some(&active), &query, eps)?;
        }
        if let Some(live) = active.iter().position(|&a| a) {
            let mut got = Vec::new();
            index.within_row_into(live as u32, eps, false, &mut got);
            prop_assert_eq!(got, brute_within(&all, &rows[live], eps, false, Some(&active)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `close_pairs` degrees and the replayed pair stream match the O(n²)
    /// reference (scan kernel per row, inclusive threshold, a < b), with
    /// tombstoned slots invisible — including after appends.
    #[test]
    fn close_pairs_match_pairwise_brute(
        flat in prop::collection::vec(-4.0f64..4.0, 16..320),
        extra_flat in prop::collection::vec(-4.0f64..4.0, 0..60),
        dim in 1usize..7,
        eps in 0.2f64..2.5,
        kill in any::<u64>(),
    ) {
        let rows = into_rows(&flat, dim);
        if rows.len() < 3 {
            return Ok(());
        }
        let m = FeatureMatrix::from_rows(rows.clone());
        for pivots in [1usize, 4] {
            let mut index = PivotIndex::with_pivots(&m, pivots);
            let mut rows = rows.clone();
            for extra in into_rows(&extra_flat, dim) {
                index.append(&extra);
                rows.push(extra);
            }
            // Tombstone roughly a quarter of slots, xorshift-driven.
            let mut state = kill | 1;
            let mut active = vec![true; rows.len()];
            for (slot, live) in active.iter_mut().enumerate() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(4) {
                    index.tombstone(slot as u32);
                    *live = false;
                }
            }
            let all = FeatureMatrix::from_rows(rows.clone());
            let mut degrees = vec![0u32; index.len()];
            let sweep = index.close_pairs(eps, &mut degrees);
            let mut want_pairs = Vec::new();
            let mut want_deg = vec![0u32; rows.len()];
            for i in 0..rows.len() {
                if !active[i] {
                    continue;
                }
                let mut hits = Vec::new();
                scan_rows_within::<false>(dim, &rows[i], all.flat(), eps * eps, |k| {
                    hits.push(k);
                });
                for j in hits {
                    if j > i && active[j] {
                        want_pairs.push((i as u32, j as u32));
                        want_deg[i] += 1;
                        want_deg[j] += 1;
                    }
                }
            }
            prop_assert_eq!(sweep.close_pair_count(), want_pairs.len());
            prop_assert_eq!(&degrees, &want_deg);
            let mut got_pairs = Vec::new();
            index.replay_close_pairs(&sweep, &mut |a, b| got_pairs.push((a, b)));
            got_pairs.sort_unstable();
            want_pairs.sort_unstable();
            prop_assert_eq!(got_pairs, want_pairs);
        }
    }
}

/// Append churn heavy enough to trigger the tail re-sort (the tail is
/// folded back into the sorted segment once it outgrows a quarter of
/// it): the merge must fire, must not leave the tail at full churn
/// length, and parity with brute force must hold across the re-sorted
/// layout — including tombstones landing on both segment and tail rows
/// between merges.
#[test]
fn tail_resort_churn_matches_brute() {
    let mut state = 0xC0FF_EE00_u64 | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let dim = 5;
    let gen_row = |next: &mut dyn FnMut() -> u64| -> Vec<f64> {
        (0..dim)
            .map(|_| (next() % 4000) as f64 / 500.0 - 4.0)
            .collect()
    };
    let mut rows: Vec<Vec<f64>> = (0..64).map(|_| gen_row(&mut next)).collect();
    let m = FeatureMatrix::from_rows(rows.clone());
    let mut index = PivotIndex::with_pivots(&m, 4);
    let mut active = vec![true; rows.len()];
    // 4× the original segment in appends, interleaved with tombstones:
    // enough churn that the quarter-of-segment trigger must fire.
    for i in 0..256 {
        let row = gen_row(&mut next);
        index.append(&row);
        rows.push(row);
        active.push(true);
        if i % 5 == 2 {
            let slot = (next() as usize) % rows.len();
            if active[slot] {
                index.tombstone(slot as u32);
                active[slot] = false;
            }
        }
    }
    assert!(
        index.resorts() >= 1,
        "256 appends over a 64-row segment must re-sort the tail"
    );
    assert!(
        index.tail_len() < 256,
        "tail must shrink when merges fire (len {})",
        index.tail_len()
    );
    let all = FeatureMatrix::from_rows(rows.clone());
    for q in (0..rows.len()).step_by(13) {
        for eps in [0.4, 1.3, 2.9] {
            assert_query_parity(&index, &all, Some(&active), &rows[q], eps)
                .unwrap_or_else(|e| panic!("q={q} eps={eps}: {e}"));
        }
    }
}

/// Rebuilding from scratch over the mutated row set (minus tombstones)
/// gives the same answers as the churned index — the append/tombstone
/// path introduces no drift relative to a fresh build.
#[test]
fn churned_index_equals_fresh_rebuild() {
    let mut state = 0x5EED_1234_u64 | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let dim = 6;
    let mut rows: Vec<Vec<f64>> = (0..300)
        .map(|_| {
            (0..dim)
                .map(|_| (next() % 2000) as f64 / 250.0 - 4.0)
                .collect()
        })
        .collect();
    let m = FeatureMatrix::from_rows(rows.clone());
    let mut churned = build_index(&m);
    let mut active = vec![true; rows.len()];
    for _ in 0..120 {
        let r = next();
        if r % 2 == 0 {
            let row: Vec<f64> = (0..dim)
                .map(|_| (next() % 2000) as f64 / 250.0 - 4.0)
                .collect();
            churned.append(&row);
            rows.push(row);
            active.push(true);
        } else {
            let slot = (r / 2) as usize % rows.len();
            churned.tombstone(slot as u32);
            active[slot] = false;
        }
    }
    // Fresh build over the same log with the same tombstones applied.
    let all = FeatureMatrix::from_rows(rows.clone());
    let mut fresh = build_index(&all);
    for (slot, &live) in active.iter().enumerate() {
        if !live {
            fresh.tombstone(slot as u32);
        }
    }
    let (mut a, mut b) = (Vec::new(), Vec::new());
    let (mut ka, mut kb) = (Vec::new(), Vec::new());
    for q in (0..rows.len()).step_by(17) {
        for eps in [0.3, 1.1, 2.7] {
            churned.within_into(&rows[q], eps, false, &mut a);
            fresh.within_into(&rows[q], eps, false, &mut b);
            assert_eq!(a, b, "within parity at q={q} eps={eps}");
        }
        churned.nearest_into(&rows[q], 5, &mut ka);
        fresh.nearest_into(&rows[q], 5, &mut kb);
        assert_eq!(ka, kb, "nearest parity at q={q}");
    }
}
