//! Parallel-vs-serial determinism for the whole planning pipeline.
//!
//! The kernel layer shards feature extraction, clustering, top-k
//! selection and the covering sweep across threads. Every shard computes
//! a pure per-element function, so the planner's output must be **bit
//! identical** whether it runs on one thread or many — the property the
//! serving layer's reproducible-answers guarantee rests on. These tests
//! pin it for every strategy combination of Table I.

use batcher_core::batching::{make_batches, BatchingStrategy, ClusteringKind};
use batcher_core::plan::{plan_question_batches, BatchPlanConfig};
use batcher_core::selection::SelectionStrategy;
use batcher_core::{DistanceKind, ExtractorKind, FeatureSpace};
use datagen::{generate, DatasetKind};
use embed::par::with_max_threads;
use er_core::{EntityPair, LabeledPair};

fn fixtures() -> (Vec<LabeledPair>, Vec<LabeledPair>) {
    let pairs = generate(DatasetKind::Beer, 3).pairs().to_vec();
    let pool = pairs[..48].to_vec();
    let questions = pairs[48..120].to_vec();
    (pool, questions)
}

#[test]
fn plan_is_bit_identical_across_thread_counts() {
    let (pool, questions) = fixtures();
    let q: Vec<&EntityPair> = questions.iter().map(|p| &p.pair).collect();
    let p: Vec<&LabeledPair> = pool.iter().collect();
    for batching in BatchingStrategy::ALL {
        for selection in SelectionStrategy::ALL {
            for clustering in [ClusteringKind::Dbscan, ClusteringKind::KMeans] {
                let config = BatchPlanConfig {
                    batching,
                    selection,
                    clustering,
                    seed: 17,
                    ..BatchPlanConfig::default()
                };
                let parallel = plan_question_batches(&q, &p, &config);
                let serial = with_max_threads(1, || plan_question_batches(&q, &p, &config));
                assert_eq!(
                    parallel, serial,
                    "{batching:?}/{selection:?}/{clustering:?} differs across thread counts"
                );
                let two_threads = with_max_threads(2, || plan_question_batches(&q, &p, &config));
                assert_eq!(
                    parallel, two_threads,
                    "{batching:?}/{selection:?}/{clustering:?} differs at 2 threads"
                );
            }
        }
    }
}

#[test]
fn plan_is_bit_identical_for_every_extractor_and_distance() {
    let (pool, questions) = fixtures();
    let q: Vec<&EntityPair> = questions.iter().map(|p| &p.pair).collect();
    let p: Vec<&LabeledPair> = pool.iter().collect();
    for extractor in ExtractorKind::ALL {
        for distance in [DistanceKind::Euclidean, DistanceKind::Cosine] {
            let config =
                BatchPlanConfig { extractor, distance, seed: 5, ..BatchPlanConfig::default() };
            let parallel = plan_question_batches(&q, &p, &config);
            let serial = with_max_threads(1, || plan_question_batches(&q, &p, &config));
            assert_eq!(
                parallel, serial,
                "{extractor:?}/{distance:?} differs across thread counts"
            );
        }
    }
}

#[test]
fn batches_are_bit_identical_across_thread_counts() {
    // make_batches in isolation (the clustering stage), both algorithms.
    let (_, questions) = fixtures();
    let space = FeatureSpace::extract(
        questions.iter().map(|p| &p.pair),
        ExtractorKind::LevenshteinRatio,
        DistanceKind::Euclidean,
    );
    for strategy in BatchingStrategy::ALL {
        for clustering in [ClusteringKind::Dbscan, ClusteringKind::KMeans] {
            let parallel = make_batches(&space, strategy, clustering, 8, 23);
            let serial = with_max_threads(1, || make_batches(&space, strategy, clustering, 8, 23));
            assert_eq!(
                parallel, serial,
                "{strategy:?}/{clustering:?} batches differ across thread counts"
            );
        }
    }
}
