//! Property-based tests for the BatchER framework invariants: batching
//! partitions, cover correctness, and selection plan sanity.

use batcher_core::batching::make_batches;
use batcher_core::selection::{select_demonstrations, SelectionParams};
use batcher_core::{
    greedy_weighted_cover, BatchingStrategy, ClusteringKind, DistanceKind, FeatureSpace,
    SelectionStrategy,
};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every batching strategy partitions the question set exactly —
    /// no question lost, none duplicated, no batch oversized (§II-C:
    /// ∪ B_i = M).
    #[test]
    fn batching_partitions(
        points in arb_points(60),
        batch_size in 1usize..12,
        seed in any::<u64>(),
    ) {
        let space = FeatureSpace::from_vectors(points.clone(), DistanceKind::Euclidean);
        for strategy in BatchingStrategy::ALL {
            for clustering in [ClusteringKind::Dbscan, ClusteringKind::KMeans] {
                let batches = make_batches(&space, strategy, clustering, batch_size, seed);
                let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
                seen.sort_unstable();
                let expect: Vec<usize> = (0..points.len()).collect();
                prop_assert_eq!(&seen, &expect, "{:?}/{:?} not a partition", strategy, clustering);
                prop_assert!(
                    batches.iter().all(|b| b.len() <= batch_size),
                    "{:?} produced an oversized batch", strategy
                );
            }
        }
    }

    /// Greedy set cover always covers every coverable element and never
    /// selects a zero-gain candidate.
    #[test]
    fn cover_correct(
        coverage in prop::collection::vec(
            prop::collection::vec(0u32..40, 0..12),
            1..25,
        ),
    ) {
        let n = 40usize;
        let picked = greedy_weighted_cover(n, &coverage, |_| 1.0);
        // Selected set covers exactly the union of all candidate coverage.
        let mut covered = vec![false; n];
        for &d in &picked {
            for &e in &coverage[d] {
                covered[e as usize] = true;
            }
        }
        let mut coverable = vec![false; n];
        for c in &coverage {
            for &e in c {
                coverable[e as usize] = true;
            }
        }
        prop_assert_eq!(covered, coverable);
        // No duplicates in the selection.
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), picked.len());
    }

    /// Selection plans are sane for every strategy: per-batch lists are
    /// duplicate-free subsets of the labeled set (for relevance-driven
    /// strategies), and the labeled set indexes into the pool.
    #[test]
    fn selection_plans_sane(
        q_points in arb_points(30),
        pool_points in arb_points(30),
        seed in any::<u64>(),
    ) {
        let questions = FeatureSpace::from_vectors(q_points.clone(), DistanceKind::Euclidean);
        let pool = FeatureSpace::from_vectors(pool_points.clone(), DistanceKind::Euclidean);
        let batches = make_batches(
            &questions,
            BatchingStrategy::Random,
            ClusteringKind::Dbscan,
            4,
            seed,
        );
        for strategy in SelectionStrategy::ALL {
            let plan = select_demonstrations(
                strategy,
                &questions,
                &pool,
                &batches,
                SelectionParams { k: 3, cover_percentile: 20.0, seed },
                |_| 1.0,
            );
            prop_assert_eq!(plan.per_batch.len(), batches.len());
            for (bi, demos) in plan.per_batch.iter().enumerate() {
                let mut uniq = demos.clone();
                uniq.sort_unstable();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), demos.len(), "{:?} batch {} has duplicate demos", strategy, bi);
                for &d in demos {
                    prop_assert!(d < pool_points.len(), "{:?} demo index out of pool", strategy);
                    prop_assert!(
                        plan.labeled.contains(&d),
                        "{:?} prompts an unlabeled demo", strategy
                    );
                }
            }
            prop_assert!(plan.labeled.iter().all(|&d| d < pool_points.len()));
        }
    }

    /// The covering threshold is monotone in the percentile.
    #[test]
    fn percentile_monotone(points in arb_points(40), seed in any::<u64>()) {
        let space = FeatureSpace::from_vectors(points, DistanceKind::Euclidean);
        let p5 = space.distance_percentile(5.0, 10_000, seed);
        let p50 = space.distance_percentile(50.0, 10_000, seed);
        let p95 = space.distance_percentile(95.0, 10_000, seed);
        prop_assert!(p5 <= p50 && p50 <= p95);
    }
}
