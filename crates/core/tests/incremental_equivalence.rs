//! The plan-equivalence harness for the incremental planner.
//!
//! The contract under test: at every epoch, for every strategy
//! combination, a [`PlanState`] maintained through arbitrary
//! insert/retire sequences produces a plan **equal** to a from-scratch
//! [`plan_with_prepared_pool_pinned`] over the same active questions (in
//! canonical key order) with the state's frozen thresholds pinned — same
//! clusterings, same batch memberships, same selected demonstrations —
//! on both the single-core and the multi-thread kernel paths, and under
//! both metric-index configurations (`IndexMode::Auto` pivot tables and
//! the `IndexMode::Sweep` single-pivot reference).

use batcher_core::incremental::{PlanKind, PlanState};
use batcher_core::{
    plan_with_prepared_pool_pinned, BatchPlanConfig, BatchingStrategy, ClusteringKind,
    PlanThresholds, PreparedPool, QuestionBatchPlan, SelectionStrategy,
};
use datagen::{generate, DatasetKind};
use embed::par::with_max_threads;
use embed::{with_index_mode, IndexMode};
use er_core::{EntityPair, LabeledPair};
use proptest::prelude::*;

/// Deterministic corpus shared by all cases: a labeled pool plus a bank
/// of candidate questions to insert from.
fn corpus() -> (Vec<LabeledPair>, Vec<EntityPair>) {
    let d = generate(DatasetKind::Beer, 13);
    let pairs = d.pairs().to_vec();
    let pool = pairs[..30].to_vec();
    let questions: Vec<EntityPair> = pairs[30..130].iter().map(|p| p.pair.clone()).collect();
    (pool, questions)
}

const BATCHINGS: [BatchingStrategy; 3] = BatchingStrategy::ALL;
const SELECTIONS: [SelectionStrategy; 4] = SelectionStrategy::ALL;
const CLUSTERINGS: [ClusteringKind; 2] = [ClusteringKind::Dbscan, ClusteringKind::KMeans];

fn config(combo: usize) -> BatchPlanConfig {
    BatchPlanConfig {
        batching: BATCHINGS[combo % 3],
        selection: SELECTIONS[(combo / 3) % 4],
        clustering: CLUSTERINGS[(combo / 12) % 2],
        batch_size: 4,
        k: 3,
        cover_percentile: 20.0,
        ..BatchPlanConfig::default()
    }
}

/// From-scratch reference over `live` (sorted by key) with the state's
/// frozen thresholds pinned.
fn reference(
    pool: &PreparedPool,
    config: &BatchPlanConfig,
    live: &[(u64, EntityPair)],
    thresholds: PlanThresholds,
    seed: u64,
) -> QuestionBatchPlan {
    let mut sorted: Vec<&(u64, EntityPair)> = live.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let refs: Vec<&EntityPair> = sorted.iter().map(|(_, p)| p).collect();
    let config = BatchPlanConfig { seed, ..*config };
    plan_with_prepared_pool_pinned(&refs, pool, &config, thresholds)
}

/// Replays an op sequence against one strategy combination, checking
/// equivalence (and single-core/multi-thread agreement) at every epoch.
///
/// Ops: each step inserts `ins` fresh questions and retires `ret` live
/// ones (chosen by `pick`), then plans. Returns how many epochs ran each
/// path so callers can assert both were exercised.
fn replay(combo: usize, steps: &[(u8, u8, u8)]) -> (u32, u32) {
    let (pool, bank) = corpus();
    replay_corpus(config(combo), combo, steps, &pool, &bank)
}

fn replay_config(config: BatchPlanConfig, combo: usize, steps: &[(u8, u8, u8)]) -> (u32, u32) {
    let (pool, bank) = corpus();
    replay_corpus(config, combo, steps, &pool, &bank)
}

fn replay_corpus(
    config: BatchPlanConfig,
    combo: usize,
    steps: &[(u8, u8, u8)],
    pool: &[LabeledPair],
    bank: &[EntityPair],
) -> (u32, u32) {
    let pool_refs: Vec<&LabeledPair> = pool.iter().collect();
    let prepared = PreparedPool::prepare(&pool_refs, config.extractor, config.distance);
    let mut state = PlanState::from_prepared(prepared.clone(), config);
    let mut live: Vec<(u64, EntityPair)> = Vec::new();
    let mut next = 0usize;
    let mut fulls = 0u32;
    let mut incrementals = 0u32;

    for (e, &(ins, ret, pick)) in steps.iter().enumerate() {
        for _ in 0..ins {
            if next >= bank.len() {
                break;
            }
            // Non-monotonic keys so canonical order differs from
            // insertion order.
            let key = (next as u64).wrapping_mul(0x9E37_79B9) % 1_000_003;
            if state.insert(key, &bank[next]) {
                live.push((key, bank[next].clone()));
            }
            next += 1;
        }
        for r in 0..ret {
            if live.is_empty() {
                break;
            }
            let at = (pick as usize + r as usize * 7) % live.len();
            let (key, _) = live.swap_remove(at);
            assert!(state.retire(key));
        }

        let seed = 11 + e as u64 * 31;
        let sweep_clone = state.clone();
        let epoch = state.plan(seed);
        match epoch.kind {
            PlanKind::Full => fulls += 1,
            PlanKind::Incremental => incrementals += 1,
        }
        let frozen = {
            let s = state.stats();
            PlanThresholds { eps: s.eps, cover_t: s.cover_t }
        };
        let expect = reference(&prepared, &config, &live, frozen, seed);
        assert_eq!(
            epoch.plan, expect,
            "combo {combo} epoch {e} ({:?}) diverged from pinned from-scratch plan",
            epoch.kind
        );
        let mut keys: Vec<u64> = live.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(epoch.keys, keys, "combo {combo} epoch {e} key order");

        // The metric index is a pure accelerator: forcing the
        // single-pivot sweep reference must reproduce the epoch exactly.
        let sweep_epoch = with_index_mode(IndexMode::Sweep, || {
            let mut s = sweep_clone;
            s.plan(seed)
        });
        assert_eq!(
            epoch, sweep_epoch,
            "combo {combo} epoch {e}: index mode changed the plan"
        );

        // The serial kernel path must agree with the parallel one.
        let serial = with_max_threads(1, || state.clone().plan(seed ^ 0x5a5a));
        let parallel = state.clone().plan(seed ^ 0x5a5a);
        assert_eq!(
            serial, parallel,
            "combo {combo} epoch {e}: serial/parallel epoch plans diverged"
        );
    }
    (fulls, incrementals)
}

/// Every strategy combination, one fixed mixed sequence that exercises
/// both the full and the incremental path.
#[test]
fn all_strategy_combinations_stay_equivalent() {
    // Epochs: big initial insert (full), small deltas (incremental),
    // then a large delta (full fallback), then small deltas again.
    let steps: [(u8, u8, u8); 6] = [
        (40, 0, 0),
        (2, 1, 3),
        (1, 2, 5),
        (30, 10, 1),
        (0, 2, 2),
        (2, 0, 0),
    ];
    for combo in 0..24 {
        let (fulls, incrementals) = replay(combo, &steps);
        assert!(fulls >= 2, "combo {combo}: full fallback never triggered");
        assert!(
            incrementals >= 3,
            "combo {combo}: incremental path never exercised"
        );
    }
}

/// Retiring everything and refilling keeps the state usable and
/// equivalent (empty epochs included).
#[test]
fn drain_and_refill_stays_equivalent() {
    let steps: [(u8, u8, u8); 4] = [(12, 0, 0), (0, 12, 0), (8, 0, 0), (1, 1, 4)];
    let (fulls, _) = replay(0, &steps);
    assert!(fulls >= 2);
}

/// The cosine-distance coverage path (insert's `cosine_dists_to_all`
/// scan vs `compute_coverage`'s non-Euclidean fallback sweep) must be
/// bit-for-bit interchangeable too — covering + diversity under
/// `DistanceKind::Cosine`, with incremental epochs exercised.
#[test]
fn cosine_distance_stays_equivalent() {
    let steps: [(u8, u8, u8); 4] = [(40, 0, 0), (2, 1, 3), (1, 2, 5), (2, 0, 1)];
    for clustering in CLUSTERINGS {
        let config = BatchPlanConfig {
            batching: BatchingStrategy::Diversity,
            selection: SelectionStrategy::Covering,
            distance: batcher_core::DistanceKind::Cosine,
            clustering,
            batch_size: 4,
            k: 3,
            cover_percentile: 20.0,
            ..BatchPlanConfig::default()
        };
        let (fulls, incrementals) = replay_config(config, 99, &steps);
        assert!(fulls >= 1);
        assert!(
            incrementals >= 3,
            "cosine incremental path never exercised ({clustering:?})"
        );
    }
}

/// The gated index paths join the harness at planning scale: a corpus
/// big enough to cross both performance gates (≥256 live slots for the
/// incremental ε-graph index, ≥512 demonstrations for the pooled top-k
/// index) stays bit-identical to the pinned from-scratch reference —
/// per-epoch, serial == parallel, and `Auto` == `Sweep` index modes —
/// for combos covering every selection strategy and both clusterings.
#[test]
fn index_gated_paths_stay_equivalent_at_scale() {
    let d = generate(DatasetKind::FodorsZagats, 7);
    let pairs = d.pairs().to_vec();
    let pool = pairs[..520].to_vec();
    let bank: Vec<EntityPair> = pairs[520..800].iter().map(|p| p.pair.clone()).collect();
    // Epoch 1: 250 inserts (full plan, below the slot gate). Epoch 2-3:
    // small deltas that push the live set past 256, building and then
    // reusing the incremental slot index.
    let steps: [(u8, u8, u8); 3] = [(250, 0, 0), (10, 2, 3), (10, 3, 1)];
    for combo in [0usize, 4, 8, 21] {
        let (fulls, incrementals) = replay_corpus(config(combo), combo, &steps, &pool, &bank);
        assert!(fulls >= 1, "combo {combo}: no full plan at scale");
        assert!(
            incrementals >= 2,
            "combo {combo}: gated incremental path never exercised at scale"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random insert/retire sequences: the incremental `PlanState` output
    /// equals a from-scratch pinned plan at every epoch, for a sampled
    /// strategy combination per case.
    #[test]
    fn random_sequences_stay_equivalent(
        combo in 0usize..24,
        steps in prop::collection::vec((0u8..12, 0u8..6, any::<u8>()), 1..7),
    ) {
        replay(combo, &steps);
    }
}
