//! Feature extractors (§III-B): structure-aware and semantics-based.

use embed::{Embedder, EmbedderConfig};
use er_core::EntityPair;
use text_sim::{jaccard_tokens, levenshtein_ratio, normalize};

/// Which feature extractor to use (Table VII's three variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtractorKind {
    /// Structure-aware with per-attribute Levenshtein ratio (Eq. 5) —
    /// BATCHER-LR, the paper's best.
    LevenshteinRatio,
    /// Structure-aware with per-attribute Jaccard (Eq. 4) — BATCHER-JAC.
    Jaccard,
    /// Semantics-based: embedding of the serialized pair — BATCHER-SEM.
    Semantic,
}

impl ExtractorKind {
    /// All extractors in Table VII order.
    pub const ALL: [ExtractorKind; 3] = [
        ExtractorKind::LevenshteinRatio,
        ExtractorKind::Jaccard,
        ExtractorKind::Semantic,
    ];

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            ExtractorKind::LevenshteinRatio => "BATCHER-LR",
            ExtractorKind::Jaccard => "BATCHER-JAC",
            ExtractorKind::Semantic => "BATCHER-SEM",
        }
    }
}

/// Distance function over feature vectors. The paper uses Euclidean
/// ("achieves the best performance among others", §III-B); cosine is
/// provided for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// Euclidean (L2) distance — the paper's default.
    Euclidean,
    /// Cosine distance `1 − cos`.
    Cosine,
}

impl DistanceKind {
    /// Distance between two equal-length vectors.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceKind::Euclidean => embed::euclidean_distance(a, b),
            DistanceKind::Cosine => embed::cosine_distance(a, b),
        }
    }
}

/// A materialized feature space: one vector per pair, plus the distance
/// function to compare them.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    vectors: Vec<Vec<f64>>,
    distance: DistanceKind,
}

impl FeatureSpace {
    /// Extracts features for `pairs` with the given extractor.
    ///
    /// The semantic embedder runs at 64 dimensions — enough for lexical
    /// clustering while keeping the O(|pool|·|questions|) covering
    /// distance sweep tractable on the largest benchmark (DBLP-Scholar).
    pub fn extract<'p, I>(pairs: I, extractor: ExtractorKind, distance: DistanceKind) -> Self
    where
        I: IntoIterator<Item = &'p EntityPair>,
    {
        let vectors = match extractor {
            ExtractorKind::LevenshteinRatio => pairs
                .into_iter()
                .map(|p| structure_vector(p, levenshtein_ratio))
                .collect(),
            ExtractorKind::Jaccard => pairs
                .into_iter()
                .map(|p| structure_vector(p, jaccard_tokens))
                .collect(),
            ExtractorKind::Semantic => {
                let embedder = Embedder::new(EmbedderConfig { dim: 64, ..Default::default() });
                pairs
                    .into_iter()
                    .map(|p| embedder.embed(&p.serialize()))
                    .collect()
            }
        };
        Self { vectors, distance }
    }

    /// Builds a feature space from precomputed vectors (used by tests and
    /// the ablation benches).
    pub fn from_vectors(vectors: Vec<Vec<f64>>, distance: DistanceKind) -> Self {
        Self { vectors, distance }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are present.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The feature vector of item `i`.
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.vectors[i]
    }

    /// All vectors.
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vectors
    }

    /// Distance between items `i` and `j` of this space.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.distance.distance(&self.vectors[i], &self.vectors[j])
    }

    /// Distance between item `i` of this space and item `j` of `other`
    /// (e.g. question ↔ demonstration). Spaces must share an extractor.
    pub fn cross_dist(&self, i: usize, other: &FeatureSpace, j: usize) -> f64 {
        self.distance.distance(&self.vectors[i], &other.vectors[j])
    }

    /// The `pct`-th percentile (0–100) of pairwise distances, estimated on
    /// at most `max_samples` deterministic index pairs. Used to derive the
    /// covering threshold `t` (§VI-A: the 8th percentile).
    pub fn distance_percentile(&self, pct: f64, max_samples: usize, seed: u64) -> f64 {
        let n = self.vectors.len();
        if n < 2 {
            return 0.0;
        }
        let total = n * (n - 1) / 2;
        let mut samples: Vec<f64> = Vec::new();
        if total <= max_samples {
            for i in 0..n {
                for j in (i + 1)..n {
                    samples.push(self.dist(i, j));
                }
            }
        } else {
            // Deterministic xorshift stream over index pairs.
            let mut state = seed | 1;
            let mut step = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..max_samples {
                let i = (step() % n as u64) as usize;
                let mut j = (step() % n as u64) as usize;
                if i == j {
                    j = (j + 1) % n;
                }
                samples.push(self.dist(i, j));
            }
        }
        samples.sort_by(f64::total_cmp);
        let rank = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[rank.min(samples.len() - 1)]
    }
}

/// Structure-aware vector: one similarity per aligned attribute
/// (Example 5: `v1 = [1, 0.73, 0.42]`).
fn structure_vector<F>(pair: &EntityPair, sim: F) -> Vec<f64>
where
    F: Fn(&str, &str) -> f64,
{
    let m = pair.a().schema().arity();
    (0..m)
        .map(|i| {
            let va = normalize(pair.a().value(i).unwrap_or(""));
            let vb = normalize(pair.b().value(i).unwrap_or(""));
            if va.is_empty() && vb.is_empty() {
                // Jointly missing: no evidence either way.
                0.5
            } else if va.is_empty() || vb.is_empty() {
                0.0
            } else {
                sim(&va, &vb)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};

    fn pairs() -> Vec<er_core::LabeledPair> {
        generate(DatasetKind::Beer, 5).pairs().to_vec()
    }

    #[test]
    fn structure_vectors_have_schema_arity() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::LevenshteinRatio,
            DistanceKind::Euclidean,
        );
        assert_eq!(space.len(), ps.len());
        assert_eq!(space.vector(0).len(), 4); // Beer has 4 attributes
        for v in space.vectors() {
            for &x in v {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn semantic_vectors_are_embeddings() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().take(10).map(|p| &p.pair),
            ExtractorKind::Semantic,
            DistanceKind::Cosine,
        );
        assert_eq!(space.vector(0).len(), 64);
    }

    #[test]
    fn matches_have_higher_structure_sims() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::LevenshteinRatio,
            DistanceKind::Euclidean,
        );
        let mean = |idx: Vec<usize>| -> f64 {
            let s: f64 = idx
                .iter()
                .map(|&i| space.vector(i).iter().sum::<f64>() / space.vector(i).len() as f64)
                .sum();
            s / idx.len() as f64
        };
        let match_idx: Vec<usize> = ps
            .iter()
            .enumerate()
            .filter(|(_, p)| p.label.is_match())
            .map(|(i, _)| i)
            .collect();
        let non_idx: Vec<usize> = ps
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.label.is_match())
            .map(|(i, _)| i)
            .collect();
        assert!(mean(match_idx) > mean(non_idx) + 0.1);
    }

    #[test]
    fn distance_kinds_differ() {
        let space = FeatureSpace::from_vectors(
            vec![vec![1.0, 0.0], vec![2.0, 0.0]],
            DistanceKind::Euclidean,
        );
        assert!((space.dist(0, 1) - 1.0).abs() < 1e-12);
        let cos =
            FeatureSpace::from_vectors(vec![vec![1.0, 0.0], vec![2.0, 0.0]], DistanceKind::Cosine);
        assert!(cos.dist(0, 1).abs() < 1e-12); // parallel vectors
    }

    #[test]
    fn percentile_monotone_and_bounded() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::LevenshteinRatio,
            DistanceKind::Euclidean,
        );
        let p8 = space.distance_percentile(8.0, 50_000, 1);
        let p50 = space.distance_percentile(50.0, 50_000, 1);
        let p100 = space.distance_percentile(100.0, 50_000, 1);
        assert!(p8 <= p50 && p50 <= p100);
        assert!(p8 >= 0.0);
    }

    #[test]
    fn percentile_deterministic() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::Jaccard,
            DistanceKind::Euclidean,
        );
        assert_eq!(
            space.distance_percentile(8.0, 1000, 9),
            space.distance_percentile(8.0, 1000, 9)
        );
    }

    #[test]
    fn degenerate_spaces() {
        let empty = FeatureSpace::from_vectors(vec![], DistanceKind::Euclidean);
        assert!(empty.is_empty());
        let single = FeatureSpace::from_vectors(vec![vec![1.0]], DistanceKind::Euclidean);
        assert_eq!(single.distance_percentile(8.0, 100, 1), 0.0);
    }

    #[test]
    fn extractor_names() {
        assert_eq!(ExtractorKind::LevenshteinRatio.name(), "BATCHER-LR");
        assert_eq!(ExtractorKind::ALL.len(), 3);
    }
}
