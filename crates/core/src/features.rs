//! Feature extractors (§III-B): structure-aware and semantics-based.
//!
//! A [`FeatureSpace`] stores its vectors in a contiguous row-major
//! [`FeatureMatrix`] (cached squared norms, batch kernels) rather than a
//! `Vec<Vec<f64>>`: every downstream consumer — DBSCAN region queries,
//! k-means assignment, the percentile threshold, top-k selection, the
//! covering sweep — streams over the same buffer. Extraction itself runs
//! in parallel shards (one pair's features never depend on another's).
//!
//! Hot-path comparisons use **ranking distances**
//! ([`FeatureSpace::ranking_cross_dists`]): squared Euclidean (no `sqrt`)
//! or plain cosine distance, both monotone in the true distance, so
//! thresholds are squared once ([`FeatureSpace::ranking_threshold`]) and
//! argmins/order statistics are unchanged.

use embed::matrix::FeatureMatrix;
use embed::par::par_map;
use embed::{Embedder, EmbedderConfig};
use er_core::EntityPair;
use text_sim::{jaccard_tokens, levenshtein_ratio, normalize};

/// Which feature extractor to use (Table VII's three variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtractorKind {
    /// Structure-aware with per-attribute Levenshtein ratio (Eq. 5) —
    /// BATCHER-LR, the paper's best.
    LevenshteinRatio,
    /// Structure-aware with per-attribute Jaccard (Eq. 4) — BATCHER-JAC.
    Jaccard,
    /// Semantics-based: embedding of the serialized pair — BATCHER-SEM.
    Semantic,
}

impl ExtractorKind {
    /// All extractors in Table VII order.
    pub const ALL: [ExtractorKind; 3] = [
        ExtractorKind::LevenshteinRatio,
        ExtractorKind::Jaccard,
        ExtractorKind::Semantic,
    ];

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            ExtractorKind::LevenshteinRatio => "BATCHER-LR",
            ExtractorKind::Jaccard => "BATCHER-JAC",
            ExtractorKind::Semantic => "BATCHER-SEM",
        }
    }
}

/// Distance function over feature vectors. The paper uses Euclidean
/// ("achieves the best performance among others", §III-B); cosine is
/// provided for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// Euclidean (L2) distance — the paper's default.
    Euclidean,
    /// Cosine distance `1 − cos`.
    Cosine,
}

impl DistanceKind {
    /// Distance between two equal-length vectors.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceKind::Euclidean => embed::euclidean_distance(a, b),
            DistanceKind::Cosine => embed::cosine_distance(a, b),
        }
    }
}

/// Minimum pairs per extraction shard: a structure vector costs a few µs
/// (Levenshtein over every attribute), an embedding tens of µs — 64 per
/// shard keeps spawn overhead under a percent.
const EXTRACT_MIN_PER_SHARD: usize = 64;

/// A materialized feature space: one vector per pair in a contiguous
/// matrix, plus the distance function to compare them.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    matrix: FeatureMatrix,
    distance: DistanceKind,
}

impl FeatureSpace {
    /// Extracts features for `pairs` with the given extractor, sharded
    /// across threads.
    ///
    /// The semantic embedder runs at 64 dimensions — enough for lexical
    /// clustering while keeping the pool×questions covering distance
    /// sweep tractable on the largest benchmark (DBLP-Scholar).
    pub fn extract<'p, I>(pairs: I, extractor: ExtractorKind, distance: DistanceKind) -> Self
    where
        I: IntoIterator<Item = &'p EntityPair>,
    {
        let pairs: Vec<&EntityPair> = pairs.into_iter().collect();
        let rows = match extractor {
            ExtractorKind::LevenshteinRatio => par_map(pairs.len(), EXTRACT_MIN_PER_SHARD, |i| {
                structure_vector(pairs[i], levenshtein_ratio)
            }),
            ExtractorKind::Jaccard => par_map(pairs.len(), EXTRACT_MIN_PER_SHARD, |i| {
                structure_vector(pairs[i], jaccard_tokens)
            }),
            ExtractorKind::Semantic => {
                let embedder = Embedder::new(EmbedderConfig { dim: 64, ..Default::default() });
                par_map(pairs.len(), EXTRACT_MIN_PER_SHARD, |i| {
                    embedder.embed(&pairs[i].serialize())
                })
            }
        };
        Self { matrix: FeatureMatrix::from_rows(rows), distance }
    }

    /// Builds a feature space from precomputed vectors (used by tests and
    /// the ablation benches).
    pub fn from_vectors(vectors: Vec<Vec<f64>>, distance: DistanceKind) -> Self {
        Self { matrix: FeatureMatrix::from_rows(vectors), distance }
    }

    /// Builds a feature space around an existing matrix (the incremental
    /// planner gathers cached rows into one contiguous buffer per epoch).
    pub(crate) fn from_matrix(matrix: FeatureMatrix, distance: DistanceKind) -> Self {
        Self { matrix, distance }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// True when no vectors are present.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The feature vector of item `i`.
    pub fn vector(&self, i: usize) -> &[f64] {
        self.matrix.row(i)
    }

    /// The backing contiguous matrix (the kernel consumers' entry point).
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.matrix
    }

    /// The configured distance function.
    pub fn distance_kind(&self) -> DistanceKind {
        self.distance
    }

    /// Distance between items `i` and `j` of this space.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        match self.distance {
            DistanceKind::Euclidean => self.matrix.sq_dist_rows(i, j).sqrt(),
            DistanceKind::Cosine => self.cosine_rows(i, &self.matrix, j),
        }
    }

    /// Distance between item `i` of this space and item `j` of `other`
    /// (e.g. question ↔ demonstration). Spaces must share an extractor.
    pub fn cross_dist(&self, i: usize, other: &FeatureSpace, j: usize) -> f64 {
        match self.distance {
            DistanceKind::Euclidean => {
                let x = self.matrix.row(i);
                other
                    .matrix
                    .sq_dist_to_row(x, self.matrix.sq_norm(i), j)
                    .sqrt()
            }
            DistanceKind::Cosine => self.cosine_rows(i, &other.matrix, j),
        }
    }

    fn cosine_rows(&self, i: usize, other: &FeatureMatrix, j: usize) -> f64 {
        let na = self.matrix.sq_norm(i).sqrt();
        let nb = other.sq_norm(j).sqrt();
        if na == 0.0 || nb == 0.0 {
            1.0
        } else {
            1.0 - embed::dot(self.matrix.row(i), other.row(j)) / (na * nb)
        }
    }

    /// Fills `out[j]` with the **ranking distance** from item `i` of this
    /// space to item `j` of `other`: squared Euclidean or cosine
    /// distance. Ranking distances order exactly like true distances;
    /// compare them against [`FeatureSpace::ranking_threshold`], never
    /// against raw distances.
    pub fn ranking_cross_dists(&self, i: usize, other: &FeatureSpace, out: &mut [f64]) {
        match self.distance {
            DistanceKind::Euclidean => other.matrix.sq_dists_to_all(self.matrix.row(i), out),
            DistanceKind::Cosine => other.matrix.cosine_dists_to_all(self.matrix.row(i), out),
        }
    }

    /// Maps a true-distance threshold into ranking-distance units
    /// (squares it for Euclidean).
    pub fn ranking_threshold(&self, t: f64) -> f64 {
        match self.distance {
            DistanceKind::Euclidean => t * t,
            DistanceKind::Cosine => t,
        }
    }

    /// The `pct`-th percentile (0–100) of pairwise distances, estimated on
    /// at most `max_samples` deterministic index pairs. Used to derive the
    /// covering threshold `t` (§VI-A: the 8th percentile).
    ///
    /// Selection runs on ranking distances with `select_nth_unstable`
    /// (order statistics commute with the monotone `sqrt`), so no full
    /// sort and no per-sample `sqrt` ever happens.
    pub fn distance_percentile(&self, pct: f64, max_samples: usize, seed: u64) -> f64 {
        let n = self.matrix.len();
        if n < 2 {
            return 0.0;
        }
        let total = n * (n - 1) / 2;
        let mut samples: Vec<f64> = if total <= max_samples {
            // Exhaustive: row i contributes pairs (i, i+1..n); rows are
            // computed in parallel, concatenated in row order. The
            // percentile is an order statistic, so sample order is
            // irrelevant anyway — this just keeps the buffer identical to
            // the serial enumeration.
            let row_dists = par_map(n, 8, |i| {
                let mut row = vec![0.0f64; n - 1 - i];
                for (slot, j) in row.iter_mut().zip(i + 1..n) {
                    *slot = self.ranking_dist_rows(i, j);
                }
                row
            });
            let mut out = Vec::with_capacity(total);
            for row in row_dists {
                out.extend_from_slice(&row);
            }
            out
        } else {
            // Deterministic xorshift stream over index pairs.
            let mut state = seed | 1;
            let mut step = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            (0..max_samples)
                .map(|_| {
                    let i = (step() % n as u64) as usize;
                    // Redraw collisions so every off-diagonal pair stays
                    // equally likely (the old `(j + 1) % n` remap skewed
                    // mass onto successor pairs).
                    let j = loop {
                        let j = (step() % n as u64) as usize;
                        if j != i {
                            break j;
                        }
                    };
                    self.ranking_dist_rows(i, j)
                })
                .collect()
        };
        let rank =
            (((pct / 100.0) * (samples.len() - 1) as f64).round() as usize).min(samples.len() - 1);
        let (_, value, _) = samples.select_nth_unstable_by(rank, f64::total_cmp);
        match self.distance {
            DistanceKind::Euclidean => value.sqrt(),
            DistanceKind::Cosine => *value,
        }
    }

    /// Ranking distance between two rows of this space.
    fn ranking_dist_rows(&self, i: usize, j: usize) -> f64 {
        match self.distance {
            DistanceKind::Euclidean => self.matrix.sq_dist_rows(i, j),
            DistanceKind::Cosine => self.cosine_rows(i, &self.matrix, j),
        }
    }
}

/// Extracts the feature vector of a single pair — bit-identical to the
/// row [`FeatureSpace::extract`] produces for the same pair (every
/// extractor is a pure per-pair function), so rows cached one at a time
/// by the incremental planner interleave exactly with batch-extracted
/// spaces.
pub(crate) fn extract_row(pair: &EntityPair, extractor: ExtractorKind) -> Vec<f64> {
    match extractor {
        ExtractorKind::LevenshteinRatio => structure_vector(pair, levenshtein_ratio),
        ExtractorKind::Jaccard => structure_vector(pair, jaccard_tokens),
        ExtractorKind::Semantic => {
            let embedder = Embedder::new(EmbedderConfig { dim: 64, ..Default::default() });
            embedder.embed(&pair.serialize())
        }
    }
}

/// Structure-aware vector: one similarity per aligned attribute
/// (Example 5: `v1 = [1, 0.73, 0.42]`).
fn structure_vector<F>(pair: &EntityPair, sim: F) -> Vec<f64>
where
    F: Fn(&str, &str) -> f64,
{
    let m = pair.a().schema().arity();
    (0..m)
        .map(|i| {
            let va = normalize(pair.a().value(i).unwrap_or(""));
            let vb = normalize(pair.b().value(i).unwrap_or(""));
            if va.is_empty() && vb.is_empty() {
                // Jointly missing: no evidence either way.
                0.5
            } else if va.is_empty() || vb.is_empty() {
                0.0
            } else {
                sim(&va, &vb)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};

    fn pairs() -> Vec<er_core::LabeledPair> {
        generate(DatasetKind::Beer, 5).pairs().to_vec()
    }

    #[test]
    fn structure_vectors_have_schema_arity() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::LevenshteinRatio,
            DistanceKind::Euclidean,
        );
        assert_eq!(space.len(), ps.len());
        assert_eq!(space.vector(0).len(), 4); // Beer has 4 attributes
        for v in space.matrix().rows() {
            for &x in v {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn semantic_vectors_are_embeddings() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().take(10).map(|p| &p.pair),
            ExtractorKind::Semantic,
            DistanceKind::Cosine,
        );
        assert_eq!(space.vector(0).len(), 64);
    }

    #[test]
    fn extraction_parallel_matches_serial() {
        let ps = pairs();
        for extractor in ExtractorKind::ALL {
            let parallel = FeatureSpace::extract(
                ps.iter().map(|p| &p.pair),
                extractor,
                DistanceKind::Euclidean,
            );
            let serial = embed::par::with_max_threads(1, || {
                FeatureSpace::extract(
                    ps.iter().map(|p| &p.pair),
                    extractor,
                    DistanceKind::Euclidean,
                )
            });
            assert_eq!(
                parallel.matrix(),
                serial.matrix(),
                "{extractor:?} extraction differs across thread counts"
            );
        }
    }

    #[test]
    fn matches_have_higher_structure_sims() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::LevenshteinRatio,
            DistanceKind::Euclidean,
        );
        let mean = |idx: Vec<usize>| -> f64 {
            let s: f64 = idx
                .iter()
                .map(|&i| space.vector(i).iter().sum::<f64>() / space.vector(i).len() as f64)
                .sum();
            s / idx.len() as f64
        };
        let match_idx: Vec<usize> = ps
            .iter()
            .enumerate()
            .filter(|(_, p)| p.label.is_match())
            .map(|(i, _)| i)
            .collect();
        let non_idx: Vec<usize> = ps
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.label.is_match())
            .map(|(i, _)| i)
            .collect();
        assert!(mean(match_idx) > mean(non_idx) + 0.1);
    }

    #[test]
    fn distance_kinds_differ() {
        let space = FeatureSpace::from_vectors(
            vec![vec![1.0, 0.0], vec![2.0, 0.0]],
            DistanceKind::Euclidean,
        );
        assert!((space.dist(0, 1) - 1.0).abs() < 1e-12);
        let cos =
            FeatureSpace::from_vectors(vec![vec![1.0, 0.0], vec![2.0, 0.0]], DistanceKind::Cosine);
        assert!(cos.dist(0, 1).abs() < 1e-12); // parallel vectors
    }

    #[test]
    fn ranking_distances_order_like_true_distances() {
        let space = FeatureSpace::from_vectors(
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![3.0, 4.0],
                vec![0.1, 0.0],
            ],
            DistanceKind::Euclidean,
        );
        let other = FeatureSpace::from_vectors(
            vec![vec![0.0, 0.1], vec![2.0, 2.0], vec![5.0, 5.0]],
            DistanceKind::Euclidean,
        );
        let mut ranking = vec![0.0; other.len()];
        space.ranking_cross_dists(0, &other, &mut ranking);
        let true_d: Vec<f64> = (0..other.len())
            .map(|j| space.cross_dist(0, &other, j))
            .collect();
        for j in 0..other.len() {
            assert!((ranking[j] - true_d[j] * true_d[j]).abs() < 1e-12);
        }
        // The threshold maps consistently: d < t ⟺ ranking < ranking_threshold(t).
        let t = 2.9;
        for j in 0..other.len() {
            assert_eq!(
                true_d[j] < t,
                ranking[j] < space.ranking_threshold(t),
                "threshold inconsistency at {j}"
            );
        }
    }

    #[test]
    fn percentile_monotone_and_bounded() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::LevenshteinRatio,
            DistanceKind::Euclidean,
        );
        let p8 = space.distance_percentile(8.0, 50_000, 1);
        let p50 = space.distance_percentile(50.0, 50_000, 1);
        let p100 = space.distance_percentile(100.0, 50_000, 1);
        assert!(p8 <= p50 && p50 <= p100);
        assert!(p8 >= 0.0);
    }

    #[test]
    fn percentile_deterministic() {
        let ps = pairs();
        let space = FeatureSpace::extract(
            ps.iter().map(|p| &p.pair),
            ExtractorKind::Jaccard,
            DistanceKind::Euclidean,
        );
        assert_eq!(
            space.distance_percentile(8.0, 1000, 9),
            space.distance_percentile(8.0, 1000, 9)
        );
        // And across thread counts (the exhaustive branch shards by row).
        assert_eq!(
            space.distance_percentile(8.0, 1_000_000, 9),
            embed::par::with_max_threads(1, || space.distance_percentile(8.0, 1_000_000, 9))
        );
    }

    #[test]
    fn degenerate_spaces() {
        let empty = FeatureSpace::from_vectors(vec![], DistanceKind::Euclidean);
        assert!(empty.is_empty());
        let single = FeatureSpace::from_vectors(vec![vec![1.0]], DistanceKind::Euclidean);
        assert_eq!(single.distance_percentile(8.0, 100, 1), 0.0);
    }

    #[test]
    fn extractor_names() {
        assert_eq!(ExtractorKind::LevenshteinRatio.name(), "BATCHER-LR");
        assert_eq!(ExtractorKind::ALL.len(), 3);
    }
}
