//! Prompt construction (Fig. 1 layout) for standard and batch prompting.
//!
//! The emitted line shapes (`D<i>: ... => yes/no`, `Q<i>: ...`) are the
//! contract the LLM simulator's fuzzy parser recognizes — and are close to
//! the published BatchER prompt templates the real GPT endpoints consumed.

use er_core::LabeledPair;

/// The task description heading every prompt (the `Desc` term of Eq. 2).
pub fn task_description(domain: &str) -> String {
    format!(
        "This is an entity resolution task in the {domain} domain: decide \
         whether the two entity descriptions separated by [SEP] refer to \
         the same real-world entity."
    )
}

/// Builds a (batch) prompt from a task description, labeled
/// demonstrations and serialized questions.
///
/// With a single question this is exactly standard prompting (Fig. 1a);
/// with `b` questions it is batch prompting (Fig. 1b).
pub fn build_batch_prompt(
    description: &str,
    demos: &[&LabeledPair],
    questions: &[String],
) -> String {
    let mut out = String::with_capacity(256 + demos.len() * 128 + questions.len() * 128);
    out.push_str(description);
    out.push_str("\n\n");
    if !demos.is_empty() {
        out.push_str("Demonstrations:\n");
        for (i, d) in demos.iter().enumerate() {
            let verdict = if d.label.is_match() { "yes" } else { "no" };
            out.push_str(&format!(
                "D{}: {} => {verdict}\n",
                i + 1,
                d.pair.serialize()
            ));
        }
        out.push('\n');
    }
    out.push_str("Questions:\n");
    for (i, q) in questions.iter().enumerate() {
        out.push_str(&format!("Q{}: {q}\n", i + 1));
    }
    out.push('\n');
    if questions.len() == 1 {
        out.push_str("Answer in the form \"Q1: yes\" or \"Q1: no\".");
    } else {
        out.push_str(&format!(
            "For each of the {} questions, answer on its own line in the \
             form \"Qi: yes\" or \"Qi: no\".",
            questions.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};
    use llm::parse::parse_prompt;

    #[test]
    fn prompt_roundtrips_through_llm_parser() {
        let d = generate(DatasetKind::Beer, 1);
        let demos: Vec<&LabeledPair> = d.pairs().iter().take(3).collect();
        let questions: Vec<String> = d.pairs()[3..7].iter().map(|p| p.pair.serialize()).collect();
        let prompt = build_batch_prompt(&task_description("Beer"), &demos, &questions);
        let parsed = parse_prompt(&prompt);
        assert_eq!(parsed.demos.len(), 3);
        assert_eq!(parsed.questions.len(), 4);
        for (demo, parsed_demo) in demos.iter().zip(&parsed.demos) {
            assert_eq!(demo.label.is_match(), parsed_demo.label);
        }
        assert!(parsed.task_description.contains("entity resolution"));
    }

    #[test]
    fn single_question_is_standard_prompting() {
        let d = generate(DatasetKind::Beer, 1);
        let questions = vec![d.pairs()[0].pair.serialize()];
        let prompt = build_batch_prompt(&task_description("Beer"), &[], &questions);
        assert!(prompt.contains("Q1:"));
        assert!(!prompt.contains("Q2:"));
        assert!(prompt.contains("\"Q1: yes\""));
    }

    #[test]
    fn batch_instruction_mentions_count() {
        let d = generate(DatasetKind::Beer, 1);
        let questions: Vec<String> = d.pairs()[..8].iter().map(|p| p.pair.serialize()).collect();
        let prompt = build_batch_prompt(&task_description("Beer"), &[], &questions);
        assert!(prompt.contains("8 questions"));
    }

    #[test]
    fn no_demos_section_when_empty() {
        let prompt = build_batch_prompt("desc", &[], &["a [SEP] b".to_owned()]);
        assert!(!prompt.contains("Demonstrations:"));
    }

    #[test]
    fn batch_prompt_is_cheaper_per_question_than_standard() {
        // The core economics of the paper (Example 3): per-question tokens
        // shrink as the batch amortizes description + demonstrations.
        let d = generate(DatasetKind::WalmartAmazon, 1);
        let demos: Vec<&LabeledPair> = d.pairs().iter().take(8).collect();
        let desc = task_description("Electronics");

        let batch_qs: Vec<String> = d.pairs()[8..16]
            .iter()
            .map(|p| p.pair.serialize())
            .collect();
        let batch_prompt = build_batch_prompt(&desc, &demos, &batch_qs);
        let batch_tokens = llm::count_tokens(&batch_prompt) as f64 / 8.0;

        let single_prompt = build_batch_prompt(&desc, &demos, &batch_qs[..1]);
        let single_tokens = llm::count_tokens(&single_prompt) as f64;

        let saving = single_tokens / batch_tokens;
        assert!(
            saving > 3.0,
            "batch amortization too weak: {saving:.2}x (single {single_tokens}, batch/q {batch_tokens})"
        );
    }
}
