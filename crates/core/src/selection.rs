//! Demonstration selection (§IV): fixed, top-k-batch, top-k-question and
//! covering-based strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cover::{batch_covering, demonstration_set_generation};
use crate::features::FeatureSpace;

/// The four selection strategies of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// `k` random demonstrations shared by every batch (§IV-A).
    Fixed,
    /// `k` nearest demonstrations per batch under
    /// `dist*(B, d) = min_{q∈B} dist(q, d)` (Eq. 6, §IV-B).
    TopKBatch,
    /// Nearest demonstrations per *question*, unioned per batch (§IV-C).
    TopKQuestion,
    /// The paper's covering-based strategy (§IV-D, §V).
    Covering,
}

impl SelectionStrategy {
    /// All strategies in Table IV column order.
    pub const ALL: [SelectionStrategy; 4] = [
        SelectionStrategy::Fixed,
        SelectionStrategy::TopKBatch,
        SelectionStrategy::TopKQuestion,
        SelectionStrategy::Covering,
    ];

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::Fixed => "Fix",
            SelectionStrategy::TopKBatch => "Topk-batch",
            SelectionStrategy::TopKQuestion => "Topk-question",
            SelectionStrategy::Covering => "Cover",
        }
    }
}

/// The output of demonstration selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionPlan {
    /// Pool indices to include in each batch's prompt, in prompt order.
    pub per_batch: Vec<Vec<usize>>,
    /// Unique pool indices that must be human-labeled (drives labeling
    /// cost). For covering this is the full generated demonstration set,
    /// which phase 2 then allocates per batch.
    pub labeled: Vec<usize>,
    /// The covering threshold `t` actually used (None for non-covering
    /// strategies) — surfaced for diagnostics and the ablation bench.
    pub threshold: Option<f64>,
}

/// Parameters shared by all selection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SelectionParams {
    /// Demonstrations per batch for fixed / top-k-batch; for
    /// top-k-question, `max(1, k / batch_size)` per question.
    pub k: usize,
    /// Percentile (0–100) of pairwise question distances defining the
    /// covering threshold `t` (§VI-A uses the 8th percentile).
    pub cover_percentile: f64,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for SelectionParams {
    fn default() -> Self {
        Self { k: 8, cover_percentile: 8.0, seed: 42 }
    }
}

/// Selects demonstrations for every batch.
///
/// * `questions` / `pool` — feature spaces over the question set and the
///   unlabeled demonstration pool (same extractor).
/// * `batches` — question indices per batch, from
///   [`crate::batching::make_batches`].
/// * `demo_tokens(d)` — token count of pool demo `d`, the weight used by
///   batch covering.
pub fn select_demonstrations<W>(
    strategy: SelectionStrategy,
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
    demo_tokens: W,
) -> SelectionPlan
where
    W: Fn(usize) -> f64,
{
    assert!(params.k > 0, "k must be positive");
    match strategy {
        SelectionStrategy::Fixed => fixed(pool, batches, params),
        SelectionStrategy::TopKBatch => topk_batch(questions, pool, batches, params),
        SelectionStrategy::TopKQuestion => topk_question(questions, pool, batches, params),
        SelectionStrategy::Covering => covering(questions, pool, batches, params, demo_tokens),
    }
}

fn fixed(pool: &FeatureSpace, batches: &[Vec<usize>], params: SelectionParams) -> SelectionPlan {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let k = params.k.min(pool.len());
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    // Partial Fisher-Yates: the first k slots become the sample.
    for i in 0..k {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    let demos: Vec<usize> = indices[..k].to_vec();
    SelectionPlan { per_batch: vec![demos.clone(); batches.len()], labeled: demos, threshold: None }
}

fn topk_batch(
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
) -> SelectionPlan {
    let k = params.k.min(pool.len());
    let mut per_batch = Vec::with_capacity(batches.len());
    let mut labeled: Vec<usize> = Vec::new();
    for batch in batches {
        // dist*(B, d) = min over questions in the batch (Eq. 6).
        let mut scored: Vec<(f64, usize)> = (0..pool.len())
            .map(|d| {
                let dist = batch
                    .iter()
                    .map(|&q| questions.cross_dist(q, pool, d))
                    .fold(f64::INFINITY, f64::min);
                (dist, d)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let demos: Vec<usize> = scored[..k].iter().map(|&(_, d)| d).collect();
        labeled.extend(&demos);
        per_batch.push(demos);
    }
    labeled.sort_unstable();
    labeled.dedup();
    SelectionPlan { per_batch, labeled, threshold: None }
}

fn topk_question(
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
) -> SelectionPlan {
    let mut per_batch = Vec::with_capacity(batches.len());
    let mut labeled: Vec<usize> = Vec::new();
    for batch in batches {
        // k per question so the per-batch total stays comparable to the
        // other strategies (Fig. 5 uses k = 1 at batch size 8).
        let k_q = (params.k / batch.len().max(1)).max(1).min(pool.len());
        let mut demos: Vec<usize> = Vec::new();
        for &q in batch {
            let mut scored: Vec<(f64, usize)> = (0..pool.len())
                .map(|d| (questions.cross_dist(q, pool, d), d))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for &(_, d) in &scored[..k_q] {
                if !demos.contains(&d) {
                    demos.push(d);
                }
            }
        }
        labeled.extend(&demos);
        per_batch.push(demos);
    }
    labeled.sort_unstable();
    labeled.dedup();
    SelectionPlan { per_batch, labeled, threshold: None }
}

fn covering<W>(
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
    demo_tokens: W,
) -> SelectionPlan
where
    W: Fn(usize) -> f64,
{
    // t = the configured percentile of pairwise question distances
    // (§VI-A: 8th percentile balances labeling cost against accuracy).
    let t = questions
        .distance_percentile(params.cover_percentile, 200_000, params.seed)
        .max(1e-9);

    // Phase 1: one demonstration set covering all questions.
    let demo_set = demonstration_set_generation(questions.len(), pool.len(), |d, q| {
        questions.cross_dist(q, pool, d) < t
    });

    // Phase 2: per batch, the cheapest (token-weighted) covering subset.
    let mut per_batch = Vec::with_capacity(batches.len());
    for batch in batches {
        let picked = batch_covering(
            batch.len(),
            &demo_set,
            |d, qi| questions.cross_dist(batch[qi], pool, d) < t,
            &demo_tokens,
        );
        let mut demos: Vec<usize> = picked.iter().map(|&i| demo_set[i]).collect();
        if demos.is_empty() && !demo_set.is_empty() {
            // Uncoverable batch (all its questions beyond t from every
            // demo): fall back to the nearest labeled demo so the prompt
            // still carries one worked example.
            let nearest = demo_set
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = batch
                        .iter()
                        .map(|&q| questions.cross_dist(q, pool, a))
                        .fold(f64::INFINITY, f64::min);
                    let db = batch
                        .iter()
                        .map(|&q| questions.cross_dist(q, pool, b))
                        .fold(f64::INFINITY, f64::min);
                    da.total_cmp(&db)
                })
                .expect("demo_set checked non-empty");
            demos.push(nearest);
        }
        per_batch.push(demos);
    }
    SelectionPlan { per_batch, labeled: demo_set, threshold: Some(t) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::DistanceKind;

    /// Questions at 0..6 on a line; pool demos at 0.2, 1.1, 3.9, 5.2, 40.
    fn spaces() -> (FeatureSpace, FeatureSpace) {
        let questions = FeatureSpace::from_vectors(
            (0..6).map(|q| vec![q as f64]).collect(),
            DistanceKind::Euclidean,
        );
        let pool = FeatureSpace::from_vectors(
            vec![vec![0.2], vec![1.1], vec![3.9], vec![5.2], vec![40.0]],
            DistanceKind::Euclidean,
        );
        (questions, pool)
    }

    fn batches() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2], vec![3, 4, 5]]
    }

    const PARAMS: SelectionParams = SelectionParams { k: 2, cover_percentile: 30.0, seed: 7 };

    #[test]
    fn fixed_uses_same_demos_everywhere() {
        let (q, p) = spaces();
        let plan =
            select_demonstrations(SelectionStrategy::Fixed, &q, &p, &batches(), PARAMS, |_| {
                1.0
            });
        assert_eq!(plan.per_batch.len(), 2);
        assert_eq!(plan.per_batch[0], plan.per_batch[1]);
        assert_eq!(plan.labeled.len(), 2);
        assert!(plan.threshold.is_none());
    }

    #[test]
    fn topk_batch_picks_nearest_by_min_distance() {
        let (q, p) = spaces();
        let plan = select_demonstrations(
            SelectionStrategy::TopKBatch,
            &q,
            &p,
            &batches(),
            PARAMS,
            |_| 1.0,
        );
        // Batch {0,1,2}: nearest demos under dist* are 0 (0.2 from q0) and
        // 1 (0.1 from q1); selection order follows increasing distance.
        let sorted = |v: &[usize]| {
            let mut v = v.to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&plan.per_batch[0]), vec![0, 1]);
        // Batch {3,4,5}: nearest are 2 (3.9) and 3 (5.2).
        assert_eq!(sorted(&plan.per_batch[1]), vec![2, 3]);
        // The far demo (40.0) is never labeled.
        assert!(!plan.labeled.contains(&4));
    }

    #[test]
    fn topk_question_covers_each_question() {
        let (q, p) = spaces();
        let plan = select_demonstrations(
            SelectionStrategy::TopKQuestion,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 3, ..PARAMS },
            |_| 1.0,
        );
        // k_q = max(1, 3/3) = 1: each question contributes its nearest demo.
        // Questions 0,1 -> demo 0 or 1; question 2 -> demo 2 (|2-1.1|=0.9
        // vs |2-3.9|=1.9 -> actually demo 1). Just assert structure:
        for (batch, demos) in batches().iter().zip(&plan.per_batch) {
            assert!(!demos.is_empty());
            assert!(demos.len() <= batch.len());
            // No duplicates within a batch's demo list.
            let mut d = demos.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), demos.len());
        }
    }

    #[test]
    fn covering_labels_fewer_than_topk_question() {
        let (q, p) = spaces();
        let topk = select_demonstrations(
            SelectionStrategy::TopKQuestion,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 6, ..PARAMS },
            |_| 1.0,
        );
        let cover = select_demonstrations(
            SelectionStrategy::Covering,
            &q,
            &p,
            &batches(),
            SelectionParams { cover_percentile: 40.0, ..PARAMS },
            |_| 1.0,
        );
        assert!(
            cover.labeled.len() <= topk.labeled.len(),
            "cover labeled {} > topk {}",
            cover.labeled.len(),
            topk.labeled.len()
        );
        assert!(cover.threshold.is_some());
    }

    #[test]
    fn covering_prefers_cheap_demos_in_batches() {
        // Phase 1 must keep both demos (each uniquely covers an outer
        // question); phase 2 must then allocate the cheaper one for the
        // middle question both demos cover.
        let questions = FeatureSpace::from_vectors(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            DistanceKind::Euclidean,
        );
        let pool = FeatureSpace::from_vectors(vec![vec![0.5], vec![1.5]], DistanceKind::Euclidean);
        // Question pairwise distances [1,1,2]; the 30th percentile is 1.0,
        // so "covers" means distance < 1.0: demo 0 ↔ {q0, q1}, demo 1 ↔
        // {q1, q2}.
        let plan = select_demonstrations(
            SelectionStrategy::Covering,
            &questions,
            &pool,
            &[vec![1]],
            SelectionParams { cover_percentile: 30.0, ..PARAMS },
            |d| if d == 0 { 100.0 } else { 10.0 },
        );
        assert_eq!(plan.labeled.len(), 2, "phase 1 should need both demos");
        // Phase 2 allocates the cheaper covering demo for the batch {q1}.
        assert_eq!(plan.per_batch[0], vec![1]);
    }

    #[test]
    fn covering_falls_back_for_uncoverable_batches() {
        // Question 5 sits far from every demo at a tiny threshold; its
        // batch still gets the nearest labeled demo.
        let questions =
            FeatureSpace::from_vectors(vec![vec![0.0], vec![100.0]], DistanceKind::Euclidean);
        let pool =
            FeatureSpace::from_vectors(vec![vec![0.001], vec![50.0]], DistanceKind::Euclidean);
        let plan = select_demonstrations(
            SelectionStrategy::Covering,
            &questions,
            &pool,
            &[vec![0], vec![1]],
            SelectionParams { cover_percentile: 5.0, ..PARAMS },
            |_| 1.0,
        );
        assert!(
            !plan.per_batch[1].is_empty(),
            "uncoverable batch left without demonstrations"
        );
    }

    #[test]
    fn k_clamped_to_pool_size() {
        let (q, p) = spaces();
        let plan = select_demonstrations(
            SelectionStrategy::Fixed,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 999, ..PARAMS },
            |_| 1.0,
        );
        assert_eq!(plan.labeled.len(), p.len());
    }

    #[test]
    fn deterministic_in_seed() {
        let (q, p) = spaces();
        for strategy in SelectionStrategy::ALL {
            let a = select_demonstrations(strategy, &q, &p, &batches(), PARAMS, |_| 1.0);
            let b = select_demonstrations(strategy, &q, &p, &batches(), PARAMS, |_| 1.0);
            assert_eq!(a, b, "{strategy:?} not deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let (q, p) = spaces();
        let _ = select_demonstrations(
            SelectionStrategy::Fixed,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 0, ..PARAMS },
            |_| 1.0,
        );
    }
}
