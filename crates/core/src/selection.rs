//! Demonstration selection (§IV): fixed, top-k-batch, top-k-question and
//! covering-based strategies.
//!
//! The relevance-driven strategies are distance sweeps over
//! question × pool, and run on the feature-matrix kernels: one-to-many
//! ranking distances (squared Euclidean — no `sqrt` in any hot loop),
//! `select_nth_unstable` top-k instead of full sorts, and one thread
//! shard per batch ([`embed::par`]). Each batch's result is a pure
//! function of the two spaces, so the parallel plan is bit-identical to
//! the serial one.

use embed::index::MetricIndex;
use embed::par::par_map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cover::{greedy_unit_cover, greedy_weighted_cover};
use crate::features::FeatureSpace;

/// The four selection strategies of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// `k` random demonstrations shared by every batch (§IV-A).
    Fixed,
    /// `k` nearest demonstrations per batch under
    /// `dist*(B, d) = min_{q∈B} dist(q, d)` (Eq. 6, §IV-B).
    TopKBatch,
    /// Nearest demonstrations per *question*, unioned per batch (§IV-C).
    TopKQuestion,
    /// The paper's covering-based strategy (§IV-D, §V).
    Covering,
}

impl SelectionStrategy {
    /// All strategies in Table IV column order.
    pub const ALL: [SelectionStrategy; 4] = [
        SelectionStrategy::Fixed,
        SelectionStrategy::TopKBatch,
        SelectionStrategy::TopKQuestion,
        SelectionStrategy::Covering,
    ];

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::Fixed => "Fix",
            SelectionStrategy::TopKBatch => "Topk-batch",
            SelectionStrategy::TopKQuestion => "Topk-question",
            SelectionStrategy::Covering => "Cover",
        }
    }
}

/// The output of demonstration selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionPlan {
    /// Pool indices to include in each batch's prompt, in prompt order.
    pub per_batch: Vec<Vec<usize>>,
    /// Unique pool indices that must be human-labeled (drives labeling
    /// cost). For covering this is the full generated demonstration set,
    /// which phase 2 then allocates per batch.
    pub labeled: Vec<usize>,
    /// The covering threshold `t` actually used (None for non-covering
    /// strategies) — surfaced for diagnostics and the ablation bench.
    pub threshold: Option<f64>,
}

/// Parameters shared by all selection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SelectionParams {
    /// Demonstrations per batch for fixed / top-k-batch; for
    /// top-k-question, `max(1, k / batch_size)` per question.
    pub k: usize,
    /// Percentile (0–100) of pairwise question distances defining the
    /// covering threshold `t` (§VI-A uses the 8th percentile).
    pub cover_percentile: f64,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for SelectionParams {
    fn default() -> Self {
        Self { k: 8, cover_percentile: 8.0, seed: 42 }
    }
}

/// Selects demonstrations for every batch.
///
/// * `questions` / `pool` — feature spaces over the question set and the
///   unlabeled demonstration pool (same extractor).
/// * `batches` — question indices per batch, from
///   [`crate::batching::make_batches`].
/// * `demo_tokens(d)` — token count of pool demo `d`, the weight used by
///   batch covering (`Sync`: batches are covered on shard threads).
pub fn select_demonstrations<W>(
    strategy: SelectionStrategy,
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
    demo_tokens: W,
) -> SelectionPlan
where
    W: Fn(usize) -> f64 + Sync,
{
    select_demonstrations_pinned(
        strategy,
        questions,
        pool,
        batches,
        params,
        None,
        demo_tokens,
    )
}

/// Like [`select_demonstrations`], but with an optional pinned covering
/// threshold `t` (`threshold_override`) instead of deriving it from the
/// question-distance percentile. Only the covering strategy consults the
/// override; callers that freeze `t` across incremental re-plans pass the
/// recorded value so the plan stays equivalent to the one that froze it.
pub fn select_demonstrations_pinned<W>(
    strategy: SelectionStrategy,
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
    threshold_override: Option<f64>,
    demo_tokens: W,
) -> SelectionPlan
where
    W: Fn(usize) -> f64 + Sync,
{
    assert!(params.k > 0, "k must be positive");
    match strategy {
        SelectionStrategy::Fixed => fixed(pool, batches, params),
        SelectionStrategy::TopKBatch => topk_batch(questions, pool, batches, params),
        SelectionStrategy::TopKQuestion => topk_question(questions, pool, batches, params),
        SelectionStrategy::Covering => {
            let t = threshold_override.unwrap_or_else(|| covering_threshold(questions, params));
            let coverage = compute_coverage(questions, pool, t);
            covering_with_coverage(questions, pool, batches, &coverage, t, demo_tokens)
        }
    }
}

/// The covering threshold `t`: the configured percentile of pairwise
/// question distances (§VI-A: 8th percentile), floored away from zero.
pub(crate) fn covering_threshold(questions: &FeatureSpace, params: SelectionParams) -> f64 {
    questions
        .distance_percentile(params.cover_percentile, 200_000, params.seed)
        .max(1e-9)
}

fn fixed(pool: &FeatureSpace, batches: &[Vec<usize>], params: SelectionParams) -> SelectionPlan {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let k = params.k.min(pool.len());
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    // Partial Fisher-Yates: the first k slots become the sample.
    for i in 0..k {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    let demos: Vec<usize> = indices[..k].to_vec();
    SelectionPlan { per_batch: vec![demos.clone(); batches.len()], labeled: demos, threshold: None }
}

/// Pool size above which the relevance strategies route per-question
/// scoring through the shared metric index ([`embed::index`]); below it
/// one dense sweep is already cache-resident and the index build would
/// dominate. Both paths are bit-identical (the index is exact), so the
/// gate is a pure performance knob.
const TOPK_INDEX_MIN: usize = 512;

/// The `k` pool indices with the smallest ranking distances, ordered by
/// `(distance, index)` — the same order a full sort of `scored` would
/// put first, found via `select_nth_unstable` on the tail-partition
/// instead.
fn top_k_indices(scored: &mut [(f64, usize)], k: usize) -> Vec<usize> {
    let cmp = |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
    if k < scored.len() {
        scored.select_nth_unstable_by(k, cmp);
    }
    let head = &mut scored[..k];
    head.sort_unstable_by(cmp);
    head.iter().map(|&(_, d)| d).collect()
}

fn topk_batch(
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
) -> SelectionPlan {
    let k = params.k.min(pool.len());
    if k == 0 {
        return SelectionPlan {
            per_batch: vec![Vec::new(); batches.len()],
            labeled: Vec::new(),
            threshold: None,
        };
    }
    let euclidean = matches!(
        questions.distance_kind(),
        crate::features::DistanceKind::Euclidean
    );
    let index =
        (euclidean && pool.len() >= TOPK_INDEX_MIN).then(|| embed::build_index(pool.matrix()));
    // One shard per batch: each batch's sweep reads shared immutable
    // spaces and writes only its own result.
    let per_batch: Vec<Vec<usize>> = par_map(batches.len(), 1, |bi| {
        let batch = &batches[bi];
        if let Some(index) = index.as_ref().filter(|_| !batch.is_empty()) {
            // dist*(B, d) = min_q dist(q, d) (Eq. 6). The batch's top-k
            // under the min-fold is contained in the union of the
            // per-question top-k sets: if d's fold minimum is achieved
            // at question q but d is outside q's top-k, every member of
            // q's top-k folds to a value preceding d under `(value,
            // id)`, so d is outside the batch top-k too. Folding only
            // the observed (question, candidate) values therefore
            // reproduces every batch-top-k value exactly; unobserved
            // values can only overestimate a non-member, which cannot
            // promote it.
            let mut knn: Vec<(f64, u32)> = Vec::new();
            let mut pairs: Vec<(u32, f64)> = Vec::new();
            for &q in batch {
                index.nearest_into(questions.matrix().row(q), k, &mut knn);
                pairs.extend(knn.iter().map(|&(v, id)| (id, v)));
            }
            pairs.sort_unstable_by_key(|&(id, _)| id);
            let mut scored: Vec<(f64, usize)> = Vec::new();
            let mut i = 0;
            while i < pairs.len() {
                let id = pairs[i].0;
                // `f64::min` starting from +∞ skips NaNs exactly like
                // the dense fold below, and is order-free past that.
                let mut best = f64::INFINITY;
                while i < pairs.len() && pairs[i].0 == id {
                    best = best.min(pairs[i].1);
                    i += 1;
                }
                scored.push((best, id as usize));
            }
            top_k_indices(&mut scored, k)
        } else {
            // dist*(B, d) = min over questions in the batch (Eq. 6), as
            // an elementwise min of one-to-many ranking sweeps (min is
            // exact, so accumulation order cannot change the value).
            let mut best = vec![f64::INFINITY; pool.len()];
            let mut buf = vec![0.0f64; pool.len()];
            for &q in batch {
                questions.ranking_cross_dists(q, pool, &mut buf);
                for (slot, &v) in best.iter_mut().zip(&buf) {
                    *slot = slot.min(v);
                }
            }
            let mut scored: Vec<(f64, usize)> =
                best.into_iter().enumerate().map(|(d, v)| (v, d)).collect();
            top_k_indices(&mut scored, k)
        }
    });
    let mut labeled: Vec<usize> = per_batch.iter().flatten().copied().collect();
    labeled.sort_unstable();
    labeled.dedup();
    SelectionPlan { per_batch, labeled, threshold: None }
}

fn topk_question(
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    params: SelectionParams,
) -> SelectionPlan {
    if pool.is_empty() {
        return SelectionPlan {
            per_batch: vec![Vec::new(); batches.len()],
            labeled: Vec::new(),
            threshold: None,
        };
    }
    let euclidean = matches!(
        questions.distance_kind(),
        crate::features::DistanceKind::Euclidean
    );
    let index =
        (euclidean && pool.len() >= TOPK_INDEX_MIN).then(|| embed::build_index(pool.matrix()));
    let per_batch: Vec<Vec<usize>> = par_map(batches.len(), 1, |bi| {
        let batch = &batches[bi];
        // k per question so the per-batch total stays comparable to the
        // other strategies (Fig. 5 uses k = 1 at batch size 8).
        let k_q = (params.k / batch.len().max(1)).max(1).min(pool.len());
        let mut demos: Vec<usize> = Vec::new();
        if let Some(index) = &index {
            // The index's nearest list is ordered by `(value, id)` —
            // exactly the head the dense sweep's partial sort produces,
            // so the first-seen dedup below keeps the same demos in the
            // same order.
            let mut knn: Vec<(f64, u32)> = Vec::new();
            for &q in batch {
                index.nearest_into(questions.matrix().row(q), k_q, &mut knn);
                for &(_, d) in &knn {
                    let d = d as usize;
                    if !demos.contains(&d) {
                        demos.push(d);
                    }
                }
            }
        } else {
            let mut buf = vec![0.0f64; pool.len()];
            for &q in batch {
                questions.ranking_cross_dists(q, pool, &mut buf);
                let mut scored: Vec<(f64, usize)> = buf
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(d, v)| (v, d))
                    .collect();
                for d in top_k_indices(&mut scored, k_q) {
                    if !demos.contains(&d) {
                        demos.push(d);
                    }
                }
            }
        }
        demos
    });
    let mut labeled: Vec<usize> = per_batch.iter().flatten().copied().collect();
    labeled.sort_unstable();
    labeled.dedup();
    SelectionPlan { per_batch, labeled, threshold: None }
}

/// Phase-1 coverage lists: `coverage[d]` holds the question indices demo
/// `d` covers (distance strictly below `t`), in an arbitrary order — the
/// greedy gains and the phase-2 inversion are both order-free, which is
/// also what lets an incrementally maintained coverage cache substitute
/// for this sweep.
pub(crate) fn compute_coverage(
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    t: f64,
) -> Vec<Vec<u32>> {
    let t_rank = questions.ranking_threshold(t);

    // Phase 1 sweep: which questions each pool demo covers, demos
    // sharded across threads. Under the Euclidean metric each demo's
    // scan goes through the shared metric index over the question rows:
    // triangle-bound pruning in front of the same strict threshold
    // kernel the dense sweep runs — and the covering threshold is a
    // *low* percentile, so pruning is deep.
    let n_q = questions.len();
    let euclidean = matches!(
        questions.distance_kind(),
        crate::features::DistanceKind::Euclidean
    );
    if n_q == 0 {
        // Nothing to cover; the one-to-many sweeps below assume at least
        // one question row (the matrices' dimensions must line up).
        return vec![Vec::new(); pool.len()];
    }
    let index = euclidean.then(|| embed::build_index(questions.matrix()));
    par_map(pool.len(), 4, |d| {
        if let Some(index) = &index {
            let mut covered: Vec<u32> = Vec::new();
            index.within_into(pool.matrix().row(d), t, true, &mut covered);
            covered
        } else {
            let mut dists = vec![0.0f64; n_q];
            pool.ranking_cross_dists(d, questions, &mut dists);
            dists
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v < t_rank)
                .map(|(q, _)| q as u32)
                .collect()
        }
    })
}

/// The covering strategy downstream of coverage computation: phase-1
/// greedy demonstration-set generation, the phase-2 per-batch weighted
/// cover, and the nearest-demo fallback for uncoverable batches.
/// `coverage` must satisfy the [`compute_coverage`] contract for the same
/// `questions`/`pool`/`t` (computed fresh or maintained incrementally) —
/// the output is a pure, order-insensitive function of it.
pub(crate) fn covering_with_coverage<W>(
    questions: &FeatureSpace,
    pool: &FeatureSpace,
    batches: &[Vec<usize>],
    coverage: &[Vec<u32>],
    t: f64,
    demo_tokens: W,
) -> SelectionPlan
where
    W: Fn(usize) -> f64 + Sync,
{
    let n_q = questions.len();
    // Phase 1 cover: one demonstration set covering all questions.
    let demo_set = greedy_unit_cover(n_q, coverage);

    // Inverted coverage for phase 2: per question, the demo-set indices
    // covering it. Batch coverage then assembles by iterating each
    // batch's questions — no per-(demo, question) membership probes.
    let mut covering_demos: Vec<Vec<u32>> = vec![Vec::new(); n_q];
    for (di, &d) in demo_set.iter().enumerate() {
        for &q in &coverage[d] {
            covering_demos[q as usize].push(di as u32);
        }
    }

    // Phase 2: per batch, the cheapest (token-weighted) covering subset —
    // batches sharded across threads.
    let per_batch: Vec<Vec<usize>> = par_map(batches.len(), 1, |bi| {
        let batch = &batches[bi];
        let mut batch_cov: Vec<Vec<u32>> = vec![Vec::new(); demo_set.len()];
        for (qi, &q) in batch.iter().enumerate() {
            for &di in &covering_demos[q] {
                batch_cov[di as usize].push(qi as u32);
            }
        }
        let picked = greedy_weighted_cover(batch.len(), &batch_cov, |i| demo_tokens(demo_set[i]));
        let mut demos: Vec<usize> = picked.iter().map(|&i| demo_set[i]).collect();
        if demos.is_empty() && !demo_set.is_empty() {
            // Uncoverable batch (all its questions beyond t from every
            // demo): fall back to the nearest labeled demo so the prompt
            // still carries one worked example.
            let mut mins = vec![f64::INFINITY; demo_set.len()];
            let mut buf = vec![0.0f64; pool.len()];
            for &q in batch {
                questions.ranking_cross_dists(q, pool, &mut buf);
                for (slot, &d) in mins.iter_mut().zip(&demo_set) {
                    *slot = slot.min(buf[d]);
                }
            }
            // First minimum wins, like the scalar `min_by` scan did.
            let mut nearest = 0usize;
            for (i, &v) in mins.iter().enumerate() {
                if v < mins[nearest] {
                    nearest = i;
                }
            }
            demos.push(demo_set[nearest]);
        }
        demos
    });
    SelectionPlan { per_batch, labeled: demo_set, threshold: Some(t) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::DistanceKind;

    /// Questions at 0..6 on a line; pool demos at 0.2, 1.1, 3.9, 5.2, 40.
    fn spaces() -> (FeatureSpace, FeatureSpace) {
        let questions = FeatureSpace::from_vectors(
            (0..6).map(|q| vec![q as f64]).collect(),
            DistanceKind::Euclidean,
        );
        let pool = FeatureSpace::from_vectors(
            vec![vec![0.2], vec![1.1], vec![3.9], vec![5.2], vec![40.0]],
            DistanceKind::Euclidean,
        );
        (questions, pool)
    }

    fn batches() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2], vec![3, 4, 5]]
    }

    const PARAMS: SelectionParams = SelectionParams { k: 2, cover_percentile: 30.0, seed: 7 };

    #[test]
    fn fixed_uses_same_demos_everywhere() {
        let (q, p) = spaces();
        let plan =
            select_demonstrations(SelectionStrategy::Fixed, &q, &p, &batches(), PARAMS, |_| {
                1.0
            });
        assert_eq!(plan.per_batch.len(), 2);
        assert_eq!(plan.per_batch[0], plan.per_batch[1]);
        assert_eq!(plan.labeled.len(), 2);
        assert!(plan.threshold.is_none());
    }

    #[test]
    fn topk_batch_picks_nearest_by_min_distance() {
        let (q, p) = spaces();
        let plan = select_demonstrations(
            SelectionStrategy::TopKBatch,
            &q,
            &p,
            &batches(),
            PARAMS,
            |_| 1.0,
        );
        // Batch {0,1,2}: nearest demos under dist* are 0 (0.2 from q0) and
        // 1 (0.1 from q1); selection order follows increasing distance.
        let sorted = |v: &[usize]| {
            let mut v = v.to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&plan.per_batch[0]), vec![0, 1]);
        // Batch {3,4,5}: nearest are 2 (3.9) and 3 (5.2).
        assert_eq!(sorted(&plan.per_batch[1]), vec![2, 3]);
        // The far demo (40.0) is never labeled.
        assert!(!plan.labeled.contains(&4));
    }

    #[test]
    fn topk_question_covers_each_question() {
        let (q, p) = spaces();
        let plan = select_demonstrations(
            SelectionStrategy::TopKQuestion,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 3, ..PARAMS },
            |_| 1.0,
        );
        // k_q = max(1, 3/3) = 1: each question contributes its nearest demo.
        // Questions 0,1 -> demo 0 or 1; question 2 -> demo 2 (|2-1.1|=0.9
        // vs |2-3.9|=1.9 -> actually demo 1). Just assert structure:
        for (batch, demos) in batches().iter().zip(&plan.per_batch) {
            assert!(!demos.is_empty());
            assert!(demos.len() <= batch.len());
            // No duplicates within a batch's demo list.
            let mut d = demos.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), demos.len());
        }
    }

    #[test]
    fn covering_labels_fewer_than_topk_question() {
        let (q, p) = spaces();
        let topk = select_demonstrations(
            SelectionStrategy::TopKQuestion,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 6, ..PARAMS },
            |_| 1.0,
        );
        let cover = select_demonstrations(
            SelectionStrategy::Covering,
            &q,
            &p,
            &batches(),
            SelectionParams { cover_percentile: 40.0, ..PARAMS },
            |_| 1.0,
        );
        assert!(
            cover.labeled.len() <= topk.labeled.len(),
            "cover labeled {} > topk {}",
            cover.labeled.len(),
            topk.labeled.len()
        );
        assert!(cover.threshold.is_some());
    }

    #[test]
    fn covering_prefers_cheap_demos_in_batches() {
        // Phase 1 must keep both demos (each uniquely covers an outer
        // question); phase 2 must then allocate the cheaper one for the
        // middle question both demos cover.
        let questions = FeatureSpace::from_vectors(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            DistanceKind::Euclidean,
        );
        let pool = FeatureSpace::from_vectors(vec![vec![0.5], vec![1.5]], DistanceKind::Euclidean);
        // Question pairwise distances [1,1,2]; the 30th percentile is 1.0,
        // so "covers" means distance < 1.0: demo 0 ↔ {q0, q1}, demo 1 ↔
        // {q1, q2}.
        let plan = select_demonstrations(
            SelectionStrategy::Covering,
            &questions,
            &pool,
            &[vec![1]],
            SelectionParams { cover_percentile: 30.0, ..PARAMS },
            |d| if d == 0 { 100.0 } else { 10.0 },
        );
        assert_eq!(plan.labeled.len(), 2, "phase 1 should need both demos");
        // Phase 2 allocates the cheaper covering demo for the batch {q1}.
        assert_eq!(plan.per_batch[0], vec![1]);
    }

    #[test]
    fn covering_falls_back_for_uncoverable_batches() {
        // Question 5 sits far from every demo at a tiny threshold; its
        // batch still gets the nearest labeled demo.
        let questions =
            FeatureSpace::from_vectors(vec![vec![0.0], vec![100.0]], DistanceKind::Euclidean);
        let pool =
            FeatureSpace::from_vectors(vec![vec![0.001], vec![50.0]], DistanceKind::Euclidean);
        let plan = select_demonstrations(
            SelectionStrategy::Covering,
            &questions,
            &pool,
            &[vec![0], vec![1]],
            SelectionParams { cover_percentile: 5.0, ..PARAMS },
            |_| 1.0,
        );
        assert!(
            !plan.per_batch[1].is_empty(),
            "uncoverable batch left without demonstrations"
        );
    }

    #[test]
    fn k_clamped_to_pool_size() {
        let (q, p) = spaces();
        let plan = select_demonstrations(
            SelectionStrategy::Fixed,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 999, ..PARAMS },
            |_| 1.0,
        );
        assert_eq!(plan.labeled.len(), p.len());
    }

    #[test]
    fn deterministic_in_seed() {
        let (q, p) = spaces();
        for strategy in SelectionStrategy::ALL {
            let a = select_demonstrations(strategy, &q, &p, &batches(), PARAMS, |_| 1.0);
            let b = select_demonstrations(strategy, &q, &p, &batches(), PARAMS, |_| 1.0);
            assert_eq!(a, b, "{strategy:?} not deterministic");
        }
    }

    #[test]
    fn parallel_equals_serial_for_all_strategies() {
        let (q, p) = spaces();
        for strategy in SelectionStrategy::ALL {
            let parallel = select_demonstrations(strategy, &q, &p, &batches(), PARAMS, |_| 1.0);
            let serial = embed::par::with_max_threads(1, || {
                select_demonstrations(strategy, &q, &p, &batches(), PARAMS, |_| 1.0)
            });
            assert_eq!(
                parallel, serial,
                "{strategy:?} differs across thread counts"
            );
        }
    }

    /// Deterministic clustered vectors, the shape where pruning bites.
    fn scattered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f64 * 2.0;
                (0..dim).map(|_| blob + next() * 0.7).collect()
            })
            .collect()
    }

    #[test]
    fn index_routed_selection_matches_dense_sweep() {
        use embed::index::{with_index_mode, IndexMode};

        // Pool large enough to clear TOPK_INDEX_MIN, so the relevance
        // strategies actually take the index path; the expectations
        // below re-run the dense arithmetic by hand.
        let questions =
            FeatureSpace::from_vectors(scattered(40, 6, 0xA11CE), DistanceKind::Euclidean);
        let pool = FeatureSpace::from_vectors(
            scattered(TOPK_INDEX_MIN + 90, 6, 0xB0B),
            DistanceKind::Euclidean,
        );
        let batches: Vec<Vec<usize>> = (0..8).map(|b| (b * 5..(b + 1) * 5).collect()).collect();
        let params = SelectionParams { k: 7, cover_percentile: 12.0, seed: 3 };

        for strategy in [
            SelectionStrategy::TopKBatch,
            SelectionStrategy::TopKQuestion,
            SelectionStrategy::Covering,
        ] {
            let auto = with_index_mode(IndexMode::Auto, || {
                select_demonstrations(strategy, &questions, &pool, &batches, params, |_| 1.0)
            });
            let sweep = with_index_mode(IndexMode::Sweep, || {
                select_demonstrations(strategy, &questions, &pool, &batches, params, |_| 1.0)
            });
            assert_eq!(auto, sweep, "{strategy:?} differs across index modes");
        }

        // Top-k-batch against the dense min-fold reference.
        let plan = select_demonstrations(
            SelectionStrategy::TopKBatch,
            &questions,
            &pool,
            &batches,
            params,
            |_| 1.0,
        );
        for (bi, batch) in batches.iter().enumerate() {
            let mut best = vec![f64::INFINITY; pool.len()];
            let mut buf = vec![0.0f64; pool.len()];
            for &q in batch {
                questions.ranking_cross_dists(q, &pool, &mut buf);
                for (slot, &v) in best.iter_mut().zip(&buf) {
                    *slot = slot.min(v);
                }
            }
            let mut scored: Vec<(f64, usize)> =
                best.into_iter().enumerate().map(|(d, v)| (v, d)).collect();
            let expect = top_k_indices(&mut scored, params.k);
            assert_eq!(plan.per_batch[bi], expect, "batch {bi} top-k diverged");
        }

        // Top-k-question against the dense per-question partial sort.
        let plan = select_demonstrations(
            SelectionStrategy::TopKQuestion,
            &questions,
            &pool,
            &batches,
            params,
            |_| 1.0,
        );
        for (bi, batch) in batches.iter().enumerate() {
            let k_q = (params.k / batch.len().max(1)).max(1).min(pool.len());
            let mut expect: Vec<usize> = Vec::new();
            let mut buf = vec![0.0f64; pool.len()];
            for &q in batch {
                questions.ranking_cross_dists(q, &pool, &mut buf);
                let mut scored: Vec<(f64, usize)> = buf
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(d, v)| (v, d))
                    .collect();
                for d in top_k_indices(&mut scored, k_q) {
                    if !expect.contains(&d) {
                        expect.push(d);
                    }
                }
            }
            assert_eq!(
                plan.per_batch[bi], expect,
                "batch {bi} per-question diverged"
            );
        }

        // Coverage lists against the dense strict-threshold filter.
        let t = covering_threshold(&questions, params);
        let coverage = compute_coverage(&questions, &pool, t);
        let t_rank = questions.ranking_threshold(t);
        for (d, covered) in coverage.iter().enumerate() {
            let mut dists = vec![0.0f64; questions.len()];
            pool.ranking_cross_dists(d, &questions, &mut dists);
            let expect: Vec<u32> = dists
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v < t_rank)
                .map(|(q, _)| q as u32)
                .collect();
            assert_eq!(covered, &expect, "demo {d} coverage diverged");
        }
    }

    #[test]
    fn empty_question_space_yields_empty_plans() {
        // Regression: the covering pivot window must not be built over an
        // empty question matrix (its dimension is 0, mismatching pool
        // rows). Every strategy returns an empty-but-valid plan.
        let questions = FeatureSpace::from_vectors(vec![], DistanceKind::Euclidean);
        let pool = FeatureSpace::from_vectors(vec![vec![0.5], vec![1.5]], DistanceKind::Euclidean);
        for strategy in SelectionStrategy::ALL {
            let plan = select_demonstrations(strategy, &questions, &pool, &[], PARAMS, |_| 1.0);
            assert!(plan.per_batch.is_empty(), "{strategy:?} invented batches");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let (q, p) = spaces();
        let _ = select_demonstrations(
            SelectionStrategy::Fixed,
            &q,
            &p,
            &batches(),
            SelectionParams { k: 0, ..PARAMS },
            |_| 1.0,
        );
    }
}
