//! # BatchER — cost-effective batch prompting for entity resolution
//!
//! The paper's primary contribution (§II-§V): a framework that takes a
//! *question set* (unlabeled entity pairs to resolve) and an *unlabeled
//! demonstration pool*, and produces batch prompts for an LLM such that
//! matching accuracy stays high while API and labeling costs stay low.
//!
//! Pipeline (Fig. 2):
//!
//! 1. **Feature extraction** ([`features`]) — map each pair to a vector:
//!    structure-aware (per-attribute Levenshtein ratio or Jaccard) or
//!    semantics-based (sentence embedding of the serialized pair).
//! 2. **Question batching** ([`batching`]) — cluster questions (DBSCAN by
//!    default) and group them into batches: random, similarity-based, or
//!    diversity-based.
//! 3. **Demonstration selection** ([`selection`]) — per batch, choose
//!    demonstrations to label and include: fixed, top-k-batch,
//!    top-k-question, or the paper's covering-based strategy
//!    ([`cover`], Algorithm 1: greedy weighted set cover).
//! 4. **Prompt construction & execution** ([`prompt`], [`executor`]) —
//!    render the batch prompt, call the LLM through [`llm::ChatApi`],
//!    parse answers with retry/fallback handling.
//! 5. **Accounting** — F1 against gold labels plus API and labeling cost
//!    ledgers ([`er_core::CostLedger`]).
//!
//! [`runner`] wires the stages into one reproducible experiment run; the
//! design space of Table I is enumerable via [`RunConfig`].

pub mod batching;
pub mod cover;
pub mod estimate;
pub mod executor;
pub mod features;
pub mod incremental;
pub mod plan;
pub mod prompt;
pub mod runner;
pub mod selection;

pub use batching::{BatchingStrategy, ClusteringKind};
pub use cover::{
    batch_covering, demonstration_set_generation, greedy_unit_cover, greedy_weighted_cover,
};
pub use estimate::CostEstimate;
pub use executor::{ExecutionOutcome, Executor};
pub use features::{DistanceKind, ExtractorKind, FeatureSpace};
pub use incremental::{EpochPlan, PlanKind, PlanState, PlanStateStats};
pub use plan::{
    plan_question_batches, plan_with_prepared_pool, plan_with_prepared_pool_pinned,
    BatchPlanConfig, PlanThresholds, PreparedPool, QuestionBatchPlan,
};
pub use prompt::{build_batch_prompt, task_description};
pub use runner::{run, run_design_space_cell, run_on_split, RunConfig, RunResult};
pub use selection::SelectionStrategy;
