//! Incremental plan maintenance across question insertions/retirements.
//!
//! The serving layer re-plans on every coalesced flush; most flushes
//! change only a handful of questions relative to the previous plan.
//! Re-running the full featurize → percentile → DBSCAN → batch → covering
//! pipeline from scratch puts the whole O(n²) distance workload back on
//! the critical path each time. A [`PlanState`] instead **persists the
//! geometry** between plans and re-runs only the cheap combinatorial
//! passes:
//!
//! * **feature rows** — extracted once per question, appended to a
//!   slot-major buffer, tombstoned on retirement;
//! * **thresholds** — DBSCAN ε and the covering threshold `t` are derived
//!   on a *full* plan and frozen until the next one, so incremental
//!   epochs skip both percentile estimations;
//! * **ε-neighbor graph** — symmetric adjacency lists under the frozen ε,
//!   extended by one region query per insertion (dense scan for small
//!   states, the shared exact metric index — kept in append/tombstone
//!   lockstep with the slots — past `INSERT_INDEX_MIN`); labels are
//!   recomputed per epoch by an in-place union-find pass over the cached
//!   edges (no distance arithmetic, no allocation), reproducing
//!   [`cluster::dbscan_matrix`]'s output exactly;
//! * **coverage graph** — which pool demonstrations cover which questions
//!   under the frozen `t`, extended by one pool scan per insertion; the
//!   greedy covering selection re-runs over the cached lists.
//!
//! **Plan equivalence.** Every epoch's output equals a from-scratch
//! [`plan_with_prepared_pool_pinned`] over the same active questions (in
//! canonical key order) with the frozen thresholds pinned — same
//! clusterings, same batch memberships, same selected demonstrations.
//! The randomized harness in `tests/incremental_equivalence.rs` pins this
//! for every strategy combination at every epoch.
//!
//! **Fallback.** When the delta since the last plan exceeds a configured
//! fraction of the pool (or caches do not exist yet), the state runs a
//! full plan: thresholds re-derive from the current question set, caches
//! rebuild, and tombstoned slots compact away. Frozen thresholds thus
//! track distribution drift at the fallback cadence while small deltas
//! stay O(delta · scan) + O(cached graph).

use std::collections::HashMap;

use cluster::{dbscan_from_neighbor_lists, dbscan_neighbor_lists, Clustering};
use embed::index::{MetricIndex, PivotIndex};
use embed::matrix::{scan_rows_within, FeatureMatrix};
use er_core::{EntityPair, LabeledPair};

use crate::batching::{
    batches_for_clustering, cluster_questions_pinned, BatchingStrategy, ClusteringKind,
    DBSCAN_EPS_PERCENTILE, DBSCAN_MIN_PTS,
};
use crate::features::{extract_row, DistanceKind, FeatureSpace};
use crate::plan::{BatchPlanConfig, PreparedPool, QuestionBatchPlan};
use crate::selection::{
    covering_threshold, covering_with_coverage, select_demonstrations_pinned, SelectionParams,
    SelectionPlan, SelectionStrategy,
};

/// How a [`PlanState`] epoch was planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Thresholds re-derived, caches rebuilt, tombstones compacted.
    Full,
    /// Cached geometry reused; only combinatorial passes re-ran.
    Incremental,
}

impl PlanKind {
    /// Stable lowercase name for logs and stats.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Full => "full",
            PlanKind::Incremental => "incremental",
        }
    }
}

/// One epoch's output: the batch plan over the active questions in
/// canonical (ascending-key) order, plus the key at each question index.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// The plan; `plan.batches` indices refer to `keys`.
    pub plan: QuestionBatchPlan,
    /// `keys[i]` is the caller key of question index `i`.
    pub keys: Vec<u64>,
    /// Whether this epoch ran the full or the incremental path.
    pub kind: PlanKind,
    /// Questions inserted since the previous plan.
    pub inserted: usize,
    /// Questions retired since the previous plan.
    pub retired: usize,
}

/// Point-in-time [`PlanState`] accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanStateStats {
    /// Plans run in total.
    pub epochs: u64,
    /// Plans that took the full path.
    pub full_plans: u64,
    /// Plans that took the incremental path.
    pub incremental_plans: u64,
    /// Delta sizes of the most recent plan.
    pub last_inserted: u64,
    /// Delta sizes of the most recent plan.
    pub last_retired: u64,
    /// Wall time of the most recent plan, microseconds (insert/retire
    /// delta application is timed by the caller; this covers `plan`).
    pub last_plan_us: u64,
    /// Currently active questions.
    pub active: u64,
    /// Allocated slots (active + tombstoned; compaction resets to active).
    pub slots: u64,
    /// The frozen DBSCAN ε, when the graph cache is live.
    pub eps: Option<f64>,
    /// The frozen covering threshold `t`, when the coverage cache is live.
    pub cover_t: Option<f64>,
}

/// Fraction of the previous plan's question count the delta may reach
/// before the planner falls back to a full re-plan.
pub const DEFAULT_MAX_DELTA_FRACTION: f64 = 0.2;

/// Slot count below which per-insert scans stay dense: building a metric
/// index would cost more than the linear passes it replaces. Both paths
/// produce identical graphs (the index is exact), so this is a pure
/// performance knob.
const INSERT_INDEX_MIN: usize = 256;

/// An incrementally maintained batch-planning state over a fixed
/// demonstration pool. See the module docs for the design.
#[derive(Debug, Clone)]
pub struct PlanState {
    config: BatchPlanConfig,
    max_delta_fraction: f64,
    pool: PreparedPool,

    // Frozen thresholds (set by full plans that need them).
    eps: Option<f64>,
    cover_t: Option<f64>,

    // Slot-major question storage. Slots are append-only between
    // compactions; a retired slot keeps its row so cached references to
    // it stay decodable (they are filtered through `active`).
    dim: Option<usize>,
    rows: Vec<f64>,
    keys: Vec<u64>,
    active: Vec<bool>,
    n_active: usize,
    key_to_slot: HashMap<u64, u32>,

    // ε-neighbor graph (valid while `eps` is Some): symmetric adjacency
    // by slot id, self excluded; tombstoned neighbors are filtered
    // through `active`/`rank` on read. `deg` counts *active* neighbors
    // (maintained on insert/retire) so the per-epoch labeling pass gets
    // core-ness without a counting sweep over the edges.
    adj: Vec<Vec<u32>>,
    deg: Vec<u32>,

    // Coverage graph (valid while `cover_t` is Some): per pool demo, the
    // slots it covers (retired slots filtered through `active` on read).
    demo_cov: Vec<Vec<u32>>,

    // Slot-space metric index mirroring `rows`/`active` exactly (built
    // lazily on the first indexed ε-scan, appended/tombstoned in step
    // with the slots, dropped whenever the caches stop tracking the
    // slots — compaction or a guaranteed-full next plan).
    slot_index: Option<PivotIndex>,
    // Metric index over the (static, Euclidean) pool rows for coverage
    // insertions; geometry only, so it survives threshold refreshes.
    pool_index: Option<PivotIndex>,

    // Epoch accounting.
    inserted_since_plan: usize,
    retired_since_plan: usize,
    planned_len: Option<usize>,
    stats: PlanStateStats,
}

impl PlanState {
    /// A fresh state over `pool` (featurized internally with the config's
    /// extractor and distance).
    pub fn new(pool: &[&LabeledPair], config: BatchPlanConfig) -> Self {
        Self::from_prepared(
            PreparedPool::prepare(pool, config.extractor, config.distance),
            config,
        )
    }

    /// A fresh state over an already-prepared pool. The pool's extractor
    /// and distance govern question featurization, overriding the config
    /// (the same contract as [`crate::plan::plan_with_prepared_pool`]).
    pub fn from_prepared(pool: PreparedPool, config: BatchPlanConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        Self {
            config,
            max_delta_fraction: DEFAULT_MAX_DELTA_FRACTION,
            pool,
            eps: None,
            cover_t: None,
            dim: None,
            rows: Vec::new(),
            keys: Vec::new(),
            active: Vec::new(),
            n_active: 0,
            key_to_slot: HashMap::new(),
            adj: Vec::new(),
            deg: Vec::new(),
            demo_cov: Vec::new(),
            slot_index: None,
            pool_index: None,
            inserted_since_plan: 0,
            retired_since_plan: 0,
            planned_len: None,
            stats: PlanStateStats::default(),
        }
    }

    /// Overrides the full-re-plan fallback fraction (see
    /// [`DEFAULT_MAX_DELTA_FRACTION`]).
    pub fn with_max_delta_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction >= 0.0, "delta fraction must be non-negative");
        self.max_delta_fraction = fraction;
        self
    }

    /// Number of active questions.
    pub fn active_len(&self) -> usize {
        self.n_active
    }

    /// True when no questions are active.
    pub fn is_empty(&self) -> bool {
        self.n_active == 0
    }

    /// True when `key` is currently active.
    pub fn contains(&self, key: u64) -> bool {
        self.key_to_slot.contains_key(&key)
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> PlanStateStats {
        PlanStateStats {
            active: self.n_active as u64,
            slots: self.keys.len() as u64,
            eps: self.eps,
            cover_t: self.cover_t,
            ..self.stats
        }
    }

    /// Whether the configured strategies need the ε-neighbor graph.
    fn needs_graph(&self) -> bool {
        self.config.batching != BatchingStrategy::Random
            && self.config.clustering == ClusteringKind::Dbscan
    }

    /// Whether the configured strategies need the coverage graph.
    fn needs_cover(&self) -> bool {
        self.config.selection == SelectionStrategy::Covering && !self.pool.is_empty()
    }

    /// Inserts one question under a caller-stable `key`. Returns `false`
    /// (and changes nothing) when the key is already active.
    ///
    /// # Panics
    /// Panics when the pair's feature dimension disagrees with previously
    /// inserted questions — mixed schemas under a structure-aware
    /// extractor are a caller bug, exactly as in batch extraction.
    pub fn insert(&mut self, key: u64, pair: &EntityPair) -> bool {
        if self.key_to_slot.contains_key(&key) {
            return false;
        }
        let row = extract_row(pair, self.pool.extractor_kind());
        let dim = match self.dim {
            None => {
                assert!(!row.is_empty(), "zero-dimensional feature rows");
                self.dim = Some(row.len());
                row.len()
            }
            Some(d) => {
                assert_eq!(row.len(), d, "ragged feature rows across insertions");
                d
            }
        };
        let slot = u32::try_from(self.keys.len()).expect("slot count exceeds index width");

        // Once the accumulated delta (this insert included) already
        // guarantees the next plan takes the full path — which discards
        // and rebuilds every cache — extending the caches per insert is
        // pure waste. The delta counters are monotone until `plan`, so
        // the decision cannot flip back; the caches merely stop growing
        // and the full plan rebuilds them from scratch.
        let next_plan_is_full = match self.planned_len {
            None => true,
            Some(prev) => {
                (self.inserted_since_plan + self.retired_since_plan + 1) as f64
                    > self.max_delta_fraction * prev.max(1) as f64
            }
        };

        // Extend the ε graph: one region query over all existing slots
        // (the same inclusive ≤ ε² predicate, and the same subtraction
        // arithmetic, as the full rebuild's region queries). Past
        // `INSERT_INDEX_MIN` slots the query runs through a slot-space
        // metric index that is kept in append/tombstone lockstep with
        // the slot buffer; the index only prunes, so the hit set is
        // bit-identical to the dense scan's.
        if let (Some(eps), false) = (self.eps, next_plan_is_full) {
            let mut hits: Vec<u32> = Vec::new();
            if self.slot_index.is_some() || self.keys.len() >= INSERT_INDEX_MIN {
                if self.slot_index.is_none() {
                    let matrix = FeatureMatrix::from_flat(self.rows.clone(), self.keys.len(), dim);
                    let mut index = embed::build_index(&matrix);
                    for (k, &live) in self.active.iter().enumerate() {
                        if !live {
                            index.tombstone(k as u32);
                        }
                    }
                    self.slot_index = Some(index);
                }
                let index = self.slot_index.as_mut().expect("just ensured");
                index.within_into(&row, eps, false, &mut hits);
                index.append(&row);
            } else {
                let active = &self.active;
                scan_rows_within::<false>(dim, &row, &self.rows, eps * eps, |k| {
                    if active[k] {
                        hits.push(k as u32);
                    }
                });
            }
            for &k in &hits {
                self.adj[k as usize].push(slot);
                self.deg[k as usize] += 1;
            }
            self.deg.push(hits.len() as u32);
            self.adj.push(hits);
        } else {
            // The caches (this index included) stop tracking the slots
            // once the next plan is known to be full; the rebuild starts
            // from compacted rows anyway.
            self.slot_index = None;
            self.adj.push(Vec::new());
            self.deg.push(0);
        }

        // Extend the coverage graph: one scan over the (static) pool
        // under the frozen `t` (strict <, matching `compute_coverage`).
        if let (Some(t), true, false) = (self.cover_t, self.needs_cover(), next_plan_is_full) {
            // Large Euclidean pools get a one-time metric index (pure
            // geometry, so it never invalidates while the pool lives).
            if self.pool_index.is_none()
                && matches!(self.pool.space().distance_kind(), DistanceKind::Euclidean)
                && self.pool.space().len() >= INSERT_INDEX_MIN
            {
                let index = embed::build_index(self.pool.space().matrix());
                self.pool_index = Some(index);
            }
            let pool_space = self.pool.space();
            let pool_matrix = pool_space.matrix();
            let mut covers: Vec<u32> = Vec::new();
            match pool_space.distance_kind() {
                DistanceKind::Euclidean => {
                    if let Some(index) = &self.pool_index {
                        index.within_into(&row, t, true, &mut covers);
                    } else {
                        scan_rows_within::<true>(
                            pool_matrix.dim(),
                            &row,
                            pool_matrix.flat(),
                            t * t,
                            |d| covers.push(d as u32),
                        );
                    }
                }
                DistanceKind::Cosine => {
                    let mut buf = vec![0.0f64; pool_matrix.len()];
                    pool_matrix.cosine_dists_to_all(&row, &mut buf);
                    covers.extend(
                        buf.iter()
                            .enumerate()
                            .filter(|&(_, &v)| v < t)
                            .map(|(d, _)| d as u32),
                    );
                }
            }
            for d in covers {
                self.demo_cov[d as usize].push(slot);
            }
        }

        self.rows.extend_from_slice(&row);
        self.keys.push(key);
        self.active.push(true);
        self.n_active += 1;
        self.key_to_slot.insert(key, slot);
        self.inserted_since_plan += 1;
        true
    }

    /// Retires the question under `key`. Returns `false` when no such
    /// active question exists. The slot is tombstoned; its cached row and
    /// graph entries linger (filtered through the active mask) until the
    /// next full plan compacts them away.
    pub fn retire(&mut self, key: u64) -> bool {
        let Some(slot) = self.key_to_slot.remove(&key) else {
            return false;
        };
        let slot = slot as usize;
        self.active[slot] = false;
        self.n_active -= 1;
        if let Some(index) = &mut self.slot_index {
            index.tombstone(slot as u32);
        }
        if self.eps.is_some() {
            for i in 0..self.adj[slot].len() {
                let v = self.adj[slot][i] as usize;
                if self.active[v] {
                    self.deg[v] -= 1;
                }
            }
        }
        self.retired_since_plan += 1;
        true
    }

    /// Plans the current active question set, deciding between the
    /// incremental and the full path, and starts the next epoch.
    ///
    /// `seed` drives batching randomness and — on full plans — threshold
    /// derivation, exactly like `BatchPlanConfig::seed` does for
    /// [`crate::plan::plan_question_batches`]. Pass a pure function of
    /// the active set for arrival-order independence.
    pub fn plan(&mut self, seed: u64) -> EpochPlan {
        let plan_started = std::time::Instant::now();
        let inserted = std::mem::take(&mut self.inserted_since_plan);
        let retired = std::mem::take(&mut self.retired_since_plan);
        self.stats.epochs += 1;
        self.stats.last_inserted = inserted as u64;
        self.stats.last_retired = retired as u64;

        if self.n_active == 0 {
            self.planned_len = Some(0);
            self.stats.incremental_plans += 1;
            self.stats.last_plan_us =
                u64::try_from(plan_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            return EpochPlan {
                plan: QuestionBatchPlan {
                    batches: Vec::new(),
                    demos_per_batch: Vec::new(),
                    labeled: Vec::new(),
                    threshold: None,
                },
                keys: Vec::new(),
                kind: PlanKind::Incremental,
                inserted,
                retired,
            };
        }

        let delta_exceeded = match self.planned_len {
            None => true,
            Some(prev) => {
                (inserted + retired) as f64 > self.max_delta_fraction * prev.max(1) as f64
            }
        };
        let caches_missing = (self.needs_graph() && self.eps.is_none())
            || (self.needs_cover() && self.cover_t.is_none());
        // Tombstone pressure: once dead slots outnumber live ones the
        // per-insert scans and graph sweeps pay more for garbage than for
        // data — compact via the full path.
        let garbage = self.keys.len() > 2 * self.n_active;
        let full = delta_exceeded || caches_missing || garbage;

        let epoch = if full {
            self.compact();
            self.plan_epoch(seed, PlanKind::Full)
        } else {
            self.plan_epoch(seed, PlanKind::Incremental)
        };
        self.planned_len = Some(self.n_active);
        match epoch.kind {
            PlanKind::Full => self.stats.full_plans += 1,
            PlanKind::Incremental => self.stats.incremental_plans += 1,
        }
        self.stats.last_plan_us =
            u64::try_from(plan_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        EpochPlan { inserted, retired, ..epoch }
    }

    /// Drops tombstoned slots and every cache (the full plan rebuilds
    /// them). Slot order of survivors is preserved; canonical order is
    /// key-based, so plans are unaffected.
    fn compact(&mut self) {
        let dim = self.dim.unwrap_or(0);
        let n_slots = self.keys.len();
        if self.n_active == n_slots {
            // Nothing dead; caches are still dropped for rebuild.
            self.clear_caches();
            return;
        }
        let mut rows = Vec::with_capacity(self.n_active * dim);
        let mut keys = Vec::with_capacity(self.n_active);
        for slot in 0..n_slots {
            if self.active[slot] {
                rows.extend_from_slice(&self.rows[slot * dim..(slot + 1) * dim]);
                keys.push(self.keys[slot]);
            }
        }
        self.rows = rows;
        self.keys = keys;
        self.active = vec![true; self.n_active];
        self.key_to_slot = self
            .keys
            .iter()
            .enumerate()
            .map(|(slot, &key)| (key, slot as u32))
            .collect();
        self.clear_caches();
    }

    fn clear_caches(&mut self) {
        self.adj.clear();
        self.deg.clear();
        self.demo_cov.clear();
        self.slot_index = None;
        self.eps = None;
        self.cover_t = None;
    }

    /// Canonical view of the active set: slots sorted by key, the
    /// inverse rank per slot, and the gathered feature space.
    fn gather(&self) -> (Vec<u32>, Vec<u32>, FeatureSpace) {
        let dim = self.dim.unwrap_or(0);
        let mut order: Vec<u32> = (0..self.keys.len() as u32)
            .filter(|&s| self.active[s as usize])
            .collect();
        order.sort_unstable_by_key(|&s| self.keys[s as usize]);
        let mut rank = vec![u32::MAX; self.keys.len()];
        let mut flat = Vec::with_capacity(order.len() * dim);
        for (r, &s) in order.iter().enumerate() {
            rank[s as usize] = r as u32;
            flat.extend_from_slice(&self.rows[s as usize * dim..(s as usize + 1) * dim]);
        }
        let matrix = FeatureMatrix::from_flat(flat, order.len(), dim);
        let space = FeatureSpace::from_matrix(matrix, self.pool.distance_kind());
        (order, rank, space)
    }

    /// One planning epoch; the two kinds differ **only** in where the
    /// clustering and the coverage lists come from:
    ///
    /// * `Full` — derive ε / `t` from the gathered space, run the kernel
    ///   sweeps, and (re)populate the caches from the results. Runs after
    ///   [`PlanState::compact`], so every slot is active.
    /// * `Incremental` — labels from a union-find pass over the cached ε
    ///   graph, coverage remapped from the cached lists; no distance
    ///   percentiles, no region-query or coverage sweeps.
    ///
    /// Everything downstream — batch assembly, selection dispatch, the
    /// empty-pool arm — is shared, so the two kinds cannot drift apart.
    fn plan_epoch(&mut self, seed: u64, kind: PlanKind) -> EpochPlan {
        let (order, rank, q_space) = self.gather();
        let n = order.len();

        let clusters = if self.config.batching == BatchingStrategy::Random {
            None
        } else if self.config.clustering == ClusteringKind::Dbscan {
            Some(match kind {
                PlanKind::Full => {
                    let eps = q_space
                        .distance_percentile(DBSCAN_EPS_PERCENTILE, 200_000, seed)
                        .max(1e-9);
                    let lists = dbscan_neighbor_lists(q_space.matrix(), eps);
                    // Cache the graph in slot space: lists include self,
                    // the cache excludes it.
                    self.adj = vec![Vec::new(); n];
                    self.deg = vec![0; n];
                    for (r, list) in lists.iter().enumerate() {
                        let slot = order[r] as usize;
                        let mut neighbors = Vec::with_capacity(list.len().saturating_sub(1));
                        for &nr in list {
                            if nr as usize != r {
                                neighbors.push(order[nr as usize]);
                            }
                        }
                        self.deg[slot] = neighbors.len() as u32;
                        self.adj[slot] = neighbors;
                    }
                    self.eps = Some(eps);
                    dbscan_from_neighbor_lists(&lists, DBSCAN_MIN_PTS)
                }
                PlanKind::Incremental => self.labels_from_graph(&order, &rank),
            })
        } else {
            Some(
                cluster_questions_pinned(
                    &q_space,
                    self.config.clustering,
                    self.config.batch_size,
                    seed,
                    None,
                )
                .0,
            )
        };
        let batches = batches_for_clustering(
            n,
            clusters.as_ref(),
            self.config.batching,
            self.config.batch_size,
            seed,
        );

        let selection = if self.pool.is_empty() {
            SelectionPlan {
                per_batch: vec![Vec::new(); batches.len()],
                labeled: Vec::new(),
                threshold: None,
            }
        } else if self.config.selection == SelectionStrategy::Covering {
            let (t, coverage) = match kind {
                PlanKind::Full => {
                    let t = covering_threshold(&q_space, self.selection_params(seed));
                    let coverage =
                        crate::selection::compute_coverage(&q_space, self.pool.space(), t);
                    // Cache in slot space (coverage is in rank space
                    // here).
                    self.demo_cov = coverage
                        .iter()
                        .map(|list| list.iter().map(|&r| order[r as usize]).collect())
                        .collect();
                    self.cover_t = Some(t);
                    (t, coverage)
                }
                PlanKind::Incremental => {
                    let t = self.cover_t.expect("coverage cache is live on this path");
                    let coverage = self
                        .demo_cov
                        .iter()
                        .map(|list| {
                            list.iter()
                                .filter_map(|&slot| {
                                    let r = rank[slot as usize];
                                    (r != u32::MAX).then_some(r)
                                })
                                .collect()
                        })
                        .collect();
                    (t, coverage)
                }
            };
            let tokens = self.pool.token_weights();
            covering_with_coverage(&q_space, self.pool.space(), &batches, &coverage, t, |d| {
                tokens[d]
            })
        } else {
            let tokens = self.pool.token_weights();
            select_demonstrations_pinned(
                self.config.selection,
                &q_space,
                self.pool.space(),
                &batches,
                self.selection_params(seed),
                None,
                |d| tokens[d],
            )
        };

        self.assemble(order, batches, selection, kind)
    }

    fn selection_params(&self, seed: u64) -> SelectionParams {
        SelectionParams { k: self.config.k, cover_percentile: self.config.cover_percentile, seed }
    }

    fn assemble(
        &self,
        order: Vec<u32>,
        batches: Vec<Vec<usize>>,
        selection: SelectionPlan,
        kind: PlanKind,
    ) -> EpochPlan {
        let SelectionPlan { per_batch, labeled, threshold } = selection;
        EpochPlan {
            plan: QuestionBatchPlan { batches, demos_per_batch: per_batch, labeled, threshold },
            keys: order.iter().map(|&s| self.keys[s as usize]).collect(),
            kind,
            inserted: 0,
            retired: 0,
        }
    }

    /// DBSCAN labels over the cached ε graph, reproducing the expansion
    /// semantics of [`cluster::dbscan_matrix`] exactly (see
    /// `dbscan_union_find` in the cluster crate for why these rules are
    /// equivalent): core points cluster by ε-connectivity with ids in
    /// min-core-rank founding order, borders join the earliest-founded
    /// cluster among their core neighbors, leftovers become singletons
    /// in rank order.
    ///
    /// Deliberately a union-find over the cached edges rather than a
    /// remap into [`dbscan_from_neighbor_lists`]: one in-place pass with
    /// zero allocation, measured ~3x faster per epoch than materializing
    /// rank-space region-query lists — and the epoch is the product's
    /// hot path. The duplication of the labeling rules is pinned loudly:
    /// the equivalence harness compares every epoch's clustering against
    /// `dbscan_matrix`'s output across all strategy combinations.
    fn labels_from_graph(&self, order: &[u32], rank: &[u32]) -> Clustering {
        let n = order.len();
        // Core-ness: |N(p)| including self.
        let core: Vec<bool> = order
            .iter()
            .map(|&s| self.deg[s as usize] as usize + 1 >= DBSCAN_MIN_PTS)
            .collect();

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for (r, &s) in order.iter().enumerate() {
            if !core[r] {
                continue;
            }
            for &v in &self.adj[s as usize] {
                let rv = rank[v as usize];
                // Visit each active core-core edge once (from the lower
                // rank); tombstoned neighbors rank as MAX and drop out.
                if rv == u32::MAX || (rv as usize) <= r || !core[rv as usize] {
                    continue;
                }
                let ra = find(&mut parent, r as u32);
                let rb = find(&mut parent, rv);
                if ra != rb {
                    if ra < rb {
                        parent[rb as usize] = ra;
                    } else {
                        parent[ra as usize] = rb;
                    }
                }
            }
        }

        const UNSET: usize = usize::MAX;
        let mut labels = vec![UNSET; n];
        let mut cluster_of_root = vec![UNSET; n];
        let mut next_cluster = 0usize;
        for r in 0..n {
            if core[r] {
                let root = find(&mut parent, r as u32) as usize;
                if cluster_of_root[root] == UNSET {
                    cluster_of_root[root] = next_cluster;
                    next_cluster += 1;
                }
                labels[r] = cluster_of_root[root];
            }
        }
        // Borders: min label among active core neighbors (a non-core
        // point has < min_pts neighbors, so these scans are tiny).
        for (r, &s) in order.iter().enumerate() {
            if core[r] {
                continue;
            }
            let mut best = UNSET;
            for &v in &self.adj[s as usize] {
                let rv = rank[v as usize];
                if rv != u32::MAX && core[rv as usize] && labels[rv as usize] < best {
                    best = labels[rv as usize];
                }
            }
            labels[r] = best;
        }
        for label in labels.iter_mut() {
            if *label == UNSET {
                *label = next_cluster;
                next_cluster += 1;
            }
        }
        Clustering { assignment: labels, n_clusters: next_cluster }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_with_prepared_pool_pinned, PlanThresholds};
    use datagen::{generate, DatasetKind};

    fn fixtures() -> (Vec<er_core::LabeledPair>, Vec<er_core::LabeledPair>) {
        let d = generate(DatasetKind::Beer, 3);
        let pairs = d.pairs().to_vec();
        let pool = pairs[..40].to_vec();
        let questions = pairs[40..100].to_vec();
        (pool, questions)
    }

    fn reference(
        state: &PlanState,
        questions: &[(u64, EntityPair)],
        seed: u64,
    ) -> QuestionBatchPlan {
        let mut sorted: Vec<&(u64, EntityPair)> = questions.iter().collect();
        sorted.sort_by_key(|(k, _)| *k);
        let refs: Vec<&EntityPair> = sorted.iter().map(|(_, p)| p).collect();
        let config = BatchPlanConfig { seed, ..state.config };
        plan_with_prepared_pool_pinned(
            &refs,
            &state.pool,
            &config,
            PlanThresholds { eps: state.eps, cover_t: state.cover_t },
        )
    }

    #[test]
    fn first_plan_is_full_and_matches_from_scratch() {
        let (pool, questions) = fixtures();
        let pool_refs: Vec<&LabeledPair> = pool.iter().collect();
        let mut state = PlanState::new(&pool_refs, BatchPlanConfig::default());
        let qs: Vec<(u64, EntityPair)> = questions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64 * 7 + 3, p.pair.clone()))
            .collect();
        for (k, p) in &qs {
            assert!(state.insert(*k, p));
        }
        let epoch = state.plan(11);
        assert_eq!(epoch.kind, PlanKind::Full);
        assert_eq!(epoch.inserted, qs.len());
        assert_eq!(epoch.plan, reference(&state, &qs, 11));
        let mut keys: Vec<u64> = qs.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(epoch.keys, keys);
    }

    #[test]
    fn small_deltas_go_incremental_and_stay_equivalent() {
        let (pool, questions) = fixtures();
        let pool_refs: Vec<&LabeledPair> = pool.iter().collect();
        let mut state = PlanState::new(&pool_refs, BatchPlanConfig::default());
        let qs: Vec<(u64, EntityPair)> = questions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64, p.pair.clone()))
            .collect();
        let mut live: Vec<(u64, EntityPair)> = qs[..50].to_vec();
        for (k, p) in &live {
            state.insert(*k, p);
        }
        state.plan(5);

        // Retire two, insert two: 4/50 < 20% → incremental.
        for k in [3u64, 17] {
            assert!(state.retire(k));
        }
        live.retain(|(k, _)| *k != 3 && *k != 17);
        for (k, p) in &qs[50..52] {
            assert!(state.insert(*k, p));
            live.push((*k, p.clone()));
        }
        let epoch = state.plan(9);
        assert_eq!(epoch.kind, PlanKind::Incremental);
        assert_eq!(epoch.inserted, 2);
        assert_eq!(epoch.retired, 2);
        assert_eq!(epoch.plan, reference(&state, &live, 9));
    }

    #[test]
    fn large_delta_falls_back_to_full() {
        let (pool, questions) = fixtures();
        let pool_refs: Vec<&LabeledPair> = pool.iter().collect();
        let mut state = PlanState::new(&pool_refs, BatchPlanConfig::default());
        for (i, p) in questions[..20].iter().enumerate() {
            state.insert(i as u64, &p.pair);
        }
        state.plan(1);
        for (i, p) in questions[20..40].iter().enumerate() {
            state.insert(20 + i as u64, &p.pair);
        }
        let epoch = state.plan(2);
        assert_eq!(epoch.kind, PlanKind::Full);
    }

    #[test]
    fn indexed_insert_path_stays_equivalent() {
        // Big enough that both the slot index (active questions) and the
        // pool index (coverage insertions) clear INSERT_INDEX_MIN, so
        // the per-insert region queries actually run through the metric
        // index — the small fixtures above stay on the dense scans.
        let d = generate(DatasetKind::FodorsZagats, 5);
        let pairs = d.pairs().to_vec();
        let pool: Vec<LabeledPair> = pairs[..300].to_vec();
        let pool_refs: Vec<&LabeledPair> = pool.iter().collect();
        let mut state = PlanState::new(&pool_refs, BatchPlanConfig::default());
        let qs: Vec<(u64, EntityPair)> = pairs[300..740]
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64 * 13 + 1, p.pair.clone()))
            .collect();
        let mut live: Vec<(u64, EntityPair)> = qs[..400].to_vec();
        for (k, p) in &live {
            assert!(state.insert(*k, p));
        }
        let first = state.plan(21);
        assert_eq!(first.kind, PlanKind::Full);

        // Two small delta rounds: retires interleave with inserts so the
        // lazily built slot index sees tombstones both at build time and
        // live, then the epoch must still equal the pinned from-scratch
        // reference.
        for k in [1u64, 27, 53] {
            assert!(state.retire(k));
        }
        live.retain(|(k, _)| ![1u64, 27, 53].contains(k));
        for (k, p) in &qs[400..410] {
            assert!(state.insert(*k, p));
            live.push((*k, p.clone()));
        }
        for k in [79u64, 105] {
            assert!(state.retire(k));
        }
        live.retain(|(k, _)| ![79u64, 105].contains(k));
        for (k, p) in &qs[410..420] {
            assert!(state.insert(*k, p));
            live.push((*k, p.clone()));
        }
        let epoch = state.plan(22);
        assert_eq!(epoch.kind, PlanKind::Incremental);
        assert_eq!(epoch.plan, reference(&state, &live, 22));
    }

    #[test]
    fn duplicate_keys_and_unknown_retires_are_rejected() {
        let (pool, questions) = fixtures();
        let pool_refs: Vec<&LabeledPair> = pool.iter().collect();
        let mut state = PlanState::new(&pool_refs, BatchPlanConfig::default());
        assert!(state.insert(1, &questions[0].pair));
        assert!(!state.insert(1, &questions[1].pair));
        assert!(!state.retire(99));
        assert!(state.retire(1));
        assert!(!state.retire(1));
        assert!(state.is_empty());
    }

    #[test]
    fn empty_plan_is_empty() {
        let (pool, _) = fixtures();
        let pool_refs: Vec<&LabeledPair> = pool.iter().collect();
        let mut state = PlanState::new(&pool_refs, BatchPlanConfig::default());
        let epoch = state.plan(1);
        assert!(epoch.plan.is_empty());
        assert!(epoch.keys.is_empty());
    }
}
