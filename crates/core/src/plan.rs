//! Batch planning for externally supplied question sets.
//!
//! The offline runner ([`crate::runner`]) owns its questions from a
//! dataset split; the serving layer (`er-service`) receives arbitrary
//! pair questions from concurrent clients at run time. Both need the same
//! pipeline stages — featurize, batch, select demonstrations — so this
//! module exposes them as one reusable planning step over plain
//! [`EntityPair`] slices, with no dataset or split in sight.

use er_core::{EntityPair, LabeledPair};

use crate::batching::{
    batches_for_clustering, cluster_questions_pinned, BatchingStrategy, ClusteringKind,
};
use crate::features::{DistanceKind, ExtractorKind, FeatureSpace};
use crate::runner::RunConfig;
use crate::selection::{
    select_demonstrations_pinned, SelectionParams, SelectionPlan, SelectionStrategy,
};

/// Configuration of one planning pass — the batching/selection slice of a
/// [`RunConfig`], without the execution-side knobs (model, retries).
#[derive(Debug, Clone, Copy)]
pub struct BatchPlanConfig {
    /// Question batching strategy.
    pub batching: BatchingStrategy,
    /// Demonstration selection strategy.
    pub selection: SelectionStrategy,
    /// Feature extractor for questions and pool.
    pub extractor: ExtractorKind,
    /// Distance function over feature vectors.
    pub distance: DistanceKind,
    /// Clustering algorithm driving batching.
    pub clustering: ClusteringKind,
    /// Questions per batch.
    pub batch_size: usize,
    /// Demonstrations per batch for fixed / top-k strategies.
    pub k: usize,
    /// Covering threshold percentile.
    pub cover_percentile: f64,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for BatchPlanConfig {
    fn default() -> Self {
        Self::from_run_config(&RunConfig::default())
    }
}

impl BatchPlanConfig {
    /// Extracts the planning slice of a full [`RunConfig`].
    pub fn from_run_config(config: &RunConfig) -> Self {
        Self {
            batching: config.batching,
            selection: config.selection,
            extractor: config.extractor,
            distance: config.distance,
            clustering: config.clustering,
            batch_size: config.batch_size,
            k: config.k,
            cover_percentile: config.cover_percentile,
            seed: config.seed,
        }
    }
}

/// The output of planning: batches over the question slice plus the
/// demonstrations chosen for each batch from the pool slice.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionBatchPlan {
    /// Question indices per batch; the batches partition `0..questions.len()`.
    pub batches: Vec<Vec<usize>>,
    /// Pool indices to include in each batch's prompt (parallel to
    /// `batches`).
    pub demos_per_batch: Vec<Vec<usize>>,
    /// Unique pool indices that require human labels.
    pub labeled: Vec<usize>,
    /// The covering threshold actually used, when covering selection ran.
    pub threshold: Option<f64>,
}

impl QuestionBatchPlan {
    /// Number of planned batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when no batches were planned (empty question set).
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

/// A demonstration pool featurized once, for callers that plan against
/// the same pool repeatedly (the serving layer plans on every queue
/// flush; re-embedding a static pool each time would put O(pool) work on
/// the dispatcher's critical path).
#[derive(Debug, Clone)]
pub struct PreparedPool {
    space: FeatureSpace,
    token_weights: Vec<f64>,
    extractor: ExtractorKind,
    distance: DistanceKind,
}

impl PreparedPool {
    /// The pool's feature space.
    pub(crate) fn space(&self) -> &FeatureSpace {
        &self.space
    }

    /// Token counts per pool demonstration (covering weights).
    pub(crate) fn token_weights(&self) -> &[f64] {
        &self.token_weights
    }

    /// The extractor the pool was featurized with.
    pub(crate) fn extractor_kind(&self) -> ExtractorKind {
        self.extractor
    }

    /// The distance function the pool was featurized with.
    pub(crate) fn distance_kind(&self) -> DistanceKind {
        self.distance
    }

    /// Featurizes `pool` with the given extractor/distance. Question
    /// featurization during planning uses the same pair, overriding
    /// whatever the per-call config says — the two spaces must agree.
    pub fn prepare(
        pool: &[&LabeledPair],
        extractor: ExtractorKind,
        distance: DistanceKind,
    ) -> Self {
        Self {
            space: FeatureSpace::extract(pool.iter().map(|p| &p.pair), extractor, distance),
            token_weights: pool
                .iter()
                .map(|p| llm::count_tokens(&p.pair.serialize()) as f64)
                .collect(),
            extractor,
            distance,
        }
    }

    /// Number of pool demonstrations.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }
}

/// Plans diversity batches and demonstration assignments for an
/// externally supplied question set.
///
/// * `questions` — the pairs to resolve, in caller order; the returned
///   batch indices refer to this slice.
/// * `pool` — the labeled-on-demand demonstration pool; `demos_per_batch`
///   and `labeled` index into it. May be empty, in which case every batch
///   runs zero-shot.
///
/// The plan is a pure function of `(questions, pool, config)` — no
/// interior randomness — so identical inputs always produce identical
/// batches, which the serving layer relies on for reproducible answers.
pub fn plan_question_batches(
    questions: &[&EntityPair],
    pool: &[&LabeledPair],
    config: &BatchPlanConfig,
) -> QuestionBatchPlan {
    let prepared = PreparedPool::prepare(pool, config.extractor, config.distance);
    plan_with_prepared_pool(questions, &prepared, config)
}

/// Like [`plan_question_batches`], but against a pool featurized once
/// via [`PreparedPool::prepare`]. The prepared pool's extractor and
/// distance govern question featurization.
pub fn plan_with_prepared_pool(
    questions: &[&EntityPair],
    pool: &PreparedPool,
    config: &BatchPlanConfig,
) -> QuestionBatchPlan {
    plan_with_prepared_pool_pinned(questions, pool, config, PlanThresholds::default())
}

/// Pinned distance thresholds for a planning pass. `None` fields derive
/// from the question set as usual; `Some` fields replace the derivation —
/// the contract the incremental planner's equivalence rests on: a plan
/// maintained under frozen thresholds must equal a from-scratch plan with
/// the same thresholds pinned.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanThresholds {
    /// DBSCAN ε for the batching stage.
    pub eps: Option<f64>,
    /// Covering threshold `t` for demonstration selection.
    pub cover_t: Option<f64>,
}

/// [`plan_with_prepared_pool`] with pinned thresholds (see
/// [`PlanThresholds`]).
pub fn plan_with_prepared_pool_pinned(
    questions: &[&EntityPair],
    pool: &PreparedPool,
    config: &BatchPlanConfig,
    thresholds: PlanThresholds,
) -> QuestionBatchPlan {
    if questions.is_empty() {
        return QuestionBatchPlan {
            batches: Vec::new(),
            demos_per_batch: Vec::new(),
            labeled: Vec::new(),
            threshold: None,
        };
    }

    let q_space = FeatureSpace::extract(questions.iter().copied(), pool.extractor, pool.distance);
    let clusters = (config.batching != BatchingStrategy::Random).then(|| {
        cluster_questions_pinned(
            &q_space,
            config.clustering,
            config.batch_size,
            config.seed,
            thresholds.eps,
        )
        .0
    });
    let batches = batches_for_clustering(
        q_space.len(),
        clusters.as_ref(),
        config.batching,
        config.batch_size,
        config.seed,
    );

    if pool.is_empty() {
        let demos_per_batch = vec![Vec::new(); batches.len()];
        return QuestionBatchPlan {
            batches,
            demos_per_batch,
            labeled: Vec::new(),
            threshold: None,
        };
    }

    let demo_tokens = |d: usize| pool.token_weights[d];
    let SelectionPlan { per_batch, labeled, threshold } = select_demonstrations_pinned(
        config.selection,
        &q_space,
        &pool.space,
        &batches,
        SelectionParams {
            k: config.k,
            cover_percentile: config.cover_percentile,
            seed: config.seed,
        },
        thresholds.cover_t,
        demo_tokens,
    );

    QuestionBatchPlan { batches, demos_per_batch: per_batch, labeled, threshold }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};

    fn fixtures() -> (Vec<er_core::LabeledPair>, Vec<er_core::LabeledPair>) {
        let d = generate(DatasetKind::Beer, 3);
        let pairs = d.pairs().to_vec();
        let pool = pairs[..40].to_vec();
        let questions = pairs[40..72].to_vec();
        (pool, questions)
    }

    #[test]
    fn plan_partitions_questions() {
        let (pool, questions) = fixtures();
        let q: Vec<&EntityPair> = questions.iter().map(|p| &p.pair).collect();
        let p: Vec<&LabeledPair> = pool.iter().collect();
        let plan = plan_question_batches(&q, &p, &BatchPlanConfig::default());
        let mut seen: Vec<usize> = plan.batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..q.len()).collect::<Vec<_>>());
        assert_eq!(plan.demos_per_batch.len(), plan.batches.len());
        assert!(!plan.is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let (pool, questions) = fixtures();
        let q: Vec<&EntityPair> = questions.iter().map(|p| &p.pair).collect();
        let p: Vec<&LabeledPair> = pool.iter().collect();
        let config = BatchPlanConfig { seed: 11, ..BatchPlanConfig::default() };
        assert_eq!(
            plan_question_batches(&q, &p, &config),
            plan_question_batches(&q, &p, &config)
        );
    }

    #[test]
    fn demos_index_into_pool_and_labeled() {
        let (pool, questions) = fixtures();
        let q: Vec<&EntityPair> = questions.iter().map(|p| &p.pair).collect();
        let p: Vec<&LabeledPair> = pool.iter().collect();
        let plan = plan_question_batches(&q, &p, &BatchPlanConfig::default());
        for demos in &plan.demos_per_batch {
            for &d in demos {
                assert!(d < pool.len());
                assert!(plan.labeled.contains(&d), "prompted demo {d} unlabeled");
            }
        }
        assert!(!plan.labeled.is_empty());
    }

    #[test]
    fn prepared_pool_matches_direct_planning() {
        let (pool, questions) = fixtures();
        let q: Vec<&EntityPair> = questions.iter().map(|p| &p.pair).collect();
        let p: Vec<&LabeledPair> = pool.iter().collect();
        let config = BatchPlanConfig::default();
        let prepared = PreparedPool::prepare(&p, config.extractor, config.distance);
        assert_eq!(prepared.len(), pool.len());
        assert_eq!(
            plan_question_batches(&q, &p, &config),
            plan_with_prepared_pool(&q, &prepared, &config)
        );
    }

    #[test]
    fn empty_pool_plans_zero_shot() {
        let (_, questions) = fixtures();
        let q: Vec<&EntityPair> = questions.iter().map(|p| &p.pair).collect();
        let plan = plan_question_batches(&q, &[], &BatchPlanConfig::default());
        assert!(!plan.batches.is_empty());
        assert!(plan.demos_per_batch.iter().all(Vec::is_empty));
        assert!(plan.labeled.is_empty());
    }

    #[test]
    fn empty_questions_plan_nothing() {
        let (pool, _) = fixtures();
        let p: Vec<&LabeledPair> = pool.iter().collect();
        let plan = plan_question_batches(&[], &p, &BatchPlanConfig::default());
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }
}
