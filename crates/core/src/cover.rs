//! Covering-based demonstration selection (§V).
//!
//! Two NP-hard subproblems, both solved with the paper's greedy
//! Algorithm 1:
//!
//! 1. **Demonstration Set Generation** — pick a minimum set of
//!    demonstrations from the unlabeled pool covering *all* questions
//!    (unit weights; Hₖ-approximation).
//! 2. **Batch Covering** — per batch, pick a minimum-*token* subset of the
//!    generated demonstration set covering the batch's questions
//!    (token-count weights; ln|B| − ln ln|B| + Ω(1) approximation).
//!
//! "Demonstration `d` covers question `q`" means `dist(q, d) < t` in the
//! configured feature space.

/// Greedy weighted set cover (Algorithm 1).
///
/// `coverage[d]` lists the element ids covered by candidate `d` (ids are
/// arbitrary but must be `< n_elements`); `weight(d)` is the cost of
/// selecting `d`. Iteratively selects the candidate maximizing
/// `new_coverage / weight` until no candidate adds coverage — i.e. until
/// `f(D_s) = f(D)`, the achievable maximum (line 2 of Algorithm 1).
///
/// Returns selected candidate indices in selection order. Gains are
/// maintained **decrementally** through an inverted element → candidates
/// index (covering an element subtracts 1 from every candidate that also
/// covers it), so a lazy-heap pop checks staleness in O(1) instead of
/// rescanning the candidate's coverage list — the total gain-maintenance
/// work is one decrement per (element, covering candidate) pair.
pub fn greedy_weighted_cover<W>(n_elements: usize, coverage: &[Vec<u32>], weight: W) -> Vec<usize>
where
    W: Fn(usize) -> f64,
{
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Max-heap entry ordered by gain ratio.
    struct Entry {
        ratio: f64,
        candidate: usize,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.ratio == other.ratio
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.ratio.total_cmp(&other.ratio)
        }
    }

    // Inverted index (CSR): which candidates cover each element, in one
    // flat buffer — counting pass, prefix offsets, fill pass.
    let mut offsets = vec![0usize; n_elements + 1];
    for c in coverage {
        for &e in c {
            offsets[e as usize + 1] += 1;
        }
    }
    for e in 0..n_elements {
        offsets[e + 1] += offsets[e];
    }
    let mut covering = vec![0u32; offsets[n_elements]];
    let mut fill = offsets.clone();
    for (d, c) in coverage.iter().enumerate() {
        for &e in c {
            covering[fill[e as usize]] = d as u32;
            fill[e as usize] += 1;
        }
    }
    let mut gain: Vec<usize> = coverage.iter().map(Vec::len).collect();
    let mut covered = vec![false; n_elements];
    let mut selected = Vec::new();

    let ratio_of = |g: usize, d: usize| g as f64 / weight(d).max(f64::MIN_POSITIVE);
    let mut heap: BinaryHeap<Entry> = coverage
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(d, c)| Entry { ratio: ratio_of(c.len(), d), candidate: d })
        .collect();

    while let Some(top) = heap.pop() {
        let g = gain[top.candidate];
        if g == 0 {
            continue;
        }
        let fresh_ratio = ratio_of(g, top.candidate);
        // Gains only shrink, so a stale entry can only overestimate: the
        // popped entry is still the maximum if its fresh ratio matches
        // what was recorded or still beats the next-best entry.
        let is_fresh =
            fresh_ratio == top.ratio || heap.peek().is_none_or(|next| fresh_ratio >= next.ratio);
        if !is_fresh {
            heap.push(Entry { ratio: fresh_ratio, candidate: top.candidate });
            continue;
        }
        // Select, decrementing the gain of every candidate sharing a
        // newly covered element.
        for &e in &coverage[top.candidate] {
            let e = e as usize;
            if !covered[e] {
                covered[e] = true;
                for &d in &covering[offsets[e]..offsets[e + 1]] {
                    gain[d as usize] -= 1;
                }
            }
        }
        selected.push(top.candidate);
    }
    selected
}

/// Greedy **unit-weight** set cover: same selection rule as
/// [`greedy_weighted_cover`] with `weight ≡ 1`, but gains are integers,
/// so the lazy priority queue becomes a bucket array (gain → candidates)
/// with O(1) refile instead of a float heap — the shape phase 1 of the
/// covering strategy runs at scale.
pub fn greedy_unit_cover(n_elements: usize, coverage: &[Vec<u32>]) -> Vec<usize> {
    // Inverted CSR index, as in the weighted variant.
    let mut offsets = vec![0usize; n_elements + 1];
    for c in coverage {
        for &e in c {
            offsets[e as usize + 1] += 1;
        }
    }
    for e in 0..n_elements {
        offsets[e + 1] += offsets[e];
    }
    let mut covering = vec![0u32; offsets[n_elements]];
    let mut fill = offsets.clone();
    for (d, c) in coverage.iter().enumerate() {
        for &e in c {
            covering[fill[e as usize]] = d as u32;
            fill[e as usize] += 1;
        }
    }

    let mut gain: Vec<usize> = coverage.iter().map(Vec::len).collect();
    let max_gain = gain.iter().copied().max().unwrap_or(0);
    // Buckets hold lazily-filed candidates; a candidate's authoritative
    // gain lives in `gain[]`, and entries refile downward on pop.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_gain + 1];
    for (d, &g) in gain.iter().enumerate() {
        if g > 0 {
            buckets[g].push(d as u32);
        }
    }
    let mut covered = vec![false; n_elements];
    let mut selected = Vec::new();
    let mut level = max_gain;
    while level > 0 {
        let Some(candidate) = buckets[level].pop() else {
            level -= 1;
            continue;
        };
        let d = candidate as usize;
        let g = gain[d];
        if g < level {
            // Stale entry: refile at its true gain (gains only shrink).
            if g > 0 {
                buckets[g].push(candidate);
            }
            continue;
        }
        // g == level: the maximum gain — select.
        for &e in &coverage[d] {
            let e = e as usize;
            if !covered[e] {
                covered[e] = true;
                for &other in &covering[offsets[e]..offsets[e + 1]] {
                    gain[other as usize] -= 1;
                }
            }
        }
        selected.push(d);
    }
    selected
}

/// Phase 1 — Demonstration Set Generation (§V-A).
///
/// `covers_question(d, q)` tells whether pool demonstration `d` covers
/// question `q` (distance below `t`). Returns the selected pool indices:
/// a small set covering every coverable question, found greedily with unit
/// weights.
///
/// Coverage lists are built in parallel shards over the pool (`Sync`
/// bound); each demo's list depends only on that demo, so shard count
/// cannot change the result. The kernel-backed covering path in
/// [`crate::selection`] builds its lists from one-to-many distance sweeps
/// instead of a per-pair oracle; this entry point remains for callers
/// with arbitrary coverage predicates.
pub fn demonstration_set_generation<F>(
    n_questions: usize,
    n_pool: usize,
    covers_question: F,
) -> Vec<usize>
where
    F: Fn(usize, usize) -> bool + Sync,
{
    let coverage: Vec<Vec<u32>> = embed::par::par_map(n_pool, 8, |d| {
        (0..n_questions)
            .filter(|&q| covers_question(d, q))
            .map(|q| q as u32)
            .collect()
    });
    greedy_unit_cover(n_questions, &coverage)
}

/// Phase 2 — Batch Covering (§V-B).
///
/// Selects, from the already-labeled demonstration set, a minimum-token
/// subset covering one batch. `demo_set` are pool indices from phase 1;
/// `covers(d, q)` is coverage between pool demo `d` and the q-th question
/// *of this batch*; `tokens(d)` is the demo's token count (the weight).
///
/// Returns indices **into `demo_set`** in selection order.
pub fn batch_covering<F, W>(
    batch_len: usize,
    demo_set: &[usize],
    covers: F,
    tokens: W,
) -> Vec<usize>
where
    F: Fn(usize, usize) -> bool + Sync,
    W: Fn(usize) -> f64,
{
    // One batch is small; shards only kick in for oversized demo sets.
    let coverage: Vec<Vec<u32>> = embed::par::par_map(demo_set.len(), 64, |i| {
        (0..batch_len)
            .filter(|&q| covers(demo_set[i], q))
            .map(|q| q as u32)
            .collect()
    });
    greedy_weighted_cover(batch_len, &coverage, |i| tokens(demo_set[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_coverable_elements() {
        // 4 elements; candidate 0 covers {0,1}, 1 covers {1,2}, 2 covers {3}.
        let coverage = vec![vec![0, 1], vec![1, 2], vec![3]];
        let picked = greedy_weighted_cover(4, &coverage, |_| 1.0);
        let mut all: Vec<u32> = picked.iter().flat_map(|&d| coverage[d].clone()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn prefers_high_coverage_candidates() {
        // Candidate 0 covers everything; greedy must pick only it.
        let coverage = vec![vec![0, 1, 2, 3], vec![0], vec![1], vec![2]];
        let picked = greedy_weighted_cover(4, &coverage, |_| 1.0);
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn weights_steer_selection() {
        // Both candidates cover both elements; candidate 1 is cheaper.
        let coverage = vec![vec![0, 1], vec![0, 1]];
        let picked = greedy_weighted_cover(2, &coverage, |d| if d == 0 { 10.0 } else { 1.0 });
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn stops_when_nothing_new_coverable() {
        // Element 2 is uncoverable: algorithm must terminate anyway.
        let coverage = vec![vec![0], vec![1], vec![]];
        let picked = greedy_weighted_cover(3, &coverage, |_| 1.0);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn redundant_candidates_skipped() {
        // Candidate 1 covers a subset of candidate 0's coverage.
        let coverage = vec![vec![0, 1, 2], vec![1, 2]];
        let picked = greedy_weighted_cover(3, &coverage, |_| 1.0);
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn textbook_greedy_ratio_example() {
        // Classic weighted instance: {0,1,2} coverable by
        //   A = {0,1,2} at weight 3.1, B = {0,1} at weight 1, C = {2} at 1.
        // Greedy ratio picks B (2/1) then C (1/1): total weight 2 < 3.1.
        let coverage = vec![vec![0, 1, 2], vec![0, 1], vec![2]];
        let picked = greedy_weighted_cover(3, &coverage, |d| [3.1, 1.0, 1.0][d]);
        assert_eq!(picked, vec![1, 2]);
    }

    #[test]
    fn demonstration_set_generation_end_to_end() {
        // Questions on a line at 0,1,...,9; pool demos at 0.5, 5.5, 20.
        let questions: Vec<f64> = (0..10).map(|q| q as f64).collect();
        let pool = [0.5f64, 5.5, 20.0];
        let t = 5.0;
        let selected =
            demonstration_set_generation(10, 3, |d, q| (pool[d] - questions[q]).abs() < t);
        // Demo 0 covers 0..5, demo 1 covers 1..9: both needed; demo 2
        // covers nothing.
        assert!(selected.contains(&0));
        assert!(selected.contains(&1));
        assert!(!selected.contains(&2));
    }

    #[test]
    fn batch_covering_minimizes_tokens() {
        // Batch of 2 questions; demo set {10, 11, 12} (pool ids).
        // Demo 10 covers both but is huge; 11 and 12 cover one each and
        // are tiny. Greedy ratio with token weights picks the two cheap
        // ones (2/100 = 0.02 < 1/2 = 0.5 each).
        let demo_set = vec![10usize, 11, 12];
        let covers = |d: usize, q: usize| match d {
            10 => true,
            11 => q == 0,
            12 => q == 1,
            _ => false,
        };
        let tokens = |d: usize| if d == 10 { 100.0 } else { 2.0 };
        let picked = batch_covering(2, &demo_set, covers, tokens);
        let mut picked_pool: Vec<usize> = picked.iter().map(|&i| demo_set[i]).collect();
        picked_pool.sort_unstable();
        assert_eq!(picked_pool, vec![11, 12]);
    }

    #[test]
    fn empty_inputs() {
        assert!(greedy_weighted_cover(0, &[], |_| 1.0).is_empty());
        assert!(demonstration_set_generation(0, 0, |_, _| false).is_empty());
        assert!(batch_covering(0, &[], |_, _| false, |_| 1.0).is_empty());
    }

    #[test]
    fn large_random_instance_fully_covered() {
        // Randomized-ish deterministic instance: 500 elements, 80
        // candidates with arithmetic-progression coverage.
        let n = 500usize;
        let coverage: Vec<Vec<u32>> = (1..=80usize)
            .map(|step| (0..n as u32).step_by(step).collect())
            .collect();
        let picked = greedy_weighted_cover(n, &coverage, |d| 1.0 + d as f64 * 0.01);
        let mut covered = vec![false; n];
        for &d in &picked {
            for &e in &coverage[d] {
                covered[e as usize] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c), "instance not fully covered");
        // step=1 candidate covers everything; lazy greedy must find a
        // small solution (it should in fact pick exactly that one first).
        assert!(picked.len() <= 2, "picked {} candidates", picked.len());
    }
}
