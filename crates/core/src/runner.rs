//! The experiment runner: one reproducible end-to-end BatchER run.
//!
//! Wires the pipeline of Fig. 2 — split, featurize, batch, select,
//! prompt, execute, score — and returns the three quantities every table
//! in the paper reports: F1, API cost and labeling cost.

use er_core::{BinaryConfusion, CostLedger, Dataset, LabeledPair, MatchLabel};
use llm::{ChatApi, ModelKind};

use crate::batching::{BatchingStrategy, ClusteringKind};
use crate::executor::{ExecutionOutcome, Executor};
use crate::features::{DistanceKind, ExtractorKind};
use crate::plan::{plan_question_batches, BatchPlanConfig};
use crate::prompt::task_description;
use crate::selection::SelectionStrategy;

/// Full configuration of one run — one cell of the paper's design space.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Question batching strategy (Table I).
    pub batching: BatchingStrategy,
    /// Demonstration selection strategy (Table I).
    pub selection: SelectionStrategy,
    /// Feature extractor (Table VII).
    pub extractor: ExtractorKind,
    /// Distance function (§III-B; Euclidean is the paper's choice).
    pub distance: DistanceKind,
    /// Clustering algorithm for batching (DBSCAN in the paper).
    pub clustering: ClusteringKind,
    /// Underlying LLM.
    pub model: ModelKind,
    /// Questions per batch (§VI-A uses 8).
    pub batch_size: usize,
    /// Demonstrations per batch for fixed / top-k strategies (§VI-A: 8).
    pub k: usize,
    /// Covering threshold percentile (§VI-A: 8th).
    pub cover_percentile: f64,
    /// Executor retries.
    pub max_retries: u32,
    /// Master seed: controls the split, batching, selection and the
    /// simulated model's sampling noise.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            batching: BatchingStrategy::Diversity,
            selection: SelectionStrategy::Covering,
            extractor: ExtractorKind::LevenshteinRatio,
            distance: DistanceKind::Euclidean,
            clustering: ClusteringKind::Dbscan,
            model: ModelKind::Gpt35Turbo0301,
            batch_size: 8,
            k: 8,
            cover_percentile: 8.0,
            max_retries: 2,
            seed: 42,
        }
    }
}

impl RunConfig {
    /// The paper's best design choice (Finding 2): diversity batching +
    /// covering selection + structure-aware LR features.
    pub fn best_design() -> Self {
        Self::default()
    }

    /// Standard prompting (Fig. 1a): one question per call with `k` fixed
    /// random demonstrations — the Exp-1 baseline configuration.
    pub fn standard_prompting() -> Self {
        Self {
            batching: BatchingStrategy::Random,
            selection: SelectionStrategy::Fixed,
            batch_size: 1,
            ..Self::default()
        }
    }

    /// Batch prompting with the same fixed demonstrations as
    /// [`RunConfig::standard_prompting`] — Exp-1's treatment arm.
    pub fn batch_prompting_fixed() -> Self {
        Self {
            batching: BatchingStrategy::Random,
            selection: SelectionStrategy::Fixed,
            ..Self::default()
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Test-set confusion counts.
    pub confusion: BinaryConfusion,
    /// API + labeling costs.
    pub ledger: CostLedger,
    /// Number of batches submitted.
    pub batches: usize,
    /// Unique demonstrations human-labeled.
    pub demos_labeled: usize,
    /// Questions with no parseable answer (counted as non-matching, the
    /// conservative production default).
    pub unanswered: usize,
    /// Executor retries.
    pub retries: u32,
    /// Wall time of the planning stage (featurize + batch + select),
    /// microseconds.
    pub plan_us: u64,
    /// Wall time of the execution stage (every batch call), microseconds.
    pub exec_us: u64,
}

impl RunResult {
    /// F1 percentage.
    pub fn f1(&self) -> f64 {
        self.confusion.scores().f1
    }
}

/// Runs one configuration against a dataset over the given endpoint.
///
/// The dataset splits 3:1:1 (train = unlabeled demonstration pool,
/// test = question set) exactly as §VI-A prescribes.
pub fn run(dataset: &Dataset, api: &dyn ChatApi, config: RunConfig) -> RunResult {
    let split = dataset
        .split_3_1_1(config.seed)
        .expect("datasets are non-empty by construction");
    run_on_split(dataset, &split.train, &split.test, api, config)
}

/// Runs one configuration on explicit pool/question slices (used by the
/// benches to subsample and by Fig. 7 to align splits across systems).
pub fn run_on_split(
    dataset: &Dataset,
    pool: &[&LabeledPair],
    questions: &[&LabeledPair],
    api: &dyn ChatApi,
    config: RunConfig,
) -> RunResult {
    assert!(!pool.is_empty(), "demonstration pool must be non-empty");
    assert!(!questions.is_empty(), "question set must be non-empty");

    // 1-3. Featurize, batch and select demonstrations — shared with the
    // serving layer through the externally-usable planning step.
    let question_pairs: Vec<&er_core::EntityPair> = questions.iter().map(|p| &p.pair).collect();
    let plan_started = std::time::Instant::now();
    let plan = plan_question_batches(
        &question_pairs,
        pool,
        &BatchPlanConfig::from_run_config(&config),
    );
    let plan_us = u64::try_from(plan_started.elapsed().as_micros()).unwrap_or(u64::MAX);

    // 4. Execute every batch.
    let description = task_description(dataset.domain());
    let executor = Executor::new(api, config.model, config.max_retries);
    let exec_started = std::time::Instant::now();
    let mut outcome = ExecutionOutcome::default();
    let mut question_order: Vec<usize> = Vec::with_capacity(questions.len());
    for (bi, batch) in plan.batches.iter().enumerate() {
        let demos: Vec<&LabeledPair> = plan.demos_per_batch[bi].iter().map(|&d| pool[d]).collect();
        let serialized: Vec<String> = batch
            .iter()
            .map(|&q| questions[q].pair.serialize())
            .collect();
        executor.run_batch(
            &description,
            &demos,
            &serialized,
            config.seed ^ ((bi as u64) << 16),
            &mut outcome,
        );
        question_order.extend(batch.iter().copied());
    }
    debug_assert_eq!(question_order.len(), outcome.answers.len());
    let exec_us = u64::try_from(exec_started.elapsed().as_micros()).unwrap_or(u64::MAX);

    // 5. Labeling cost: every unique selected demonstration is annotated
    // once (§VI-A's AMT pricing).
    outcome.ledger.record_labeling(plan.labeled.len() as u64);

    // 6. Score. Unanswered questions default to non-matching.
    let mut confusion = BinaryConfusion::new();
    let mut unanswered = 0usize;
    for (&qi, answer) in question_order.iter().zip(&outcome.answers) {
        let predicted = answer.unwrap_or_else(|| {
            unanswered += 1;
            MatchLabel::NonMatching
        });
        confusion.observe(questions[qi].label, predicted);
    }

    RunResult {
        confusion,
        ledger: outcome.ledger,
        batches: plan.batches.len(),
        demos_labeled: plan.labeled.len(),
        unanswered,
        retries: outcome.retries,
        plan_us,
        exec_us,
    }
}

/// Convenience for Table IV: runs one `(batching, selection)` cell with
/// the default extractor/model on a dataset.
pub fn run_design_space_cell(
    dataset: &Dataset,
    api: &dyn ChatApi,
    batching: BatchingStrategy,
    selection: SelectionStrategy,
    seed: u64,
) -> RunResult {
    run(
        dataset,
        api,
        RunConfig { batching, selection, seed, ..RunConfig::default() },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};
    use llm::SimLlm;

    fn beer() -> Dataset {
        generate(DatasetKind::Beer, 5)
    }

    #[test]
    fn best_design_runs_end_to_end() {
        let d = beer();
        let api = SimLlm::new();
        let result = run(&d, &api, RunConfig { seed: 1, ..RunConfig::best_design() });
        // Beer test split = 90 pairs.
        assert_eq!(result.confusion.total(), 90);
        assert!(result.f1() > 50.0, "implausible F1: {}", result.f1());
        assert!(result.batches >= 90 / 8);
        assert!(result.demos_labeled > 0);
        assert!(result.ledger.api > er_core::Money::ZERO);
        assert!(result.ledger.labeling > er_core::Money::ZERO);
    }

    #[test]
    fn batch_prompting_cheaper_than_standard() {
        let d = beer();
        let api = SimLlm::new();
        let standard = run(
            &d,
            &api,
            RunConfig { seed: 2, ..RunConfig::standard_prompting() },
        );
        let batch = run(
            &d,
            &api,
            RunConfig { seed: 2, ..RunConfig::batch_prompting_fixed() },
        );
        let saving = standard.ledger.api.ratio(batch.ledger.api);
        assert!(
            saving > 3.0,
            "API saving only {saving:.2}x (std {}, batch {})",
            standard.ledger.api,
            batch.ledger.api
        );
        // Same labeling cost: both use k fixed demos.
        assert_eq!(standard.demos_labeled, batch.demos_labeled);
    }

    #[test]
    fn covering_labels_far_fewer_than_topk_question() {
        let d = beer();
        let api = SimLlm::new();
        let cover = run_design_space_cell(
            &d,
            &api,
            BatchingStrategy::Diversity,
            SelectionStrategy::Covering,
            3,
        );
        let topk = run_design_space_cell(
            &d,
            &api,
            BatchingStrategy::Diversity,
            SelectionStrategy::TopKQuestion,
            3,
        );
        assert!(
            cover.demos_labeled * 2 <= topk.demos_labeled,
            "cover {} vs topk-question {}",
            cover.demos_labeled,
            topk.demos_labeled
        );
        assert!(cover.ledger.labeling < topk.ledger.labeling);
    }

    #[test]
    fn all_twelve_design_cells_complete() {
        let d = beer();
        let api = SimLlm::new();
        for batching in BatchingStrategy::ALL {
            for selection in SelectionStrategy::ALL {
                let r = run_design_space_cell(&d, &api, batching, selection, 4);
                assert_eq!(
                    r.confusion.total(),
                    90,
                    "{batching:?}/{selection:?} lost questions"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = beer();
        let api = SimLlm::new();
        let a = run(&d, &api, RunConfig { seed: 9, ..RunConfig::default() });
        let b = run(&d, &api, RunConfig { seed: 9, ..RunConfig::default() });
        assert_eq!(a.confusion, b.confusion);
        assert_eq!(a.ledger, b.ledger);
    }

    #[test]
    #[should_panic(expected = "question set")]
    fn empty_questions_panic() {
        let d = beer();
        let api = SimLlm::new();
        let pool: Vec<&LabeledPair> = d.pairs().iter().collect();
        let _ = run_on_split(&d, &pool, &[], &api, RunConfig::default());
    }
}
