//! Question batching (§III): random, similarity-based and diversity-based
//! strategies over clustered questions.

use cluster::{dbscan_matrix, kmeans_matrix, Clustering, DbscanParams, KMeansParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::features::FeatureSpace;

/// The three batching strategies of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchingStrategy {
    /// Uniform random batches (the middle ground, §III-A).
    Random,
    /// Batches drawn from within one cluster at a time.
    Similarity,
    /// Batches spanning `b` different clusters — the paper's winner.
    Diversity,
}

impl BatchingStrategy {
    /// All strategies in Table IV column order.
    pub const ALL: [BatchingStrategy; 3] = [
        BatchingStrategy::Random,
        BatchingStrategy::Similarity,
        BatchingStrategy::Diversity,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BatchingStrategy::Random => "Random",
            BatchingStrategy::Similarity => "Similarity",
            BatchingStrategy::Diversity => "Diversity",
        }
    }
}

/// Clustering algorithm for the batching stage. The paper uses DBSCAN
/// ("the algorithm achieves the best performance", §III); K-Means is the
/// ablation alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusteringKind {
    /// DBSCAN with ε at the given percentile of pairwise distances
    /// (`min_pts` = 4). The paper does not publish its ε; the 15th
    /// percentile recovers compact per-pattern clusters on all eight
    /// benchmarks.
    Dbscan,
    /// K-Means with `k = ceil(n / batch_size)`.
    KMeans,
}

/// `min_pts` used by the DBSCAN batching stage everywhere in the crate
/// (the incremental planner's graph repair must agree with the full
/// pipeline on core-ness).
pub const DBSCAN_MIN_PTS: usize = 3;

/// Percentile of pairwise question distances defining the DBSCAN ε.
pub const DBSCAN_EPS_PERCENTILE: f64 = 15.0;

/// Groups the question set into batches of (at most) `batch_size`.
///
/// Every question lands in exactly one batch, and every batch except
/// possibly stragglers has exactly `batch_size` members — the union of all
/// batches must equal the question set (§II-C).
pub fn make_batches(
    space: &FeatureSpace,
    strategy: BatchingStrategy,
    clustering: ClusteringKind,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    // Checked again in batches_for_clustering, but asserted here first so
    // a zero batch size fails by name before any clustering work runs.
    assert!(batch_size > 0, "batch size must be positive");
    let clusters = (strategy != BatchingStrategy::Random)
        .then(|| cluster_questions(space, clustering, batch_size, seed));
    batches_for_clustering(space.len(), clusters.as_ref(), strategy, batch_size, seed)
}

/// The batch-assembly half of [`make_batches`]: groups `0..n` questions
/// into batches given an already-computed clustering (`None` is accepted
/// for — and only for — the random strategy, which ignores clusters).
///
/// Split out so a caller that *maintains* the clustering incrementally
/// can reuse the exact assembly semantics without re-clustering.
pub fn batches_for_clustering(
    n: usize,
    clusters: Option<&Clustering>,
    strategy: BatchingStrategy,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        BatchingStrategy::Random => {
            let mut order: Vec<usize> = (0..n).collect();
            shuffle(&mut order, &mut rng);
            order.chunks(batch_size).map(<[usize]>::to_vec).collect()
        }
        BatchingStrategy::Similarity => {
            let clusters = clusters.expect("similarity batching requires a clustering");
            assert_eq!(clusters.assignment.len(), n, "clustering size mismatch");
            similarity_batches(clusters, batch_size, &mut rng)
        }
        BatchingStrategy::Diversity => {
            let clusters = clusters.expect("diversity batching requires a clustering");
            assert_eq!(clusters.assignment.len(), n, "clustering size mismatch");
            diversity_batches(clusters, batch_size, &mut rng)
        }
    }
}

/// Runs the configured clustering algorithm over question features.
pub fn cluster_questions(
    space: &FeatureSpace,
    clustering: ClusteringKind,
    batch_size: usize,
    seed: u64,
) -> Clustering {
    cluster_questions_pinned(space, clustering, batch_size, seed, None).0
}

/// Like [`cluster_questions`], but with an optional pinned DBSCAN ε
/// (`eps_override`). Returns the clustering together with the ε actually
/// used (`None` for K-Means), so callers that freeze the threshold across
/// incremental re-plans can record it.
pub fn cluster_questions_pinned(
    space: &FeatureSpace,
    clustering: ClusteringKind,
    batch_size: usize,
    seed: u64,
    eps_override: Option<f64>,
) -> (Clustering, Option<f64>) {
    match clustering {
        ClusteringKind::Dbscan => {
            let eps = eps_override.unwrap_or_else(|| {
                space
                    .distance_percentile(DBSCAN_EPS_PERCENTILE, 200_000, seed)
                    .max(1e-9)
            });
            // Clustering always runs Euclidean over the contiguous matrix
            // (pivot-pruned region queries); only ε derives from the
            // space's configured distance.
            let clusters = dbscan_matrix(
                space.matrix(),
                DbscanParams { eps, min_pts: DBSCAN_MIN_PTS },
            );
            (clusters, Some(eps))
        }
        ClusteringKind::KMeans => {
            let k = space.len().div_ceil(batch_size).max(1);
            let clusters = kmeans_matrix(space.matrix(), KMeansParams { k, max_iters: 30, seed });
            (clusters, None)
        }
    }
}

/// Similarity-based batching (§III-A): fill batches from one cluster at a
/// time, largest first. End-game per the paper: take the largest remaining
/// cluster `Cmax`, look for a cluster of size exactly `b − |Cmax|` to
/// complete the batch; otherwise random-fill from the next largest.
fn similarity_batches(clusters: &Clustering, b: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    // Work queue of clusters as index lists, kept sorted by size (desc).
    let mut remaining: Vec<Vec<usize>> = clusters
        .groups()
        .into_iter()
        .filter(|g| !g.is_empty())
        .collect();
    let mut batches = Vec::new();

    loop {
        remaining.sort_by_key(|c| std::cmp::Reverse(c.len()));
        remaining.retain(|c| !c.is_empty());
        let Some(largest) = remaining.first_mut() else {
            break;
        };

        if largest.len() >= b {
            // Whole batch from one cluster.
            let batch: Vec<usize> = largest.drain(..b).collect();
            batches.push(batch);
            continue;
        }
        // End game: largest cluster is smaller than b.
        let mut batch = std::mem::take(largest);
        remaining.remove(0);
        let need = b - batch.len();
        // Prefer a cluster of exactly the complementary size.
        if let Some(pos) = remaining.iter().position(|c| c.len() == need) {
            batch.extend(remaining.remove(pos));
        } else if let Some(next) = remaining.first_mut() {
            // Otherwise random-fill from the next largest cluster.
            for _ in 0..need.min(next.len()) {
                let pick = rng.gen_range(0..next.len());
                batch.push(next.swap_remove(pick));
            }
        }
        batches.push(batch);
    }
    batches
}

/// Diversity-based batching (§III-A): one question from each of `b`
/// distinct clusters per batch; when fewer than `b` clusters remain,
/// round-robin over what is left (Example 4's final-batch semantics).
fn diversity_batches(clusters: &Clustering, b: usize, _rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut remaining: Vec<Vec<usize>> = clusters
        .groups()
        .into_iter()
        .filter(|g| !g.is_empty())
        .collect();
    let mut batches = Vec::new();
    while remaining.iter().any(|c| !c.is_empty()) {
        // Largest-first keeps cluster sizes balanced as batches drain them.
        remaining.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut batch = Vec::with_capacity(b);
        if remaining.len() >= b {
            for cluster in remaining.iter_mut().take(b) {
                if let Some(q) = cluster.pop() {
                    batch.push(q);
                }
            }
        } else {
            // Round-robin over the remaining clusters until the batch
            // fills or everything drains.
            let mut ci = 0usize;
            while batch.len() < b && remaining.iter().any(|c| !c.is_empty()) {
                let idx = ci % remaining.len();
                if let Some(q) = remaining[idx].pop() {
                    batch.push(q);
                }
                ci += 1;
            }
        }
        remaining.retain(|c| !c.is_empty());
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    batches
}

fn shuffle(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::DistanceKind;

    /// Feature space with three obvious clusters of sizes 2 / 3 / 4
    /// (mirrors Example 4 of the paper).
    fn example4_space() -> FeatureSpace {
        let mut v = Vec::new();
        for i in 0..2 {
            v.push(vec![0.0 + i as f64 * 0.001, 0.0]);
        }
        for i in 0..3 {
            v.push(vec![5.0 + i as f64 * 0.001, 5.0]);
        }
        for i in 0..4 {
            v.push(vec![10.0 + i as f64 * 0.001, 0.0]);
        }
        FeatureSpace::from_vectors(v, DistanceKind::Euclidean)
    }

    fn assert_partition(batches: &[Vec<usize>], n: usize) {
        let mut seen: Vec<usize> = batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(seen, expect, "batches do not partition the question set");
    }

    #[test]
    fn random_batches_partition() {
        let space = example4_space();
        let batches = make_batches(
            &space,
            BatchingStrategy::Random,
            ClusteringKind::Dbscan,
            4,
            1,
        );
        assert_partition(&batches, 9);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches.last().unwrap().len(), 1);
    }

    /// The clustering of Example 4: Ca = {0,1}, Cb = {2,3,4},
    /// Cc = {5,6,7,8}.
    fn example4_clusters() -> Clustering {
        Clustering { assignment: vec![0, 0, 1, 1, 1, 2, 2, 2, 2], n_clusters: 3 }
    }

    fn cluster_of(q: usize) -> usize {
        match q {
            0 | 1 => 0,
            2..=4 => 1,
            _ => 2,
        }
    }

    #[test]
    fn similarity_batches_follow_example4() {
        // Strategy semantics are tested against the paper's hand clustering
        // so the assertion does not depend on DBSCAN's discovery behavior.
        let mut rng = StdRng::seed_from_u64(1);
        let batches = similarity_batches(&example4_clusters(), 3, &mut rng);
        assert_partition(&batches, 9);
        // Example 4(1): Cb and the first 3 of Cc each form intra-cluster
        // batches; the final batch merges Ca with the Cc leftover.
        let intra = batches
            .iter()
            .filter(|b| {
                let c0 = cluster_of(b[0]);
                b.iter().all(|&q| cluster_of(q) == c0)
            })
            .count();
        assert!(intra >= 2, "expected ≥2 intra-cluster batches: {batches:?}");
        // The end-game batch combines the size-2 cluster Ca with exactly
        // one leftover element (2 + 1 = b).
        let mixed: Vec<&Vec<usize>> = batches
            .iter()
            .filter(|b| {
                let c0 = cluster_of(b[0]);
                !b.iter().all(|&q| cluster_of(q) == c0)
            })
            .collect();
        assert_eq!(
            mixed.len(),
            1,
            "exactly one end-game batch expected: {batches:?}"
        );
    }

    #[test]
    fn diversity_batches_follow_example4() {
        let mut rng = StdRng::seed_from_u64(1);
        let batches = diversity_batches(&example4_clusters(), 3, &mut rng);
        assert_partition(&batches, 9);
        // Example 4(2): the first two batches take one question from each
        // of the three clusters.
        for batch in batches.iter().take(2) {
            let mut hit: Vec<usize> = batch.iter().map(|&q| cluster_of(q)).collect();
            hit.sort_unstable();
            hit.dedup();
            assert_eq!(hit.len(), 3, "batch not fully diverse: {batch:?}");
        }
    }

    #[test]
    fn make_batches_with_dbscan_partitions_regardless_of_clusters() {
        let space = example4_space();
        for strategy in [BatchingStrategy::Similarity, BatchingStrategy::Diversity] {
            let batches = make_batches(&space, strategy, ClusteringKind::Dbscan, 3, 1);
            assert_partition(&batches, 9);
        }
    }

    #[test]
    fn kmeans_clustering_also_works() {
        let space = example4_space();
        let batches = make_batches(
            &space,
            BatchingStrategy::Diversity,
            ClusteringKind::KMeans,
            3,
            7,
        );
        assert_partition(&batches, 9);
    }

    #[test]
    fn empty_question_set() {
        let space = FeatureSpace::from_vectors(vec![], DistanceKind::Euclidean);
        assert!(make_batches(
            &space,
            BatchingStrategy::Random,
            ClusteringKind::Dbscan,
            8,
            1
        )
        .is_empty());
    }

    #[test]
    fn batch_size_one_degenerates_to_singletons() {
        let space = example4_space();
        let batches = make_batches(
            &space,
            BatchingStrategy::Diversity,
            ClusteringKind::Dbscan,
            1,
            1,
        );
        assert_eq!(batches.len(), 9);
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn deterministic_in_seed() {
        let space = example4_space();
        for strategy in BatchingStrategy::ALL {
            let a = make_batches(&space, strategy, ClusteringKind::Dbscan, 4, 3);
            let b = make_batches(&space, strategy, ClusteringKind::Dbscan, 4, 3);
            assert_eq!(a, b, "{strategy:?} not deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_panics() {
        let space = example4_space();
        let _ = make_batches(
            &space,
            BatchingStrategy::Random,
            ClusteringKind::Dbscan,
            0,
            1,
        );
    }

    #[test]
    fn no_batch_exceeds_size() {
        let space = example4_space();
        for strategy in BatchingStrategy::ALL {
            for b in [2usize, 3, 5, 8] {
                let batches = make_batches(&space, strategy, ClusteringKind::Dbscan, b, 11);
                assert!(
                    batches.iter().all(|batch| batch.len() <= b),
                    "{strategy:?} b={b} produced oversized batch"
                );
                assert_partition(&batches, 9);
            }
        }
    }
}
