//! Prompt execution with retry, rate-limit backoff and context-overflow
//! splitting.

use er_core::{CostLedger, LabeledPair, MatchLabel};
use llm::{parse_answers, ChatApi, ChatRequest, LlmError, ModelKind};

use crate::prompt::build_batch_prompt;

/// Executes rendered prompts against a [`ChatApi`] endpoint.
#[derive(Clone, Copy)]
pub struct Executor<'a> {
    api: &'a dyn ChatApi,
    model: ModelKind,
    /// Retries on unparseable output or rate limiting.
    max_retries: u32,
    /// Caller's trace id, stamped onto every request this executor issues
    /// so HTTP-backed [`ChatApi`] implementations can propagate it
    /// downstream (0 = untraced).
    trace_id: u64,
}

/// Aggregate outcome of executing one or more batches.
#[derive(Debug, Clone, Default)]
pub struct ExecutionOutcome {
    /// One answer slot per question, in submission order. `None` = the
    /// model never produced a parseable answer for it.
    pub answers: Vec<Option<MatchLabel>>,
    /// API cost/usage.
    pub ledger: CostLedger,
    /// Retries performed (rate limits + malformed output).
    pub retries: u32,
    /// Times an oversized batch was split to fit the context window.
    pub context_splits: u32,
    /// Wall time of each individual API call, microseconds, in issue
    /// order (failed calls included — they cost latency too). The serving
    /// layer feeds these into its LLM-call-latency histogram.
    pub call_latencies_us: Vec<u64>,
}

impl<'a> Executor<'a> {
    /// An executor for `model` over `api`.
    pub fn new(api: &'a dyn ChatApi, model: ModelKind, max_retries: u32) -> Self {
        Self { api, model, max_retries, trace_id: 0 }
    }

    /// Stamps `trace_id` onto every request this executor issues.
    pub fn with_trace(mut self, trace_id: u64) -> Self {
        self.trace_id = trace_id;
        self
    }

    /// Runs one batch: builds the prompt from `description`, `demos` and
    /// the serialized `questions`, submits it, parses the per-question
    /// answers, and handles the three recoverable failures:
    ///
    /// * **Rate limiting** — retried up to `max_retries`.
    /// * **Unparseable output** — retried with a perturbed seed (a real
    ///   harness resamples the model); after the budget, the affected
    ///   questions stay unanswered (`None`).
    /// * **Context overflow** — the batch splits in half recursively with
    ///   the same demonstrations, mirroring the fallback a production
    ///   harness needs for long entity descriptions.
    pub fn run_batch(
        &self,
        description: &str,
        demos: &[&LabeledPair],
        questions: &[String],
        seed: u64,
        outcome: &mut ExecutionOutcome,
    ) {
        if questions.is_empty() {
            return;
        }
        let prompt = build_batch_prompt(description, demos, questions);
        let mut attempt = 0u32;
        loop {
            let request = ChatRequest::new(self.model, prompt.clone(), seed ^ u64::from(attempt))
                .with_trace(self.trace_id, attempt);
            let call_started = std::time::Instant::now();
            let result = self.api.complete(&request);
            outcome
                .call_latencies_us
                .push(u64::try_from(call_started.elapsed().as_micros()).unwrap_or(u64::MAX));
            match result {
                Ok(resp) => {
                    outcome.ledger.record_api_call(
                        resp.usage.prompt_tokens,
                        resp.usage.completion_tokens,
                        resp.cost,
                    );
                    match parse_answers(&resp.content, questions.len()) {
                        Ok(labels) => {
                            outcome.answers.extend(labels.into_iter().map(Some));
                            return;
                        }
                        Err(_) if attempt < self.max_retries => {
                            outcome.retries += 1;
                            attempt += 1;
                            continue;
                        }
                        Err(_) => {
                            outcome
                                .answers
                                .extend(std::iter::repeat_n(None, questions.len()));
                            return;
                        }
                    }
                }
                Err(LlmError::RateLimited) if attempt < self.max_retries => {
                    outcome.retries += 1;
                    attempt += 1;
                }
                Err(LlmError::ContextLengthExceeded { .. }) if questions.len() > 1 => {
                    // Same demos, half the questions, recursively.
                    outcome.context_splits += 1;
                    let mid = questions.len() / 2;
                    self.run_batch(
                        description,
                        demos,
                        &questions[..mid],
                        seed ^ 0x51F7,
                        outcome,
                    );
                    self.run_batch(
                        description,
                        demos,
                        &questions[mid..],
                        seed ^ 0x51F9,
                        outcome,
                    );
                    return;
                }
                Err(_) => {
                    // Unrecoverable for this batch: leave the questions
                    // unanswered rather than abort the whole run.
                    outcome
                        .answers
                        .extend(std::iter::repeat_n(None, questions.len()));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::task_description;
    use datagen::{generate, DatasetKind};
    use llm::{SimLlm, SimLlmConfig};

    fn setup() -> (Vec<LabeledPair>, String) {
        let d = generate(DatasetKind::Beer, 2);
        (d.pairs().to_vec(), task_description("Beer"))
    }

    #[test]
    fn answers_every_question_in_order() {
        let (pairs, desc) = setup();
        let api = SimLlm::new();
        let exec = Executor::new(&api, ModelKind::Gpt4, 2);
        let demos: Vec<&LabeledPair> = pairs[..4].iter().collect();
        let questions: Vec<String> = pairs[4..12].iter().map(|p| p.pair.serialize()).collect();
        let mut outcome = ExecutionOutcome::default();
        exec.run_batch(&desc, &demos, &questions, 5, &mut outcome);
        assert_eq!(outcome.answers.len(), 8);
        assert!(outcome.answers.iter().all(Option::is_some));
        assert_eq!(outcome.ledger.api_calls, 1);
    }

    #[test]
    fn rate_limits_retried() {
        let (pairs, desc) = setup();
        // 60% rate limiting: with 4 retries most batches eventually pass.
        let api = SimLlm::with_config(SimLlmConfig { rate_limit_rate: 0.6, ..Default::default() });
        let exec = Executor::new(&api, ModelKind::Gpt4, 8);
        let questions: Vec<String> = pairs[..4].iter().map(|p| p.pair.serialize()).collect();
        let mut outcome = ExecutionOutcome::default();
        exec.run_batch(&desc, &[], &questions, 3, &mut outcome);
        assert_eq!(outcome.answers.len(), 4);
        // Either it succeeded after retries, or exhausted them.
        assert!(outcome.retries > 0 || outcome.answers.iter().all(Option::is_some));
    }

    #[test]
    fn malformed_output_exhausts_retries_to_none() {
        let (pairs, desc) = setup();
        let api = SimLlm::with_config(SimLlmConfig { malformed_rate: 1.0, ..Default::default() });
        let exec = Executor::new(&api, ModelKind::Gpt4, 2);
        let questions: Vec<String> = pairs[..3].iter().map(|p| p.pair.serialize()).collect();
        let mut outcome = ExecutionOutcome::default();
        exec.run_batch(&desc, &[], &questions, 3, &mut outcome);
        assert_eq!(outcome.answers, vec![None, None, None]);
        assert_eq!(outcome.retries, 2);
        // Every attempt was still paid for — failed parses are not free.
        assert_eq!(outcome.ledger.api_calls, 3);
    }

    #[test]
    fn context_overflow_splits_batch() {
        let (pairs, desc) = setup();
        let api = SimLlm::new();
        // GPT-3.5 has a 4k context; a batch with padded questions must
        // split rather than fail.
        let exec = Executor::new(&api, ModelKind::Gpt35Turbo0301, 2);
        let filler = "very long descriptive filler text ".repeat(120);
        let questions: Vec<String> = pairs[..8]
            .iter()
            .map(|p| format!("{} {filler}", p.pair.serialize()))
            .collect();
        let mut outcome = ExecutionOutcome::default();
        exec.run_batch(&desc, &[], &questions, 3, &mut outcome);
        assert_eq!(outcome.answers.len(), 8);
        assert!(outcome.context_splits > 0, "oversized batch never split");
        assert!(outcome.ledger.api_calls >= 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (_, desc) = setup();
        let api = SimLlm::new();
        let exec = Executor::new(&api, ModelKind::Gpt4, 2);
        let mut outcome = ExecutionOutcome::default();
        exec.run_batch(&desc, &[], &[], 1, &mut outcome);
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.ledger.api_calls, 0);
    }
}
