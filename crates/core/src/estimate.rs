//! Pre-run cost estimation.
//!
//! The paper's motivation is budgeting (§I walks through a $1,800 quote
//! for naive standard prompting). This module produces that quote *before*
//! spending anything: given a dataset and a run configuration, it predicts
//! API calls, prompt tokens and dollar cost from sampled token statistics,
//! without contacting any endpoint.

use er_core::{Dataset, Money, TokenCount};
use llm::{count_tokens, PriceTable};

use crate::prompt::task_description;
use crate::runner::RunConfig;
use crate::selection::SelectionStrategy;

/// A pre-run quote for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Predicted number of API calls (batches).
    pub calls: u64,
    /// Predicted total prompt tokens.
    pub prompt_tokens: TokenCount,
    /// Predicted API cost (input side; completions add the output rate on
    /// ~15 tokens per question).
    pub api: Money,
    /// Labeling cost bounds `(low, high)`: exact for fixed selection,
    /// a range for relevance-driven strategies whose final demo count
    /// depends on the data.
    pub labeling: (Money, Money),
}

impl CostEstimate {
    /// Quotes a run of `config` over `dataset` without executing anything.
    ///
    /// Token statistics come from averaging the serialized length of up to
    /// 256 pairs; the question count follows the 3:1:1 split the runner
    /// will use.
    pub fn quote(dataset: &Dataset, config: &RunConfig) -> Self {
        let n = dataset.len();
        let test_n = (n / 5).max(1) as u64; // the 3:1:1 test share
        let batch = config.batch_size.max(1) as u64;
        let calls = test_n.div_ceil(batch);

        // Average serialized-pair tokens over a deterministic sample.
        let sample = dataset.pairs().iter().take(256);
        let (mut total, mut count) = (0u64, 0u64);
        for p in sample {
            total += count_tokens(&p.pair.serialize());
            count += 1;
        }
        let avg_pair = total.checked_div(count).unwrap_or(90);

        // Demos per prompt: k for fixed/top-k; covering prompts carry
        // roughly one covering demo per distinct question pattern — we
        // bound it by k and estimate half.
        let demos_per_prompt = match config.selection {
            SelectionStrategy::Covering => (config.k as u64).div_ceil(2),
            _ => config.k as u64,
        };
        let desc_tokens = count_tokens(&task_description(dataset.domain())) + 30;
        let per_call = desc_tokens + demos_per_prompt * (avg_pair + 4) + batch * (avg_pair + 4);
        let prompt_tokens = TokenCount(per_call * calls);

        let price = PriceTable::for_model(config.model);
        // ~15 completion tokens per question (verdict + short rationale).
        let completion = TokenCount(15 * test_n);
        let api = price.cost(prompt_tokens, completion);

        let labeling = match config.selection {
            SelectionStrategy::Fixed => {
                let exact = er_core::LABEL_COST_PER_PAIR * config.k as u64;
                (exact, exact)
            }
            SelectionStrategy::Covering => (
                // Covers observed across the benchmark suite label between
                // ~0.3% and ~4% of the question set.
                er_core::LABEL_COST_PER_PAIR * (test_n / 300).max(4),
                er_core::LABEL_COST_PER_PAIR * (test_n / 25).max(40),
            ),
            SelectionStrategy::TopKBatch | SelectionStrategy::TopKQuestion => (
                // Between one demo per batch and saturation at one per
                // question.
                er_core::LABEL_COST_PER_PAIR * calls,
                er_core::LABEL_COST_PER_PAIR * test_n,
            ),
        };

        Self { calls, prompt_tokens, api, labeling }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DatasetKind};
    use llm::SimLlm;

    #[test]
    fn quote_brackets_actual_run() {
        let dataset = generate(DatasetKind::Beer, 5);
        let config = RunConfig { seed: 1, ..RunConfig::best_design() };
        let quote = CostEstimate::quote(&dataset, &config);
        let actual = crate::runner::run(&dataset, &SimLlm::new(), config);

        // Call count: exact up to end-game batch splitting.
        let diff = quote.calls.abs_diff(actual.ledger.api_calls);
        assert!(
            diff <= 2,
            "calls {} vs actual {}",
            quote.calls,
            actual.ledger.api_calls
        );

        // API cost within 2x either way — a usable budget quote.
        let ratio = quote.api.ratio(actual.ledger.api);
        assert!(
            (0.5..=2.0).contains(&ratio),
            "quote {} vs actual {} (ratio {ratio:.2})",
            quote.api,
            actual.ledger.api
        );

        // Labeling bracket contains the actual cost.
        assert!(
            quote.labeling.0 <= actual.ledger.labeling
                && actual.ledger.labeling <= quote.labeling.1,
            "labeling {} outside [{}, {}]",
            actual.ledger.labeling,
            quote.labeling.0,
            quote.labeling.1
        );
    }

    #[test]
    fn fixed_selection_quote_is_exact_on_labeling() {
        let dataset = generate(DatasetKind::Beer, 5);
        let config = RunConfig { seed: 1, ..RunConfig::batch_prompting_fixed() };
        let quote = CostEstimate::quote(&dataset, &config);
        assert_eq!(quote.labeling.0, quote.labeling.1);
        let actual = crate::runner::run(&dataset, &SimLlm::new(), config);
        assert_eq!(actual.ledger.labeling, quote.labeling.0);
    }

    #[test]
    fn standard_prompting_quotes_more_calls_and_cost() {
        let dataset = generate(DatasetKind::FodorsZagats, 5);
        let std_quote = CostEstimate::quote(&dataset, &RunConfig::standard_prompting());
        let batch_quote = CostEstimate::quote(&dataset, &RunConfig::batch_prompting_fixed());
        assert!(std_quote.calls > batch_quote.calls * 7);
        assert!(
            std_quote.api.ratio(batch_quote.api) > 3.0,
            "std {} vs batch {}",
            std_quote.api,
            batch_quote.api
        );
    }

    #[test]
    fn gpt4_quotes_ten_x() {
        let dataset = generate(DatasetKind::Beer, 5);
        let base = RunConfig::best_design();
        let g35 = CostEstimate::quote(&dataset, &base);
        let g4 = CostEstimate::quote(&dataset, &RunConfig { model: llm::ModelKind::Gpt4, ..base });
        assert!(g4.api.ratio(g35.api) > 8.0);
    }
}
