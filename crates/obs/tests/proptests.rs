//! Property tests for the histogram layer and a golden test for the
//! Prometheus text encoding.
//!
//! Deterministic by construction: cases are driven by a fixed-seed
//! xorshift generator, so a failure reproduces by re-running the test.

use obs::hist::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, N_BUCKETS};
use obs::registry::Registry;

/// xorshift64* — tiny, deterministic, good enough to sweep the space.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A value spread across magnitudes: pick a bit width, then a value
    /// within it, so small and huge values are equally likely.
    fn spread(&mut self) -> u64 {
        let bits = self.next() % 64;
        self.next() >> bits
    }
}

#[test]
fn prop_bucket_boundaries_exact() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for _ in 0..200_000 {
        let v = rng.spread();
        let i = bucket_index(v);
        assert!(i < N_BUCKETS);
        assert!(
            v <= bucket_upper_bound(i),
            "v={v} exceeds bound of its bucket {i}"
        );
        if i > 0 {
            assert!(
                bucket_upper_bound(i - 1) < v,
                "v={v} also fits bucket {}",
                i - 1
            );
        }
    }
    // Bounds themselves are strictly increasing and land in their own bucket.
    for i in 0..N_BUCKETS {
        let ub = bucket_upper_bound(i);
        assert_eq!(
            bucket_index(ub),
            i,
            "bound {ub} of bucket {i} maps elsewhere"
        );
        if i > 0 {
            assert!(bucket_upper_bound(i - 1) < ub);
        }
    }
}

#[test]
fn prop_quantiles_monotone_and_bounded() {
    let mut rng = Rng(0xD1B54A32D192ED03);
    for case in 0..200 {
        let h = Histogram::detached();
        let n = 1 + (rng.next() % 500);
        let mut max = 0u64;
        let mut min = u64::MAX;
        for _ in 0..n {
            let v = rng.spread();
            max = max.max(v);
            min = min.min(v);
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, n, "case {case}");
        assert_eq!((s.min, s.max), (min, max), "case {case}");
        let mut prev = 0u64;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = s.quantile(q);
            assert!(v >= prev, "case {case}: quantile({q}) = {v} < {prev}");
            assert!(
                (min..=max).contains(&v),
                "case {case}: quantile({q}) = {v} outside [{min}, {max}]"
            );
            prev = v;
        }
        assert_eq!(s.quantile(0.0), min, "case {case}");
        assert_eq!(s.quantile(1.0), max, "case {case}");
    }
}

#[test]
fn prop_merge_associative_commutative_with_identity() {
    let mut rng = Rng(0xA0761D6478BD642F);
    for case in 0..100 {
        let snap = |rng: &mut Rng| {
            let h = Histogram::detached();
            for _ in 0..rng.next() % 40 {
                h.record(rng.spread());
            }
            h.snapshot()
        };
        let (a, b, c) = (snap(&mut rng), snap(&mut rng), snap(&mut rng));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "case {case}: merge not associative");

        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "case {case}: merge not commutative");

        // identity: merging an empty snapshot changes nothing.
        let mut with_empty = a.clone();
        with_empty.merge(&HistogramSnapshot::default());
        assert_eq!(with_empty, a, "case {case}: empty merge not identity");

        // merge == concatenation for the quantile-relevant fields.
        assert_eq!(ab.count, a.count + b.count, "case {case}");
    }
}

#[test]
fn golden_prometheus_encoding() {
    let r = Registry::new();
    let requests = r.counter("requests_total", "Total requests.", &[]);
    let depth = r.gauge("queue_depth", "Questions queued.", &[]);
    let lat = r.histogram("latency_us", "Answer latency.", &[("path", "a\\b\"c\nd")]);
    requests.add(5);
    depth.set(3);
    for v in [1u64, 2, 5, 1000] {
        lat.record(v);
    }
    // Bucket bounds: 1 -> le=1; 2 -> le=2; 5 -> le=5 (first sub-bucket
    // past the exact range); 1000 -> le=1023 (octave [512,1024), last
    // sub-bucket).
    let expected = concat!(
        "# HELP requests_total Total requests.\n",
        "# TYPE requests_total counter\n",
        "requests_total 5\n",
        "# HELP queue_depth Questions queued.\n",
        "# TYPE queue_depth gauge\n",
        "queue_depth 3\n",
        "# HELP latency_us Answer latency.\n",
        "# TYPE latency_us histogram\n",
        "latency_us_bucket{path=\"a\\\\b\\\"c\\nd\",le=\"1\"} 1\n",
        "latency_us_bucket{path=\"a\\\\b\\\"c\\nd\",le=\"2\"} 2\n",
        "latency_us_bucket{path=\"a\\\\b\\\"c\\nd\",le=\"5\"} 3\n",
        "latency_us_bucket{path=\"a\\\\b\\\"c\\nd\",le=\"1023\"} 4\n",
        "latency_us_bucket{path=\"a\\\\b\\\"c\\nd\",le=\"+Inf\"} 4\n",
        "latency_us_sum{path=\"a\\\\b\\\"c\\nd\"} 1008\n",
        "latency_us_count{path=\"a\\\\b\\\"c\\nd\"} 4\n",
    );
    let rendered = r.render_prometheus();
    assert_eq!(rendered, expected);
    // And the linter agrees with the encoder.
    let report = obs::lint(&rendered).expect("golden body lints clean");
    assert_eq!(report.histograms, 1);
    assert_eq!(report.families, 3);
}

#[test]
fn rendered_registry_always_lints_clean() {
    // Fuzz the encoder against the linter across random label values
    // and observation sets.
    let mut rng = Rng(0xE7037ED1A0B428DB);
    for case in 0..50 {
        let r = Registry::new();
        let mut value = String::new();
        for _ in 0..rng.next() % 12 {
            // Bias toward the characters that need escaping.
            value.push(match rng.next() % 6 {
                0 => '\\',
                1 => '"',
                2 => '\n',
                3 => '{',
                4 => ',',
                _ => 'x',
            });
        }
        let h = r.histogram("h_us", "Case histogram.", &[("v", &value)]);
        let c = r.counter("c_total", "Case counter.", &[("v", &value)]);
        for _ in 0..rng.next() % 30 {
            h.record(rng.spread());
        }
        c.add(rng.next() % 100);
        if let Err(issues) = obs::lint(&r.render_prometheus()) {
            panic!("case {case} (label {value:?}) does not lint: {issues:?}");
        }
    }
}
