//! Zero-dependency telemetry for the batcher workspace.
//!
//! Three pillars, one crate, no external dependencies (in keeping with
//! the `vendor/` policy — see DESIGN.md):
//!
//! - [`hist`] — log-bucketed concurrent histograms: lock-free recording
//!   on per-thread shards, mergeable snapshots, p50/p90/p99/max with a
//!   bounded 12.5% relative error.
//! - [`registry`] — named counter/gauge/histogram families with labels,
//!   rendered as Prometheus text exposition (format 0.0.4, hand-rolled
//!   encoder). Recording never takes the registry lock; a
//!   [`Registry::disabled`] registry hands out dark no-op handles so the
//!   cost of instrumentation itself can be measured.
//! - [`trace`] — per-request lifecycle spans: open at submit, stamp at
//!   each pipeline stage, finish exactly once at a terminal stage, kept
//!   in a bounded ring and rendered as JSON for `GET /trace`.
//!
//! [`lint`] validates exposition bodies (histogram family coherence
//! included) and backs the `promlint` binary CI runs against live
//! scrapes.

pub mod hist;
pub mod lint;
pub mod registry;
pub mod trace;

pub use hist::{
    bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, HistogramTimer, N_BUCKETS,
};
pub use lint::{lint, LintIssue, LintReport};
pub use registry::{escape_label_value, Counter, Gauge, Registry};
pub use trace::{Span, SpanEvent, TraceLog};
