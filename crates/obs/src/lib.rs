//! Zero-dependency telemetry for the batcher workspace.
//!
//! Three pillars, one crate, no external dependencies (in keeping with
//! the `vendor/` policy — see DESIGN.md):
//!
//! - [`hist`] — log-bucketed concurrent histograms: lock-free recording
//!   on per-thread shards, mergeable snapshots, p50/p90/p99/max with a
//!   bounded 12.5% relative error.
//! - [`registry`] — named counter/gauge/histogram families with labels,
//!   rendered as Prometheus text exposition (format 0.0.4, hand-rolled
//!   encoder). Recording never takes the registry lock; a
//!   [`Registry::disabled`] registry hands out dark no-op handles so the
//!   cost of instrumentation itself can be measured.
//! - [`trace`] — per-request lifecycle spans: open at submit, stamp at
//!   each pipeline stage, finish exactly once at a terminal stage, kept
//!   in a bounded ring and rendered as JSON for `GET /trace`. Spans are
//!   queryable by trace id and by correlation key, which is how a
//!   downstream service's child spans assemble under a propagated trace.
//!
//! Two debugging layers ride on the pillars:
//!
//! - [`slo`] — multi-window (5m/1h) burn-rate evaluation over declared
//!   objectives, with injectable time for testability.
//! - [`event`] — a bounded, always-on ring of structured system events
//!   (breaker trips, degraded-mode entries, snapshots), the flight
//!   recorder's memory.
//!
//! [`lint`] validates exposition bodies (histogram family coherence and
//! OpenMetrics-style bucket exemplars included) and backs the `promlint`
//! binary CI runs against live scrapes.

pub mod event;
pub mod hist;
pub mod lint;
pub mod registry;
pub mod slo;
pub mod trace;

pub use event::{Event, EventLog};
pub use hist::{
    bucket_index, bucket_upper_bound, Exemplar, Histogram, HistogramSnapshot, HistogramTimer,
    N_BUCKETS,
};
pub use lint::{lint, LintIssue, LintReport};
pub use registry::{escape_label_value, Counter, Gauge, Registry};
pub use slo::{Slo, SloStatus, WindowBurn};
pub use trace::{span_json, spans_json, Span, SpanEvent, TraceLog};
