//! Log-linear histograms: lock-free recording, mergeable snapshots,
//! quantile estimation.
//!
//! The bucket layout is **fixed and global** — every histogram shares the
//! same boundaries — so any two snapshots merge by element-wise addition,
//! which is what makes per-thread shards, cross-instance aggregation and
//! full/incremental family merging all the same trivial operation.
//!
//! Layout: values 0–3 get exact buckets; from 4 up, every power-of-two
//! octave `[2^e, 2^(e+1))` splits into 4 equal sub-buckets. Relative
//! quantile error is therefore bounded at 12.5% while the whole `u64`
//! range fits in [`N_BUCKETS`] buckets. Boundaries are exact integers:
//! [`bucket_upper_bound`] is the largest value a bucket admits, and
//! `bucket_index` / `bucket_upper_bound` are inverse in the sense pinned
//! by the property tests (`v <= ub(idx(v))`, `ub(idx(v) - 1) < v`).
//!
//! Recording is a handful of relaxed atomics on a per-thread shard —
//! no locks, no allocation — so instrumented hot paths pay nanoseconds.
//! Scraping folds the shards into a [`HistogramSnapshot`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of per-thread shards counters stripe across (power of two).
const SHARDS: usize = 8;

/// Sub-buckets per power-of-two octave.
const SUBS: u64 = 4;

/// Total bucket count: 4 exact small-value buckets (0, 1, 2, 3) plus 4
/// sub-buckets for each octave `e` in `2..=63`.
pub const N_BUCKETS: usize = 4 + 62 * SUBS as usize;

/// The bucket a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as u64; // floor(log2 v), >= 2
    let sub = (v - (1u64 << e)) >> (e - 2);
    (4 + (e - 2) * SUBS + sub) as usize
}

/// The largest value bucket `i` admits (inclusive). The last bucket's
/// bound is `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let e = 2 + (i as u64 - 4) / SUBS;
    let sub = (i as u64 - 4) % SUBS;
    // 2^e + (sub+1) * 2^(e-2) - 1; for e = 63, sub = 3 this is u64::MAX.
    (1u64 << e)
        .wrapping_add((sub + 1) << (e - 2))
        .wrapping_sub(1)
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread records into one fixed shard, assigned round-robin,
    /// so concurrent recorders rarely contend on a cache line.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

struct Shard {
    counts: Box<[AtomicU64; N_BUCKETS]>,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
        }
    }
}

/// One captured exemplar: the trace id of a real observation that landed
/// in a bucket, plus the observed value itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The trace id recorded alongside the observation (never 0).
    pub trace_id: u64,
    /// The observed value (always within the bucket's bounds).
    pub value: u64,
}

/// Per-bucket exemplar slot, last write wins. The value is stored before
/// the id; a racing reader can at worst pair the new id with the previous
/// observation's value, which still lies in the same bucket.
struct ExemplarSlot {
    trace_id: AtomicU64,
    value: AtomicU64,
}

/// A concurrent log-linear histogram. Created through
/// [`crate::registry::Registry`] for exposition, or
/// [`Histogram::detached`] for standalone measurement.
pub struct Histogram {
    enabled: bool,
    shards: Vec<Shard>,
    /// Exact extremes (the bucketed quantiles clamp to these).
    min: AtomicU64,
    max: AtomicU64,
    /// Per-bucket exemplar capture, armed at construction (`None` keeps
    /// the recording path allocation- and branch-light).
    exemplars: Option<Box<[ExemplarSlot]>>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::detached()
    }
}

impl Histogram {
    /// A standalone histogram not attached to any registry.
    pub fn detached() -> Self {
        Self::with_enabled(true)
    }

    pub(crate) fn with_enabled(enabled: bool) -> Self {
        Self::with_options(enabled, false)
    }

    pub(crate) fn with_options(enabled: bool, exemplars: bool) -> Self {
        Self {
            enabled,
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: (enabled && exemplars).then(|| {
                (0..N_BUCKETS)
                    .map(|_| ExemplarSlot { trace_id: AtomicU64::new(0), value: AtomicU64::new(0) })
                    .collect()
            }),
        }
    }

    /// A standalone histogram with per-bucket exemplar capture armed.
    pub fn detached_with_exemplars() -> Self {
        Self::with_options(true, true)
    }

    /// Records one observation. Lock-free; a disabled histogram records
    /// nothing (the single branch is the whole disabled-mode cost).
    pub fn record(&self, v: u64) {
        if !self.enabled {
            return;
        }
        let shard = &self.shards[MY_SHARD.with(|s| *s)];
        shard.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one observation and — when exemplar capture is armed and
    /// `trace_id` is nonzero — stamps it as the bucket's exemplar, last
    /// write winning. Without armed capture this is exactly [`record`].
    ///
    /// [`record`]: Histogram::record
    pub fn record_with_exemplar(&self, v: u64, trace_id: u64) {
        self.record(v);
        if let Some(slots) = &self.exemplars {
            if trace_id != 0 {
                let slot = &slots[bucket_index(v)];
                slot.value.store(v, Ordering::Relaxed);
                slot.trace_id.store(trace_id, Ordering::Release);
            }
        }
    }

    /// Records a [`std::time::Duration`] in microseconds with an
    /// exemplar trace id.
    pub fn record_duration_us_with_exemplar(&self, d: std::time::Duration, trace_id: u64) {
        self.record_with_exemplar(u64::try_from(d.as_micros()).unwrap_or(u64::MAX), trace_id);
    }

    /// The exemplar captured for bucket `i`, if capture is armed and a
    /// traced observation ever landed there.
    pub fn exemplar(&self, i: usize) -> Option<Exemplar> {
        let slots = self.exemplars.as_ref()?;
        let slot = slots.get(i)?;
        let trace_id = slot.trace_id.load(Ordering::Acquire);
        if trace_id == 0 {
            return None;
        }
        Some(Exemplar { trace_id, value: slot.value.load(Ordering::Relaxed) })
    }

    /// Whether per-bucket exemplar capture is armed.
    pub fn has_exemplars(&self) -> bool {
        self.exemplars.is_some()
    }

    /// Starts a timer that records its elapsed microseconds on drop —
    /// handy for timing a scope with early returns.
    pub fn start_timer(&self) -> HistogramTimer<'_> {
        HistogramTimer { hist: self, started: std::time::Instant::now() }
    }

    /// Folds every shard into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; N_BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (acc, c) in counts.iter_mut().zip(shard.counts.iter()) {
                *acc += c.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count: u64 = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum,
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Records the elapsed time into its histogram when dropped.
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    hist: &'a Histogram,
    started: std::time::Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration_us(self.started.elapsed());
    }
}

/// A folded histogram: plain numbers, mergeable with any other snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`N_BUCKETS`] entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { counts: vec![0; N_BUCKETS], count: 0, sum: 0, min: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one. Associative and
    /// commutative (identical global bucket layout), with `min`/`max`
    /// combined so quantile clamping stays exact.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as a bucket upper bound clamped
    /// to the exact observed extremes. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_exact() {
        for v in (0u64..=4096).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 1]) {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} above its bucket bound");
            if i > 0 {
                assert!(
                    bucket_upper_bound(i - 1) < v,
                    "v={v} fits the previous bucket"
                );
            }
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        // 12.5% relative bucket error.
        assert!((440..=570).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!((980..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::detached().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn disabled_records_nothing() {
        let h = Histogram::with_enabled(false);
        h.record(42);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn concurrent_recording_conserves_count() {
        let h = std::sync::Arc::new(Histogram::detached());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.sum, (0..8000u64).sum::<u64>());
        assert_eq!(s.max, 7999);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn exemplars_capture_last_traced_observation_per_bucket() {
        let h = Histogram::detached_with_exemplars();
        assert!(h.has_exemplars());
        h.record_with_exemplar(1000, 7);
        h.record_with_exemplar(1010, 8); // same bucket: last write wins
        h.record_with_exemplar(5, 9);
        h.record_with_exemplar(3, 0); // zero trace id: counted, no exemplar
        h.record(2_000_000); // untraced: counted, no exemplar

        let ex = h.exemplar(bucket_index(1010)).unwrap();
        assert_eq!((ex.trace_id, ex.value), (8, 1010));
        let ex = h.exemplar(bucket_index(5)).unwrap();
        assert_eq!((ex.trace_id, ex.value), (9, 5));
        assert!(h.exemplar(bucket_index(3)).is_none());
        assert!(h.exemplar(bucket_index(2_000_000)).is_none());
        assert_eq!(h.snapshot().count, 5);

        // Unarmed histograms record normally and expose nothing.
        let plain = Histogram::detached();
        plain.record_with_exemplar(1000, 7);
        assert!(!plain.has_exemplars());
        assert!(plain.exemplar(bucket_index(1000)).is_none());
        assert_eq!(plain.snapshot().count, 1);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        let both = Histogram::detached();
        for v in [3u64, 17, 900, 4096] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 2, 1 << 30] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }
}
