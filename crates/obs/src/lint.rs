//! A small Prometheus text-exposition linter.
//!
//! Validates the subset of format 0.0.4 that matters for a scrape to be
//! ingestible: `# HELP` / `# TYPE` header syntax, metric and label name
//! charsets, label-value escaping, numeric sample values, and — the part
//! flat line-by-line checks miss — histogram family *coherence*: every
//! histogram must expose `_bucket` / `_sum` / `_count`, every bucket
//! series must end in `le="+Inf"`, cumulative counts must be
//! non-decreasing in `le`, and the `+Inf` bucket must equal `_count`.
//!
//! Used by the `promlint` binary (CI scrapes the serving example and
//! pipes the body through it) and by the golden encoding tests, which
//! lint the registry's own output.

use std::collections::HashMap;

/// One problem found in an exposition body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    /// 1-based line number (0 for whole-document issues).
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for LintIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

/// Summary of a clean exposition body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintReport {
    /// `# TYPE`-declared families.
    pub families: usize,
    /// Of which histograms.
    pub histograms: usize,
    /// Sample lines.
    pub samples: usize,
    /// OpenMetrics-style exemplars attached to bucket samples.
    pub exemplars: usize,
}

/// Parsed `k="v"` label pairs in document order.
type Labels = Vec<(String, String)>;

#[derive(Default)]
struct HistSeries {
    /// `(le, cumulative count)` in document order.
    buckets: Vec<(f64, f64)>,
    sum: bool,
    count: Option<f64>,
}

/// Lints a Prometheus text exposition body. Returns a summary when
/// clean, otherwise every issue found.
pub fn lint(text: &str) -> Result<LintReport, Vec<LintIssue>> {
    let mut issues: Vec<LintIssue> = Vec::new();
    // family name -> kind
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: Vec<String> = Vec::new();
    // (family, label-key-without-le) -> accumulated histogram series
    let mut hists: HashMap<(String, String), HistSeries> = HashMap::new();
    let mut samples = 0usize;
    let mut exemplars = 0usize;

    for (i, raw) in text.lines().enumerate() {
        let n = i + 1;
        let mut issue = |message: String| issues.push(LintIssue { line: n, message });
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                // HELP text itself is free-form (may be empty).
                let name = rest.split_once(' ').map_or(rest, |(n, _)| n);
                if !crate::registry::valid_metric_name(name) {
                    issue(format!("invalid metric name in HELP: {name:?}"));
                } else if helps.iter().any(|h| h == name) {
                    issue(format!("duplicate HELP for {name}"));
                } else {
                    helps.push(name.to_owned());
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                match rest.split_once(' ') {
                    Some((name, kind)) => {
                        if !crate::registry::valid_metric_name(name) {
                            issue(format!("invalid metric name in TYPE: {name:?}"));
                        }
                        if !matches!(
                            kind,
                            "counter" | "gauge" | "histogram" | "summary" | "untyped"
                        ) {
                            issue(format!("unknown metric type {kind:?} for {name}"));
                        }
                        if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                            issue(format!("duplicate TYPE for {name}"));
                        }
                    }
                    None => issue(format!("malformed TYPE line: {line:?}")),
                }
            }
            // Other comments are legal and ignored.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp] [# {labels} value]
        let (name, labels, value, exemplar) = match parse_sample(line) {
            Ok(parts) => parts,
            Err(message) => {
                issue(message);
                continue;
            }
        };
        samples += 1;
        if !crate::registry::valid_metric_name(&name) {
            issue(format!("invalid metric name: {name:?}"));
            continue;
        }
        let Ok(value) = parse_value(&value) else {
            issue(format!("unparseable sample value {value:?} for {name}"));
            continue;
        };
        for (k, _) in &labels {
            if !crate::registry::valid_label_name(k) {
                issue(format!("invalid label name {k:?} on {name}"));
            }
        }
        let exemplar = match exemplar {
            None => None,
            Some((ex_labels, ex_value)) => {
                let mut ok = true;
                if ex_labels.is_empty() {
                    issue(format!("exemplar on {name} has no labels"));
                    ok = false;
                }
                for (k, _) in &ex_labels {
                    if !crate::registry::valid_label_name(k) {
                        issue(format!("invalid exemplar label name {k:?} on {name}"));
                        ok = false;
                    }
                }
                match parse_value(&ex_value) {
                    Ok(v) if ok => {
                        if !name.ends_with("_bucket") {
                            issue(format!(
                                "exemplar on {name}: only _bucket samples may carry exemplars"
                            ));
                            None
                        } else {
                            exemplars += 1;
                            Some(v)
                        }
                    }
                    Ok(_) => None,
                    Err(()) => {
                        issue(format!("unparseable exemplar value {ex_value:?} on {name}"));
                        None
                    }
                }
            }
        };

        // Attribute histogram samples to their family.
        let hist_family = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let base = name.strip_suffix(suffix)?;
            (types.get(base).map(String::as_str) == Some("histogram"))
                .then(|| (base.to_owned(), *suffix))
        });
        match hist_family {
            Some((family, "_bucket")) => {
                let Some(le) = labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v) else {
                    issue(format!("{name} sample missing the le label"));
                    continue;
                };
                let Ok(le) = parse_value(le) else {
                    issue(format!("unparseable le value {le:?} on {name}"));
                    continue;
                };
                if let Some(ex) = exemplar {
                    if ex > le {
                        issue(format!(
                            "exemplar value {ex} on {name} exceeds its bucket bound le=\"{le}\""
                        ));
                    }
                }
                let key = label_key(&labels, true);
                hists
                    .entry((family, key))
                    .or_default()
                    .buckets
                    .push((le, value));
            }
            Some((family, "_sum")) => {
                hists
                    .entry((family, label_key(&labels, false)))
                    .or_default()
                    .sum = true;
            }
            Some((family, "_count")) => {
                hists
                    .entry((family, label_key(&labels, false)))
                    .or_default()
                    .count = Some(value);
            }
            _ => {
                if types.get(&name).map(String::as_str) == Some("histogram") {
                    issue(format!(
                        "{name} is a histogram; bare samples must use _bucket/_sum/_count"
                    ));
                }
            }
        }
    }

    // Whole-document histogram coherence.
    let mut seen_hist_families: Vec<&str> = Vec::new();
    let mut doc_issue = |message: String| issues.push(LintIssue { line: 0, message });
    for ((family, key), series) in hists.iter() {
        seen_hist_families.push(family);
        let at = if key.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{key}}}")
        };
        if series.buckets.is_empty() {
            doc_issue(format!(
                "histogram {at} has _sum/_count but no _bucket samples"
            ));
            continue;
        }
        let mut prev: Option<(f64, f64)> = None;
        for &(le, cum) in &series.buckets {
            if let Some((ple, pcum)) = prev {
                if le <= ple {
                    doc_issue(format!(
                        "histogram {at}: le buckets not increasing ({ple} then {le})"
                    ));
                }
                if cum < pcum {
                    doc_issue(format!(
                        "histogram {at}: cumulative bucket counts decrease ({pcum} then {cum})"
                    ));
                }
            }
            prev = Some((le, cum));
        }
        let (last_le, last_cum) = *series.buckets.last().expect("non-empty");
        if last_le != f64::INFINITY {
            doc_issue(format!("histogram {at}: missing le=\"+Inf\" bucket"));
        }
        if !series.sum {
            doc_issue(format!("histogram {at}: missing _sum sample"));
        }
        match series.count {
            None => doc_issue(format!("histogram {at}: missing _count sample")),
            Some(count) if last_le == f64::INFINITY && count != last_cum => doc_issue(format!(
                "histogram {at}: +Inf bucket ({last_cum}) != _count ({count})"
            )),
            Some(_) => {}
        }
    }
    for (name, kind) in &types {
        if kind == "histogram" && !seen_hist_families.iter().any(|f| f == name) {
            doc_issue(format!(
                "histogram {name} declared by TYPE but has no samples"
            ));
        }
    }

    if issues.is_empty() {
        Ok(LintReport {
            families: types.len(),
            histograms: types.values().filter(|k| *k == "histogram").count(),
            samples,
            exemplars,
        })
    } else {
        issues.sort_by_key(|i| i.line);
        Err(issues)
    }
}

/// Splits a sample line into `(name, labels, value-token, exemplar)`.
/// The exemplar, when present, is the OpenMetrics `# {labels} value`
/// suffix, returned as its label pairs and value token.
#[allow(clippy::type_complexity)]
fn parse_sample(line: &str) -> Result<(String, Labels, String, Option<(Labels, String)>), String> {
    let (name, rest) = match line.find(['{', ' ']) {
        Some(pos) => (line[..pos].to_owned(), &line[pos..]),
        None => return Err(format!("sample line has no value: {line:?}")),
    };
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        parse_labels(body)?
    } else {
        (Vec::new(), rest)
    };
    // An exemplar rides after a ` # ` separator; label values were
    // already consumed above, so any remaining '#' is the separator.
    let (rest, exemplar_part) = match rest.find('#') {
        Some(pos) => (&rest[..pos], Some(rest[pos + 1..].trim_start())),
        None => (rest, None),
    };
    let mut tokens = rest.split_ascii_whitespace();
    let value = tokens
        .next()
        .ok_or_else(|| format!("sample line has no value: {line:?}"))?;
    if let Some(ts) = tokens.next() {
        // Optional millisecond timestamp must be an integer.
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparseable timestamp {ts:?}"));
        }
    }
    if tokens.next().is_some() {
        return Err(format!("trailing tokens after timestamp: {line:?}"));
    }
    let exemplar = match exemplar_part {
        None => None,
        Some(part) => {
            let body = part
                .strip_prefix('{')
                .ok_or_else(|| format!("exemplar without label set: {line:?}"))?;
            let (ex_labels, after) = parse_labels(body)?;
            let mut ex_tokens = after.split_ascii_whitespace();
            let ex_value = ex_tokens
                .next()
                .ok_or_else(|| format!("exemplar has no value: {line:?}"))?;
            if let Some(ts) = ex_tokens.next() {
                // Optional exemplar timestamp (seconds, may be fractional).
                if ts.parse::<f64>().is_err() {
                    return Err(format!("unparseable exemplar timestamp {ts:?}"));
                }
            }
            if ex_tokens.next().is_some() {
                return Err(format!("trailing tokens after exemplar: {line:?}"));
            }
            Some((ex_labels, ex_value.to_owned()))
        }
    };
    Ok((name, labels, value.to_owned(), exemplar))
}

/// Parses `k="v",...}` (the body after the opening `{`), returning the
/// pairs and the remainder after the closing brace.
fn parse_labels(mut body: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    loop {
        body = body.trim_start_matches(' ');
        if let Some(rest) = body.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = body
            .find('=')
            .ok_or_else(|| format!("label without '=': {body:?}"))?;
        let key = body[..eq].trim().to_owned();
        body = body[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label value for {key:?} not quoted"))?;
        let mut value = String::new();
        let mut chars = body.char_indices();
        let after_quote = loop {
            let Some((pos, c)) = chars.next() else {
                return Err(format!("unterminated label value for {key:?}"));
            };
            match c {
                '"' => break &body[pos + 1..],
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, other)) => {
                        return Err(format!("invalid escape \\{other} in label {key:?}"))
                    }
                    None => return Err(format!("dangling backslash in label {key:?}")),
                },
                c => value.push(c),
            }
        };
        labels.push((key, value));
        body = after_quote;
        if let Some(rest) = body.strip_prefix(',') {
            body = rest;
        }
    }
}

/// Parses a Prometheus sample value: decimal, `+Inf`, `-Inf`, `NaN`.
fn parse_value(v: &str) -> Result<f64, ()> {
    // Rust's f64 parser accepts inf/infinity/nan case-insensitively,
    // which covers the Prometheus spellings.
    v.parse::<f64>().map_err(|_| ())
}

/// A canonical key for a label set, excluding `le` when requested.
fn label_key(labels: &[(String, String)], drop_le: bool) -> String {
    let mut pairs: Vec<&(String, String)> = labels
        .iter()
        .filter(|(k, _)| !(drop_le && k == "le"))
        .collect();
    pairs.sort();
    pairs
        .iter()
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_clean(text: &str) -> LintReport {
        match lint(text) {
            Ok(report) => report,
            Err(issues) => panic!(
                "expected clean, got:\n{}",
                issues
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            ),
        }
    }

    fn assert_flagged(text: &str, needle: &str) {
        let issues = lint(text).expect_err("expected lint issues");
        assert!(
            issues.iter().any(|i| i.message.contains(needle)),
            "no issue containing {needle:?} in: {issues:?}"
        );
    }

    #[test]
    fn clean_body_passes() {
        let report = assert_clean(concat!(
            "# HELP requests_total Total requests.\n",
            "# TYPE requests_total counter\n",
            "requests_total{path=\"/match\"} 10\n",
            "# HELP lat_us Latency.\n",
            "# TYPE lat_us histogram\n",
            "lat_us_bucket{le=\"1\"} 2\n",
            "lat_us_bucket{le=\"8\"} 5\n",
            "lat_us_bucket{le=\"+Inf\"} 6\n",
            "lat_us_sum 120\n",
            "lat_us_count 6\n",
        ));
        assert_eq!(
            report,
            LintReport { families: 2, histograms: 1, samples: 6, exemplars: 0 }
        );
    }

    #[test]
    fn exemplars_on_bucket_lines_validate() {
        let report = assert_clean(concat!(
            "# TYPE lat_us histogram\n",
            "lat_us_bucket{le=\"8\"} 5 # {trace_id=\"19\"} 7\n",
            "lat_us_bucket{le=\"+Inf\"} 6 # {trace_id=\"20\"} 90\n",
            "lat_us_sum 120\n",
            "lat_us_count 6\n",
        ));
        assert_eq!(report.exemplars, 2);
    }

    #[test]
    fn malformed_exemplars_flagged() {
        // Exemplar value above its bucket bound.
        assert_flagged(
            concat!(
                "# TYPE lat_us histogram\n",
                "lat_us_bucket{le=\"8\"} 5 # {trace_id=\"19\"} 9\n",
                "lat_us_bucket{le=\"+Inf\"} 5\n",
                "lat_us_sum 20\n",
                "lat_us_count 5\n",
            ),
            "exceeds its bucket bound",
        );
        // Exemplars belong on bucket lines only.
        assert_flagged("ok_total 3 # {trace_id=\"1\"} 2\n", "only _bucket samples");
        // Syntax errors.
        assert_flagged("ok_bucket{le=\"1\"} 1 # notlabels 2\n", "without label set");
        assert_flagged(
            "ok_bucket{le=\"1\"} 1 # {trace_id=\"1\"}\n",
            "exemplar has no value",
        );
        assert_flagged(
            "ok_bucket{le=\"1\"} 1 # {trace_id=\"1\"} nope\n",
            "unparseable exemplar value",
        );
        assert_flagged("ok_bucket{le=\"1\"} 1 # {} 1\n", "has no labels");
    }

    #[test]
    fn histogram_without_inf_bucket_flagged() {
        assert_flagged(
            concat!(
                "# TYPE lat_us histogram\n",
                "lat_us_bucket{le=\"1\"} 2\n",
                "lat_us_sum 2\n",
                "lat_us_count 2\n",
            ),
            "missing le=\"+Inf\"",
        );
    }

    #[test]
    fn decreasing_cumulative_flagged() {
        assert_flagged(
            concat!(
                "# TYPE lat_us histogram\n",
                "lat_us_bucket{le=\"1\"} 5\n",
                "lat_us_bucket{le=\"8\"} 3\n",
                "lat_us_bucket{le=\"+Inf\"} 5\n",
                "lat_us_sum 9\n",
                "lat_us_count 5\n",
            ),
            "counts decrease",
        );
    }

    #[test]
    fn inf_count_mismatch_flagged() {
        assert_flagged(
            concat!(
                "# TYPE lat_us histogram\n",
                "lat_us_bucket{le=\"+Inf\"} 5\n",
                "lat_us_sum 9\n",
                "lat_us_count 6\n",
            ),
            "!= _count",
        );
    }

    #[test]
    fn bad_names_and_values_flagged() {
        assert_flagged("9bad_name 1\n", "invalid metric name");
        assert_flagged("ok{2l=\"v\"} 1\n", "invalid label name");
        assert_flagged("ok nope\n", "unparseable sample value");
        assert_flagged("ok{l=\"a\\qb\"} 1\n", "invalid escape");
        assert_flagged("ok{l=\"unterminated} 1\n", "unterminated label value");
        assert_flagged("# TYPE x flugelhorn\n", "unknown metric type");
    }

    #[test]
    fn declared_but_empty_histogram_flagged() {
        assert_flagged("# TYPE lat_us histogram\n", "no samples");
    }

    #[test]
    fn escaped_label_values_round_trip() {
        assert_clean("ok{l=\"a\\\\b\\\"c\\nd\"} 1\n");
    }

    #[test]
    fn registry_render_is_clean() {
        let r = crate::registry::Registry::new();
        let c = r.counter("req_total", "Requests.", &[("path", "/a\"b\\c")]);
        let h = r.histogram("lat_us", "Latency.", &[("kind", "full")]);
        c.add(2);
        for v in [0u64, 1, 5, 900, 1 << 33] {
            h.record(v);
        }
        let report = assert_clean(&r.render_prometheus());
        assert_eq!(report.histograms, 1);
    }
}
