//! promlint: validate a Prometheus text-exposition file.
//!
//! Usage: `promlint [FILE ...]` — with no arguments, reads stdin.
//! Exits 0 when every input is clean, 1 otherwise. CI pipes the
//! serving example's `/metrics` scrape through this.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inputs: Vec<(String, String)> = if args.is_empty() {
        let mut body = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut body) {
            eprintln!("promlint: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        vec![("<stdin>".to_owned(), body)]
    } else {
        let mut inputs = Vec::new();
        for path in args {
            match std::fs::read_to_string(&path) {
                Ok(body) => inputs.push((path, body)),
                Err(e) => {
                    eprintln!("promlint: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        inputs
    };

    let mut failed = false;
    for (name, body) in inputs {
        match obs::lint(&body) {
            Ok(report) => println!(
                "{name}: OK ({} families, {} histograms, {} samples, {} exemplars)",
                report.families, report.histograms, report.samples, report.exemplars
            ),
            Err(issues) => {
                failed = true;
                eprintln!("{name}: {} issue(s)", issues.len());
                for issue in issues {
                    eprintln!("  {issue}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
