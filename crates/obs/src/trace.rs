//! Per-request lifecycle tracing: bounded, cheap, queryable.
//!
//! A span opens when a request enters the system ([`TraceLog::begin`]),
//! is stamped with named stages as it moves through the pipeline
//! ([`TraceLog::stamp`]), and closes exactly once with a terminal stage
//! ([`TraceLog::finish`]), at which point it moves into a bounded ring of
//! completed spans. Stage timestamps are microseconds since the span
//! opened, so a span reads as a latency breakdown.
//!
//! The log hands out plain `u64` trace ids (0 = "not traced", every
//! operation on it is a no-op), so instrumented code threads one integer
//! around instead of a guard object — which is what lets a span hop
//! across queue handoffs, coalesced batches and worker threads without
//! lifetime gymnastics.
//!
//! Conservation is observable: [`TraceLog::opened`] and
//! [`TraceLog::finished`] count span lifecycle transitions, and a span
//! can never finish twice (the id leaves the active table on the first
//! finish). The stress tests pin `opened == finished` at quiesce.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One stamped stage within a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (static by design — stages are code, not data).
    pub stage: &'static str,
    /// Optional free-form detail (epoch kind, batch index, source...).
    pub detail: Option<String>,
    /// Microseconds since the span opened.
    pub at_us: u64,
}

/// A completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The id handed out by [`TraceLog::begin`].
    pub trace_id: u64,
    /// Caller-provided correlation key (e.g. a question fingerprint).
    pub key: u64,
    /// Stages in stamp order; the last one is the terminal stage.
    pub events: Vec<SpanEvent>,
    /// Total span duration, microseconds.
    pub total_us: u64,
}

struct ActiveSpan {
    key: u64,
    opened: Instant,
    events: Vec<SpanEvent>,
}

struct Inner {
    active: HashMap<u64, ActiveSpan>,
    done: VecDeque<Span>,
}

/// The trace log. One per service; share by reference.
pub struct TraceLog {
    enabled: bool,
    capacity: usize,
    next_id: AtomicU64,
    opened: AtomicU64,
    finished: AtomicU64,
    /// Completed spans evicted from the ring.
    evicted: AtomicU64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("enabled", &self.enabled)
            .field("opened", &self.opened())
            .field("finished", &self.finished())
            .finish_non_exhaustive()
    }
}

impl TraceLog {
    /// A log retaining the most recent `capacity` completed spans.
    pub fn new(capacity: usize) -> Self {
        Self::with_enabled(true, capacity)
    }

    /// A disabled log: `begin` returns 0 and everything else no-ops.
    pub fn disabled() -> Self {
        Self::with_enabled(false, 0)
    }

    fn with_enabled(enabled: bool, capacity: usize) -> Self {
        Self {
            enabled,
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            opened: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            inner: Mutex::new(Inner { active: HashMap::new(), done: VecDeque::new() }),
        }
    }

    /// Opens a span and stamps `stage` at t=0. Returns the trace id
    /// (0 when the log is disabled).
    pub fn begin(&self, key: u64, stage: &'static str) -> u64 {
        if !self.enabled {
            return 0;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.opened.fetch_add(1, Ordering::Relaxed);
        let span = ActiveSpan {
            key,
            opened: Instant::now(),
            events: vec![SpanEvent { stage, detail: None, at_us: 0 }],
        };
        lock(&self.inner).active.insert(id, span);
        id
    }

    /// Stamps `stage` on an active span. Unknown / zero ids no-op.
    pub fn stamp(&self, id: u64, stage: &'static str) {
        self.stamp_event(id, stage, None);
    }

    /// Stamps `stage` with a detail string.
    pub fn stamp_with(&self, id: u64, stage: &'static str, detail: String) {
        self.stamp_event(id, stage, Some(detail));
    }

    fn stamp_event(&self, id: u64, stage: &'static str, detail: Option<String>) {
        if !self.enabled || id == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        if let Some(span) = inner.active.get_mut(&id) {
            let at_us = elapsed_us(span.opened);
            span.events.push(SpanEvent { stage, detail, at_us });
        }
    }

    /// Stamps the terminal `stage` and retires the span into the
    /// completed ring. Unknown / zero / already-finished ids no-op, so a
    /// span reaches a terminal stage at most once.
    pub fn finish(&self, id: u64, stage: &'static str, detail: Option<String>) {
        if !self.enabled || id == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        let Some(mut span) = inner.active.remove(&id) else {
            return;
        };
        let at_us = elapsed_us(span.opened);
        span.events.push(SpanEvent { stage, detail, at_us });
        inner.done.push_back(Span {
            trace_id: id,
            key: span.key,
            events: span.events,
            total_us: at_us,
        });
        if inner.done.len() > self.capacity {
            inner.done.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.finished.fetch_add(1, Ordering::Relaxed);
    }

    /// Spans opened so far.
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Spans finished so far.
    pub fn finished(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Completed spans evicted from the bounded ring.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Spans currently open.
    pub fn active_len(&self) -> usize {
        lock(&self.inner).active.len()
    }

    /// The most recent `k` completed spans, newest first.
    pub fn recent(&self, k: usize) -> Vec<Span> {
        let inner = lock(&self.inner);
        inner.done.iter().rev().take(k).cloned().collect()
    }

    /// Looks up one span by its trace id: the completed ring first, then
    /// the active table (an in-flight span renders with the stages
    /// stamped so far and its elapsed time as `total_us`).
    pub fn find(&self, trace_id: u64) -> Option<Span> {
        if !self.enabled || trace_id == 0 {
            return None;
        }
        let inner = lock(&self.inner);
        if let Some(span) = inner.done.iter().rev().find(|s| s.trace_id == trace_id) {
            return Some(span.clone());
        }
        inner.active.get(&trace_id).map(|active| Span {
            trace_id,
            key: active.key,
            events: active.events.clone(),
            total_us: elapsed_us(active.opened),
        })
    }

    /// One span by trace id, rendered as a JSON object (`None` when the
    /// id is unknown, evicted, or zero).
    pub fn find_json(&self, trace_id: u64) -> Option<String> {
        self.find(trace_id).map(|span| span_json(&span))
    }

    /// Every retained span whose correlation `key` matches, newest
    /// first — completed spans before still-active ones. This is how a
    /// downstream service's child spans are gathered: the callee keys
    /// its spans by the caller's propagated trace id.
    pub fn by_key(&self, key: u64) -> Vec<Span> {
        if !self.enabled {
            return Vec::new();
        }
        let inner = lock(&self.inner);
        let mut spans: Vec<Span> = inner
            .done
            .iter()
            .rev()
            .filter(|s| s.key == key)
            .cloned()
            .collect();
        for (id, active) in &inner.active {
            if active.key == key {
                spans.push(Span {
                    trace_id: *id,
                    key,
                    events: active.events.clone(),
                    total_us: elapsed_us(active.opened),
                });
            }
        }
        spans
    }

    /// [`TraceLog::by_key`] rendered as a JSON array.
    pub fn by_key_json(&self, key: u64) -> String {
        spans_json(&self.by_key(key))
    }

    /// The most recent `k` completed spans as a JSON array (newest
    /// first): `[{"trace_id":n,"key":"<hex>","total_us":n,"events":
    /// [{"stage":s,"at_us":n,"detail":s?},...]},...]`.
    pub fn recent_json(&self, k: usize) -> String {
        spans_json(&self.recent(k))
    }
}

/// Renders one span as a JSON object.
pub fn span_json(span: &Span) -> String {
    let mut out = String::with_capacity(160);
    out.push_str(&format!(
        "{{\"trace_id\":{},\"key\":\"{:016x}\",\"total_us\":{},\"events\":[",
        span.trace_id, span.key, span.total_us
    ));
    for (j, e) in span.events.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"stage\":\"{}\",\"at_us\":{}",
            json_escape(e.stage),
            e.at_us
        ));
        if let Some(detail) = &e.detail {
            out.push_str(&format!(",\"detail\":\"{}\"", json_escape(detail)));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a slice of spans as a JSON array.
pub fn spans_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(spans.len() * 160 + 2);
    out.push('[');
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&span_json(span));
    }
    out.push(']');
    out
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn lock(mutex: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lifecycle_and_conservation() {
        let log = TraceLog::new(16);
        let id = log.begin(0xabcd, "submitted");
        assert!(id > 0);
        log.stamp(id, "enqueued");
        log.stamp_with(id, "planned", "full".into());
        assert_eq!(log.active_len(), 1);
        log.finish(id, "answered", Some("llm".into()));
        assert_eq!((log.opened(), log.finished(), log.active_len()), (1, 1, 0));

        let spans = log.recent(10);
        assert_eq!(spans.len(), 1);
        let stages: Vec<&str> = spans[0].events.iter().map(|e| e.stage).collect();
        assert_eq!(stages, ["submitted", "enqueued", "planned", "answered"]);
        assert_eq!(spans[0].key, 0xabcd);

        // Double finish no-ops: the terminal stage lands exactly once.
        log.finish(id, "answered", None);
        assert_eq!(log.finished(), 1);
        assert_eq!(log.recent(10).len(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        let log = TraceLog::new(4);
        for k in 0..10u64 {
            let id = log.begin(k, "submitted");
            log.finish(id, "answered", None);
        }
        let recent = log.recent(100);
        assert_eq!(recent.len(), 4);
        assert_eq!(log.evicted(), 6);
        // Newest first.
        assert_eq!(recent[0].key, 9);
        assert_eq!(recent[3].key, 6);
    }

    #[test]
    fn disabled_log_noops() {
        let log = TraceLog::disabled();
        let id = log.begin(1, "submitted");
        assert_eq!(id, 0);
        log.stamp(id, "x");
        log.finish(id, "answered", None);
        assert_eq!((log.opened(), log.finished()), (0, 0));
        assert_eq!(log.recent_json(5), "[]");
    }

    #[test]
    fn json_shape() {
        let log = TraceLog::new(4);
        let id = log.begin(0x1f, "submitted");
        log.finish(id, "answered", Some("cache \"hit\"\n".into()));
        let json = log.recent_json(5);
        assert!(json.starts_with("[{\"trace_id\":"), "{json}");
        assert!(json.contains("\"key\":\"000000000000001f\""), "{json}");
        assert!(json.contains("\"stage\":\"answered\""), "{json}");
        assert!(
            json.contains("\"detail\":\"cache \\\"hit\\\"\\n\""),
            "{json}"
        );
    }

    #[test]
    fn find_covers_done_active_and_unknown() {
        let log = TraceLog::new(4);
        let done = log.begin(7, "submitted");
        log.finish(done, "answered", None);
        let live = log.begin(7, "submitted");
        log.stamp(live, "enqueued");

        let found = log.find(done).unwrap();
        assert_eq!(found.events.last().unwrap().stage, "answered");
        let active = log.find(live).unwrap();
        assert_eq!(active.events.last().unwrap().stage, "enqueued");
        assert!(log.find(0).is_none());
        assert!(log.find(done + live + 99).is_none());
        assert!(log.find_json(done).unwrap().starts_with("{\"trace_id\":"));
    }

    #[test]
    fn by_key_gathers_every_span_for_a_correlation_key() {
        let log = TraceLog::new(8);
        let a = log.begin(42, "received");
        log.finish(a, "completed", None);
        let b = log.begin(42, "received");
        log.finish(b, "completed", None);
        let live = log.begin(42, "received");
        let _other = log.begin(43, "received");

        let spans = log.by_key(42);
        assert_eq!(spans.len(), 3);
        // Completed spans newest-first, then the active one.
        assert_eq!(spans[0].trace_id, b);
        assert_eq!(spans[1].trace_id, a);
        assert_eq!(spans[2].trace_id, live);
        assert!(log.by_key(99).is_empty());
        assert!(log.by_key_json(42).starts_with("[{\"trace_id\":"));
    }

    #[test]
    fn stamps_on_unknown_ids_are_ignored() {
        let log = TraceLog::new(4);
        log.stamp(999, "x");
        log.finish(999, "answered", None);
        assert_eq!(log.finished(), 0);
    }
}
