//! SLO burn-rate evaluation over sliding windows, zero dependencies.
//!
//! An [`Slo`] declares an objective — a target fraction of *good* events
//! (e.g. 0.99 of answers under the latency threshold) — and accumulates
//! good/bad event counts into a ring of coarse time slots. Evaluation
//! folds the slots covering each window (5 minutes and 1 hour by
//! default) into a **burn rate**: the observed bad fraction divided by
//! the error budget `1 - objective`. Burn 1.0 spends the budget exactly
//! at the sustainable pace; burn 14.4 on a 99.9% objective exhausts a
//! 30-day budget in ~2 days, which is the classic fast-burn page
//! threshold. *Fast burn* here means both windows exceed the threshold —
//! the short window proves it is happening now, the long window proves
//! it is not a blip.
//!
//! Time is injected (`record_at` / `evaluate_at` take seconds) so tests
//! never wait on wall clocks; the convenience methods stamp events with
//! a monotonic clock anchored at construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Seconds per accumulation slot.
const SLOT_SECS: u64 = 10;

/// The short ("is it happening now") window, seconds.
pub const SHORT_WINDOW_SECS: u64 = 5 * 60;

/// The long ("is it sustained") window, seconds.
pub const LONG_WINDOW_SECS: u64 = 60 * 60;

/// Default fast-burn threshold (both windows must exceed it).
pub const DEFAULT_FAST_BURN: f64 = 14.4;

struct Slot {
    /// Slot index since epoch (`now_secs / SLOT_SECS`); counts belong to
    /// this slot only while the index matches, stale slots read as zero.
    epoch: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
}

/// One declared objective with its sliding event window.
///
/// Recording is lock-free (`record` sits on the service's per-answer
/// hot path): each 10-second slot is a trio of atomics, and recycling a
/// stale slot is a CAS race whose winner zeroes the counts. An event
/// recorded in the instant between the CAS and the zeroing can be lost
/// or land in the fresh slot — at most a handful of events per slot
/// *boundary* (once per 10s), noise at the granularity burn rates are
/// read at.
pub struct Slo {
    name: String,
    objective: f64,
    fast_burn_threshold: f64,
    started: Instant,
    slots: Vec<Slot>,
}

/// One window's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowBurn {
    /// Window length, seconds.
    pub window_secs: u64,
    /// Good events in the window.
    pub good: u64,
    /// Bad events in the window.
    pub bad: u64,
    /// `bad_fraction / (1 - objective)`; 0 when the window is empty.
    pub burn_rate: f64,
}

/// A full evaluation: both windows plus the fast-burn verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStatus {
    /// The declared good-event objective (e.g. 0.99).
    pub objective: f64,
    /// The short (5m) window.
    pub short: WindowBurn,
    /// The long (1h) window.
    pub long: WindowBurn,
    /// Both windows above the fast-burn threshold.
    pub fast_burn: bool,
}

impl Slo {
    /// Declares an objective: `objective` is the target good fraction in
    /// `(0, 1)`, e.g. `0.99`.
    pub fn new(name: impl Into<String>, objective: f64) -> Self {
        assert!(
            objective > 0.0 && objective < 1.0,
            "objective must be in (0, 1), got {objective}"
        );
        let n_slots = (LONG_WINDOW_SECS / SLOT_SECS) as usize + 1;
        Self {
            name: name.into(),
            objective,
            fast_burn_threshold: DEFAULT_FAST_BURN,
            started: Instant::now(),
            slots: (0..n_slots)
                .map(|_| Slot {
                    epoch: AtomicU64::new(u64::MAX),
                    good: AtomicU64::new(0),
                    bad: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Overrides the fast-burn page threshold (default
    /// [`DEFAULT_FAST_BURN`]).
    pub fn with_fast_burn_threshold(mut self, threshold: f64) -> Self {
        self.fast_burn_threshold = threshold;
        self
    }

    /// The objective's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared good fraction.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    fn now_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records one event at the current (monotonic) time.
    pub fn record(&self, good: bool) {
        self.record_at(good, self.now_secs());
    }

    /// Records one event at an explicit time (seconds since an arbitrary
    /// but consistent epoch).
    pub fn record_at(&self, good: bool, now_secs: u64) {
        let epoch = now_secs / SLOT_SECS;
        let n = self.slots.len() as u64;
        let slot = &self.slots[(epoch % n) as usize];
        let seen = slot.epoch.load(Ordering::Acquire);
        if seen != epoch
            && slot
                .epoch
                .compare_exchange(seen, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            // This thread recycled the stale slot; zero its counts.
            slot.good.store(0, Ordering::Relaxed);
            slot.bad.store(0, Ordering::Relaxed);
        }
        if good {
            slot.good.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.bad.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evaluates both windows at the current (monotonic) time.
    pub fn evaluate(&self) -> SloStatus {
        self.evaluate_at(self.now_secs())
    }

    /// Evaluates both windows at an explicit time.
    pub fn evaluate_at(&self, now_secs: u64) -> SloStatus {
        let short = self.window_at(SHORT_WINDOW_SECS, now_secs);
        let long = self.window_at(LONG_WINDOW_SECS, now_secs);
        SloStatus {
            objective: self.objective,
            short,
            long,
            fast_burn: short.burn_rate >= self.fast_burn_threshold
                && long.burn_rate >= self.fast_burn_threshold,
        }
    }

    fn window_at(&self, window_secs: u64, now_secs: u64) -> WindowBurn {
        let now_epoch = now_secs / SLOT_SECS;
        let span = window_secs / SLOT_SECS;
        let oldest = now_epoch.saturating_sub(span.saturating_sub(1));
        let (mut good, mut bad) = (0u64, 0u64);
        for slot in &self.slots {
            let epoch = slot.epoch.load(Ordering::Acquire);
            if epoch >= oldest && epoch <= now_epoch && epoch != u64::MAX {
                good += slot.good.load(Ordering::Relaxed);
                bad += slot.bad.load(Ordering::Relaxed);
            }
        }
        let total = good + bad;
        let burn_rate = if total == 0 {
            0.0
        } else {
            let bad_fraction = bad as f64 / total as f64;
            bad_fraction / (1.0 - self.objective)
        };
        WindowBurn { window_secs, good, bad, burn_rate }
    }
}

impl std::fmt::Debug for Slo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slo")
            .field("name", &self.name)
            .field("objective", &self.objective)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_is_bad_fraction_over_error_budget() {
        let slo = Slo::new("latency", 0.99);
        // 2% bad over a 1% budget: burn 2.0 in both windows.
        for i in 0..100 {
            slo.record_at(i % 50 != 0, 1000);
        }
        let status = slo.evaluate_at(1000);
        assert_eq!(status.short.good, 98);
        assert_eq!(status.short.bad, 2);
        assert!((status.short.burn_rate - 2.0).abs() < 1e-9);
        assert!((status.long.burn_rate - 2.0).abs() < 1e-9);
        assert!(!status.fast_burn);
    }

    #[test]
    fn short_window_forgets_old_events_long_window_keeps_them() {
        let slo = Slo::new("latency", 0.9);
        for _ in 0..10 {
            slo.record_at(false, 100); // all bad, early
        }
        for _ in 0..10 {
            slo.record_at(true, 100 + SHORT_WINDOW_SECS + 60); // later, good
        }
        let status = slo.evaluate_at(100 + SHORT_WINDOW_SECS + 60);
        // The bad burst fell out of the 5m window but not the 1h one.
        assert_eq!((status.short.good, status.short.bad), (10, 0));
        assert_eq!((status.long.good, status.long.bad), (10, 10));
        assert_eq!(status.short.burn_rate, 0.0);
        assert!((status.long.burn_rate - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fast_burn_requires_both_windows() {
        let slo = Slo::new("avail", 0.999).with_fast_burn_threshold(14.4);
        // 100% bad: burn 1000 on a 0.1% budget — both windows blow.
        for _ in 0..50 {
            slo.record_at(false, 5000);
        }
        let status = slo.evaluate_at(5000);
        assert!(status.fast_burn, "{status:?}");

        // The same burst evaluated after the short window rolled off:
        // long window still burns, short is empty — no fast burn.
        let later = 5000 + SHORT_WINDOW_SECS + 60;
        let status = slo.evaluate_at(later);
        assert_eq!(status.short.bad, 0);
        assert!(status.long.burn_rate > 14.4);
        assert!(!status.fast_burn);
    }

    #[test]
    fn slots_recycle_after_the_long_window() {
        let slo = Slo::new("latency", 0.99);
        for _ in 0..5 {
            slo.record_at(false, 0);
        }
        // Far beyond the long window: the stale slot must not count.
        let much_later = LONG_WINDOW_SECS * 3;
        slo.record_at(true, much_later);
        let status = slo.evaluate_at(much_later);
        assert_eq!((status.long.good, status.long.bad), (1, 0));
        assert_eq!(status.long.burn_rate, 0.0);
    }

    #[test]
    fn empty_window_burns_zero() {
        let slo = Slo::new("latency", 0.99);
        let status = slo.evaluate_at(777);
        assert_eq!(status.short.burn_rate, 0.0);
        assert_eq!(status.long.burn_rate, 0.0);
        assert!(!status.fast_burn);
    }

    #[test]
    #[should_panic(expected = "objective must be in (0, 1)")]
    fn degenerate_objective_rejected() {
        let _ = Slo::new("bad", 1.0);
    }
}
