//! The metrics registry: named counter/gauge/histogram families with
//! label sets, rendered as Prometheus text exposition.
//!
//! Handles returned by registration are `Arc`s over lock-free atomics —
//! recording never touches the registry lock, which is held only while
//! registering (startup) and while rendering a scrape. A scrape therefore
//! cannot stall any instrumented hot path, and an instrumented hot path
//! cannot stall a scrape.
//!
//! A registry constructed with [`Registry::disabled`] hands out dark
//! handles whose recording methods are single-branch no-ops — that is the
//! knob the serving bench uses to price the instrumentation itself.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{bucket_upper_bound, Histogram, N_BUCKETS};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    enabled: bool,
    v: AtomicU64,
}

impl Counter {
    /// A standalone counter not attached to any registry.
    pub fn detached() -> Arc<Self> {
        Arc::new(Self { enabled: true, v: AtomicU64::new(0) })
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    enabled: bool,
    v: AtomicI64,
}

impl Gauge {
    /// A standalone gauge not attached to any registry.
    pub fn detached() -> Arc<Self> {
        Arc::new(Self { enabled: true, v: AtomicI64::new(0) })
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        if self.enabled {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (negative to decrement).
    pub fn add(&self, d: i64) {
        if self.enabled {
            self.v.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A named collection of metric families. Cheap to share (`Arc` it).
pub struct Registry {
    enabled: bool,
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Self { enabled: true, families: Mutex::new(Vec::new()) }
    }

    /// A registry whose handles are recording no-ops. Rendering still
    /// works (all zeros) so callers need no mode branches.
    pub fn disabled() -> Self {
        Self { enabled: false, families: Mutex::new(Vec::new()) }
    }

    /// Whether handles from this registry record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or extends) a counter family and returns the series
    /// handle. `labels` are `(name, value)` pairs identifying the series.
    ///
    /// # Panics
    /// Panics when `name` is already registered with a different metric
    /// kind, or when the exact series (name + labels) already exists —
    /// both are wiring bugs, not runtime conditions.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let handle = Arc::new(Counter { enabled: self.enabled, v: AtomicU64::new(0) });
        self.register(name, help, labels, Handle::Counter(Arc::clone(&handle)));
        handle
    }

    /// Registers (or extends) a gauge family. See [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let handle = Arc::new(Gauge { enabled: self.enabled, v: AtomicI64::new(0) });
        self.register(name, help, labels, Handle::Gauge(Arc::clone(&handle)));
        handle
    }

    /// Registers (or extends) a histogram family. See [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let handle = Arc::new(Histogram::with_enabled(self.enabled));
        self.register(name, help, labels, Handle::Histogram(Arc::clone(&handle)));
        handle
    }

    /// Registers a histogram family with per-bucket exemplar capture
    /// armed: observations recorded through
    /// [`Histogram::record_with_exemplar`] stamp their trace id onto the
    /// bucket they land in, and the scrape renders an OpenMetrics-style
    /// `# {trace_id="..."} value` suffix on that bucket's sample line.
    pub fn histogram_with_exemplars(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let handle = Arc::new(Histogram::with_options(self.enabled, true));
        self.register(name, help, labels, Handle::Histogram(Arc::clone(&handle)));
        handle
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Handle) {
        assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name: {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        let mut families = lock(&self.families);
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                family.series[0].handle.kind(),
                handle.kind(),
                "metric {name} re-registered with a different kind"
            );
            assert!(
                !family.series.iter().any(|s| s.labels == labels),
                "duplicate series for {name} {labels:?}"
            );
            family.series.push(Series { labels, handle });
        } else {
            families.push(Family {
                name: name.to_owned(),
                help: help.to_owned(),
                series: vec![Series { labels, handle }],
            });
        }
    }

    /// Renders every family in Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, one sample line per
    /// series, histogram `_bucket`/`_sum`/`_count` expansions with
    /// cumulative `le` buckets. Empty histogram buckets are elided
    /// (cumulative encoding makes that lossless); the mandatory
    /// `le="+Inf"` bucket is always present.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let families = lock(&self.families);
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.series[0].handle.kind());
            out.push('\n');
            for series in &family.series {
                match &series.handle {
                    Handle::Counter(c) => {
                        sample_line(&mut out, &family.name, "", &series.labels, None);
                        out.push_str(&format!(" {}\n", c.get()));
                    }
                    Handle::Gauge(g) => {
                        sample_line(&mut out, &family.name, "", &series.labels, None);
                        out.push_str(&format!(" {}\n", g.get()));
                    }
                    Handle::Histogram(h) => {
                        let s = h.snapshot();
                        let mut cum = 0u64;
                        for (i, &c) in s.counts.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            cum += c;
                            let le = bucket_upper_bound(i);
                            // The last bucket covers to u64::MAX; +Inf
                            // below is its canonical spelling.
                            if i == N_BUCKETS - 1 {
                                continue;
                            }
                            sample_line(
                                &mut out,
                                &family.name,
                                "_bucket",
                                &series.labels,
                                Some(&le.to_string()),
                            );
                            out.push_str(&format!(" {cum}"));
                            push_exemplar(&mut out, h, i);
                            out.push('\n');
                        }
                        sample_line(
                            &mut out,
                            &family.name,
                            "_bucket",
                            &series.labels,
                            Some("+Inf"),
                        );
                        out.push_str(&format!(" {}", s.count));
                        push_exemplar(&mut out, h, N_BUCKETS - 1);
                        out.push('\n');
                        sample_line(&mut out, &family.name, "_sum", &series.labels, None);
                        out.push_str(&format!(" {}\n", s.sum));
                        sample_line(&mut out, &family.name, "_count", &series.labels, None);
                        out.push_str(&format!(" {}\n", s.count));
                    }
                }
            }
        }
        out
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Appends an OpenMetrics-style exemplar suffix (` # {trace_id="N"} v`)
/// to a bucket sample line when the histogram captured one there.
fn push_exemplar(out: &mut String, h: &Histogram, bucket: usize) {
    if let Some(ex) = h.exemplar(bucket) {
        out.push_str(&format!(" # {{trace_id=\"{}\"}} {}", ex.trace_id, ex.value));
    }
}

fn sample_line(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    le: Option<&str>,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
}

/// Escapes a label value: backslash, double quote and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*`
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        let c = r.counter("requests_total", "Requests served.", &[]);
        let g = r.gauge("queue_depth", "Questions queued.", &[]);
        c.add(3);
        g.set(-2);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter\nrequests_total 3\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth -2\n"));
    }

    #[test]
    fn labeled_family_groups_under_one_header() {
        let r = Registry::new();
        let full = r.counter("plans_total", "Planning passes.", &[("kind", "full")]);
        let incr = r.counter(
            "plans_total",
            "Planning passes.",
            &[("kind", "incremental")],
        );
        full.inc();
        incr.add(2);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE plans_total counter").count(), 1);
        assert!(text.contains("plans_total{kind=\"full\"} 1\n"));
        assert!(text.contains("plans_total{kind=\"incremental\"} 2\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Latency.", &[]);
        h.record(1);
        h.record(1);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("latency_us_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_us_sum 102\n"));
        assert!(text.contains("latency_us_count 3\n"));
    }

    #[test]
    fn exemplar_armed_histogram_renders_bucket_exemplars() {
        let r = Registry::new();
        let h = r.histogram_with_exemplars("lat_us", "Latency.", &[("source", "llm")]);
        h.record_with_exemplar(100, 41);
        h.record_with_exemplar(u64::MAX, 42);
        h.record(3); // untraced observation: plain bucket line
        let text = r.render_prometheus();
        assert!(
            text.contains("lat_us_bucket{source=\"llm\",le=\"111\"} 2 # {trace_id=\"41\"} 100\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "lat_us_bucket{source=\"llm\",le=\"+Inf\"} 3 # {trace_id=\"42\"} 18446744073709551615\n"
            ),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{source=\"llm\",le=\"3\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn label_values_escape() {
        let r = Registry::new();
        let c = r.counter("weird", "h", &[("v", "a\\b\"c\nd")]);
        c.inc();
        let text = r.render_prometheus();
        assert!(text.contains(r#"weird{v="a\\b\"c\nd"} 1"#), "{text}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let r = Registry::new();
        let _c = r.counter("x_total", "h", &[]);
        let _g = r.gauge("x_total", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate series")]
    fn duplicate_series_panics() {
        let r = Registry::new();
        let _a = r.counter("x_total", "h", &[("a", "1")]);
        let _b = r.counter("x_total", "h", &[("a", "1")]);
    }

    #[test]
    fn disabled_registry_hands_out_dark_handles() {
        let r = Registry::disabled();
        let c = r.counter("c_total", "h", &[]);
        let h = r.histogram("h_us", "h", &[]);
        c.inc();
        h.record(5);
        assert_eq!(c.get(), 0);
        assert!(r.render_prometheus().contains("c_total 0\n"));
        assert!(r.render_prometheus().contains("h_us_count 0\n"));
    }
}
