//! A bounded ring of structured events — the flight recorder's memory.
//!
//! Unlike the span log (which follows one request), the event log records
//! *system* transitions: breaker trips, degraded-mode entries, SLO
//! fast-burns, recovery findings, periodic metric snapshots. It is
//! always on and strictly bounded, so when an anomaly trigger fires the
//! recent history is already there to dump — no "enable debug logging
//! and wait for it to happen again".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (1-based, never reused).
    pub seq: u64,
    /// Microseconds since the log was created.
    pub at_us: u64,
    /// Event kind (static by design — kinds are code, not data).
    pub kind: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded, always-on event ring. One per service; share by reference.
pub struct EventLog {
    capacity: usize,
    started: Instant,
    recorded: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl EventLog {
    /// A log retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            started: Instant::now(),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) {
        let seq = self.recorded.fetch_add(1, Ordering::Relaxed) + 1;
        let at_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut ring = lock(&self.ring);
        ring.push_back(Event { seq, at_us, kind, detail: detail.into() });
        if ring.len() > self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events recorded so far (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent `k` events, newest first.
    pub fn recent(&self, k: usize) -> Vec<Event> {
        let ring = lock(&self.ring);
        ring.iter().rev().take(k).cloned().collect()
    }

    /// The most recent `k` events as a JSON array, newest first.
    pub fn recent_json(&self, k: usize) -> String {
        let events = self.recent(k);
        let mut out = String::with_capacity(events.len() * 96 + 2);
        out.push('[');
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.at_us,
                crate::trace::json_escape(e.kind),
                crate::trace::json_escape(&e.detail)
            ));
        }
        out.push(']');
        out
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_sequences() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.record("tick", format!("n={i}"));
        }
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 2);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 5); // newest first
        assert_eq!(recent[2].seq, 3);
        assert_eq!(recent[0].detail, "n=4");
    }

    #[test]
    fn json_shape_escapes() {
        let log = EventLog::new(4);
        log.record("breaker_open", "state=\"open\"\n");
        let json = log.recent_json(4);
        assert!(json.starts_with("[{\"seq\":1,"), "{json}");
        assert!(json.contains("\"kind\":\"breaker_open\""), "{json}");
        assert!(
            json.contains("\"detail\":\"state=\\\"open\\\"\\n\""),
            "{json}"
        );
    }
}
