//! Circuit breaker over the LLM endpoint: after `threshold` consecutive
//! batches in which the endpoint produced nothing (no answers AND no
//! billed calls — the signature of a dead transport, not of malformed
//! output), the service stops reserving budget and routes batches
//! straight to the logistic fallback for `cooldown`. One probe batch is
//! admitted per cooldown; its outcome closes or re-opens the circuit.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use obs::{Counter, Gauge};

#[derive(Debug, Clone, Copy)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until: Instant,
    },
    /// A probe is in flight; `since` lets a lost probe (worker panic)
    /// age out instead of sticking the breaker half-open forever.
    HalfOpen {
        since: Instant,
    },
}

/// Gauge encoding of the state (`er_breaker_state`).
const STATE_CLOSED: i64 = 0;
const STATE_OPEN: i64 = 1;
const STATE_HALF_OPEN: i64 = 2;

/// See the module docs. `threshold == 0` disables the breaker entirely.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<State>,
    trips: Arc<Counter>,
    short_circuits: Arc<Counter>,
    state_gauge: Arc<Gauge>,
}

impl Breaker {
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            threshold,
            cooldown,
            state: Mutex::new(State::Closed { consecutive_failures: 0 }),
            trips: Counter::detached(),
            short_circuits: Counter::detached(),
            state_gauge: Gauge::detached(),
        }
    }

    /// Swaps in registry-backed handles: trip counter, short-circuited
    /// batch counter, and the state gauge (0 closed / 1 open / 2
    /// half-open).
    pub fn with_metrics(
        mut self,
        trips: Arc<Counter>,
        short_circuits: Arc<Counter>,
        state_gauge: Arc<Gauge>,
    ) -> Self {
        self.trips = trips;
        self.short_circuits = short_circuits;
        self.state_gauge = state_gauge;
        self
    }

    /// Whether a batch may go to the LLM right now. `false` means route
    /// to the fallback without reserving budget. A `true` while open
    /// promotes to half-open: that batch is the probe.
    pub fn allow(&self) -> bool {
        if self.threshold == 0 {
            return true;
        }
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => true,
            State::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    *state = State::HalfOpen { since: now };
                    self.state_gauge.set(STATE_HALF_OPEN);
                    true
                } else {
                    self.short_circuits.inc();
                    false
                }
            }
            State::HalfOpen { since } => {
                // The probe's verdict normally resolves this state; if the
                // probe was lost to a panic, admit another after cooldown.
                if since.elapsed() >= self.cooldown {
                    *state = State::HalfOpen { since: Instant::now() };
                    true
                } else {
                    self.short_circuits.inc();
                    false
                }
            }
        }
    }

    /// Records a batch outcome where the endpoint responded.
    pub fn record_success(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut state = self.lock();
        *state = State::Closed { consecutive_failures: 0 };
        self.state_gauge.set(STATE_CLOSED);
    }

    /// Records a batch outcome where the endpoint gave nothing (no
    /// answers, no billed calls).
    pub fn record_failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut state = self.lock();
        let failures = match *state {
            State::Closed { consecutive_failures } => consecutive_failures + 1,
            // A failed probe re-opens immediately.
            State::Open { .. } | State::HalfOpen { .. } => self.threshold,
        };
        if failures >= self.threshold {
            *state = State::Open { until: Instant::now() + self.cooldown };
            self.trips.inc();
            self.state_gauge.set(STATE_OPEN);
        } else {
            *state = State::Closed { consecutive_failures: failures };
        }
    }

    /// Stable state name for `/healthz`.
    pub fn state_name(&self) -> &'static str {
        if self.threshold == 0 {
            return "disabled";
        }
        match *self.lock() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half_open",
        }
    }

    /// Numeric state for `/stats` (same encoding as the gauge).
    pub fn state_code(&self) -> u64 {
        match *self.lock() {
            State::Closed { .. } => STATE_CLOSED as u64,
            State::Open { .. } => STATE_OPEN as u64,
            State::HalfOpen { .. } => STATE_HALF_OPEN as u64,
        }
    }

    /// Trips so far.
    pub fn trips(&self) -> u64 {
        self.trips.get()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        crate::sync::lock(&self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = Breaker::new(3, Duration::from_millis(20));
        for _ in 0..2 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 1);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = Breaker::new(2, Duration::from_millis(20));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow());
    }

    #[test]
    fn probe_after_cooldown_closes_or_reopens() {
        let b = Breaker::new(1, Duration::from_millis(5));
        b.record_failure();
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(8));
        // First call after cooldown is the probe.
        assert!(b.allow());
        assert_eq!(b.state_name(), "half_open");
        // Siblings are still short-circuited while the probe flies.
        assert!(!b.allow());
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        std::thread::sleep(Duration::from_millis(8));
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow());
    }

    #[test]
    fn zero_threshold_disables() {
        let b = Breaker::new(0, Duration::from_millis(5));
        for _ in 0..100 {
            b.record_failure();
            assert!(b.allow());
        }
        assert_eq!(b.state_name(), "disabled");
        assert_eq!(b.trips(), 0);
    }
}
