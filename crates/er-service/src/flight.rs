//! The anomaly flight recorder: always-on bounded rings of recent
//! context, dumped as a self-contained JSON debug bundle when something
//! goes wrong.
//!
//! The recorder itself holds only cheap, bounded state — a structured
//! [`EventLog`] and a ring of periodic stats snapshots. Bundle *assembly*
//! (traces, SLO windows, health) lives in the service, which owns those
//! sources; the recorder's job is remembering the recent past and
//! deciding when a trigger fires (per-reason rate limiting, so a flapping
//! breaker cannot fill the disk with identical bundles).
//!
//! Triggers wired by the service: circuit-breaker open, WAL degradation,
//! recovery conservation violations, SLO fast burn. `GET /debug/bundle`
//! assembles the same bundle on demand.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use obs::EventLog;

use crate::sync::lock;

/// Periodic stats snapshots retained (one per [`SNAPSHOT_INTERVAL`]).
const SNAPSHOT_CAPACITY: usize = 32;
/// Minimum spacing between periodic snapshots.
const SNAPSHOT_INTERVAL: Duration = Duration::from_secs(1);
/// Minimum spacing between two bundles for the *same* trigger reason.
const TRIGGER_INTERVAL: Duration = Duration::from_secs(5);
/// Structured events retained.
const EVENT_CAPACITY: usize = 256;

/// One retained stats snapshot.
struct Snapshot {
    at_us: u64,
    json: String,
}

/// The always-on recorder. With the telemetry switch off it goes dark:
/// every call is a single-branch no-op, matching the metric handles.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    started: Instant,
    events: EventLog,
    snapshots: Mutex<Vec<Snapshot>>,
    last_snapshot: Mutex<Option<Instant>>,
    /// Last bundle time per trigger reason (rate limiting).
    last_trigger: Mutex<HashMap<&'static str, Instant>>,
    /// Where bundles are written (`None` = in-memory only; `GET
    /// /debug/bundle` still works).
    dir: Option<PathBuf>,
    bundles_written: AtomicU64,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("at_us", &self.at_us)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder writing bundles under `dir` when given.
    pub fn new(enabled: bool, dir: Option<PathBuf>) -> Self {
        Self {
            enabled,
            started: Instant::now(),
            events: EventLog::new(if enabled { EVENT_CAPACITY } else { 0 }),
            snapshots: Mutex::new(Vec::new()),
            last_snapshot: Mutex::new(None),
            last_trigger: Mutex::new(HashMap::new()),
            dir,
            bundles_written: AtomicU64::new(0),
        }
    }

    /// Records a structured event (`kind` is a stable lowercase slug).
    pub fn event(&self, kind: &'static str, detail: String) {
        if self.enabled {
            self.events.record(kind, detail);
        }
    }

    /// True when a periodic snapshot is due. Callers check this *before*
    /// paying to assemble the snapshot JSON; a `true` claims the slot.
    pub fn snapshot_due(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let mut last = lock(&self.last_snapshot);
        let now = Instant::now();
        match *last {
            Some(at) if now.duration_since(at) < SNAPSHOT_INTERVAL => false,
            _ => {
                *last = Some(now);
                true
            }
        }
    }

    /// Pushes one stats snapshot into the bounded ring.
    pub fn snapshot(&self, json: String) {
        if !self.enabled {
            return;
        }
        let at_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut ring = lock(&self.snapshots);
        if ring.len() >= SNAPSHOT_CAPACITY {
            ring.remove(0);
        }
        ring.push(Snapshot { at_us, json });
    }

    /// Whether a bundle for `reason` should be produced now. A `true`
    /// claims the slot: the same reason stays quiet for the next
    /// [`TRIGGER_INTERVAL`].
    pub fn should_trigger(&self, reason: &'static str) -> bool {
        if !self.enabled {
            return false;
        }
        let mut last = lock(&self.last_trigger);
        let now = Instant::now();
        match last.get(reason) {
            Some(&at) if now.duration_since(at) < TRIGGER_INTERVAL => false,
            _ => {
                last.insert(reason, now);
                true
            }
        }
    }

    /// The recent-events portion of a bundle (newest first).
    pub fn events_json(&self) -> String {
        self.events.recent_json(EVENT_CAPACITY)
    }

    /// The snapshot-ring portion of a bundle (oldest first).
    pub fn snapshots_json(&self) -> String {
        let ring = lock(&self.snapshots);
        let mut out = String::from("[");
        for (i, snap) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_us\":{},\"stats\":{}}}",
                snap.at_us, snap.json
            ));
        }
        out.push(']');
        out
    }

    /// Writes an assembled bundle to `dir` as
    /// `bundle-<seq>-<reason>.json`. Returns the path, or `None` when no
    /// directory is configured or the write failed (failure to record a
    /// debug artifact must never take the service down).
    pub fn write_bundle(&self, reason: &str, bundle: &str) -> Option<PathBuf> {
        let dir = self.dir.as_deref()?;
        let seq = self.bundles_written.fetch_add(1, Ordering::Relaxed);
        let safe_reason: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("bundle-{seq}-{safe_reason}.json"));
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        match std::fs::write(&path, bundle) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("er-service: flight recorder bundle write failed: {e}");
                None
            }
        }
    }

    /// Bundles written to disk so far.
    pub fn bundles_written(&self) -> u64 {
        self.bundles_written.load(Ordering::Relaxed)
    }

    /// The configured bundle directory.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_dark() {
        let fr = FlightRecorder::new(false, None);
        fr.event("breaker_open", "x".into());
        assert!(!fr.snapshot_due());
        assert!(!fr.should_trigger("breaker_open"));
        assert_eq!(fr.events_json(), "[]");
    }

    #[test]
    fn triggers_rate_limit_per_reason() {
        let fr = FlightRecorder::new(true, None);
        assert!(fr.should_trigger("breaker_open"));
        assert!(
            !fr.should_trigger("breaker_open"),
            "same reason inside the interval"
        );
        assert!(
            fr.should_trigger("wal_degraded"),
            "different reason is independent"
        );
    }

    #[test]
    fn snapshot_ring_is_bounded() {
        let fr = FlightRecorder::new(true, None);
        for i in 0..(SNAPSHOT_CAPACITY + 10) {
            fr.snapshot(format!("{{\"i\":{i}}}"));
        }
        let json = fr.snapshots_json();
        assert!(!json.contains("\"i\":0"), "oldest evicted: {json}");
        assert!(
            json.contains(&format!("\"i\":{}", SNAPSHOT_CAPACITY + 9)),
            "{json}"
        );
        assert_eq!(json.matches("at_us").count(), SNAPSHOT_CAPACITY);
    }

    #[test]
    fn bundles_write_to_disk_with_sanitized_names() {
        let dir = std::env::temp_dir().join(format!("er-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(true, Some(dir.clone()));
        let path = fr
            .write_bundle("slo fast-burn", "{\"reason\":\"test\"}")
            .expect("bundle written");
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("slo_fast_burn"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"reason\":\"test\"}");
        assert_eq!(fr.bundles_written(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_dir_means_no_write_but_no_error() {
        let fr = FlightRecorder::new(true, None);
        assert!(fr.write_bundle("x", "{}").is_none());
    }
}
