//! The LLM answer cache: fingerprint → verdict, with hit/miss counters
//! and a bounded footprint.
//!
//! Repeated and symmetric questions are endemic in serving workloads
//! (retries, the same hot pair queried by many users, `(a,b)` vs
//! `(b,a)`), and every avoided LLM call is money saved — the cache is the
//! cheapest lever in the whole cost model. Disabled mode is kept so the
//! savings are measurable: the integration tests run the same workload
//! with the cache off and compare ledgers.
//!
//! **Eviction** is generational: entries insert into a *hot* map; when it
//! reaches half the configured capacity the hot map becomes the *cold*
//! map (dropping the previous cold generation) and a fresh hot map takes
//! over. Lookups consult both. An entry therefore survives between one
//! and two generations — recently used pairs stay cached, a stream of
//! mostly-unique questions (the normal ER workload) cannot grow memory
//! without bound, and every operation stays O(1).

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use er_core::MatchLabel;
use obs::{Counter, Gauge};

use crate::fingerprint::PairFingerprint;
use crate::sync::{read, write};

#[derive(Debug, Default)]
struct Generations {
    hot: HashMap<PairFingerprint, MatchLabel>,
    cold: HashMap<PairFingerprint, MatchLabel>,
}

/// Concurrent, capacity-bounded fingerprint-keyed answer store.
#[derive(Debug)]
pub struct AnswerCache {
    enabled: bool,
    /// Hot-generation size that triggers rotation (half the capacity).
    rotate_at: usize,
    generations: RwLock<Generations>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    /// Live-entry mirror, maintained under the write lock, so `/stats`
    /// and `/metrics` read a plain atomic instead of the `RwLock`.
    entries: Arc<Gauge>,
}

impl AnswerCache {
    /// A cache holding at most ~`capacity` entries. When `enabled` is
    /// false every lookup misses and inserts are dropped (the counters
    /// still run, so `/stats` stays honest).
    pub fn new(enabled: bool, capacity: usize) -> Self {
        Self {
            enabled,
            rotate_at: (capacity / 2).max(1),
            generations: RwLock::new(Generations::default()),
            hits: Counter::detached(),
            misses: Counter::detached(),
            entries: Gauge::detached(),
        }
    }

    /// Swaps in registry-backed metric handles: hit/miss counters and
    /// the live-entry gauge.
    pub fn with_metrics(
        mut self,
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        entries: Arc<Gauge>,
    ) -> Self {
        self.hits = hits;
        self.misses = misses;
        self.entries = entries;
        self
    }

    /// Looks up a fingerprint, counting the hit or miss.
    pub fn get(&self, fp: PairFingerprint) -> Option<MatchLabel> {
        let found = self.peek(fp);
        match found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    /// Peeks without touching the counters (used by the flush path to
    /// filter questions answered while they sat in the queue).
    pub fn peek(&self, fp: PairFingerprint) -> Option<MatchLabel> {
        if !self.enabled {
            return None;
        }
        let generations = read(&self.generations);
        generations
            .hot
            .get(&fp)
            .or_else(|| generations.cold.get(&fp))
            .copied()
    }

    /// Stores a verdict, rotating generations at capacity.
    pub fn insert(&self, fp: PairFingerprint, label: MatchLabel) {
        if !self.enabled {
            return;
        }
        let mut generations = write(&self.generations);
        generations.hot.insert(fp, label);
        if generations.hot.len() >= self.rotate_at {
            generations.cold = std::mem::take(&mut generations.hot);
        }
        self.entries
            .set((generations.hot.len() + generations.cold.len()) as i64);
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Live entries across both generations (an upper bound: a
    /// fingerprint re-inserted after rotation counts in each).
    pub fn len(&self) -> usize {
        let generations = read(&self.generations);
        generations.hot.len() + generations.cold.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 1024;

    #[test]
    fn hit_and_miss_counting() {
        let cache = AnswerCache::new(true, CAP);
        let fp = PairFingerprint(7);
        assert_eq!(cache.get(fp), None);
        cache.insert(fp, MatchLabel::Matching);
        assert_eq!(cache.get(fp), Some(MatchLabel::Matching));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = AnswerCache::new(false, CAP);
        let fp = PairFingerprint(9);
        cache.insert(fp, MatchLabel::Matching);
        assert_eq!(cache.get(fp), None);
        assert_eq!(cache.misses(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let cache = AnswerCache::new(true, CAP);
        let fp = PairFingerprint(3);
        cache.insert(fp, MatchLabel::NonMatching);
        assert_eq!(cache.peek(fp), Some(MatchLabel::NonMatching));
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn capacity_is_bounded_and_recent_entries_survive() {
        let cache = AnswerCache::new(true, 100);
        // A stream of 10k unique fingerprints — far beyond capacity.
        for i in 0..10_000u64 {
            cache.insert(PairFingerprint(i), MatchLabel::from_bool(i % 2 == 0));
        }
        assert!(cache.len() <= 100, "cache grew to {}", cache.len());
        // The most recent insert is always still present.
        assert_eq!(
            cache.peek(PairFingerprint(9_999)),
            Some(MatchLabel::NonMatching)
        );
        // Ancient entries were evicted.
        assert_eq!(cache.peek(PairFingerprint(0)), None);
    }

    #[test]
    fn entries_survive_one_rotation() {
        let cache = AnswerCache::new(true, 8); // rotate_at = 4
        cache.insert(PairFingerprint(1), MatchLabel::Matching);
        // Force one rotation with three more inserts.
        for i in 2..=4u64 {
            cache.insert(PairFingerprint(i), MatchLabel::NonMatching);
        }
        // Entry 1 moved to the cold generation but is still served.
        assert_eq!(cache.peek(PairFingerprint(1)), Some(MatchLabel::Matching));
    }

    #[test]
    fn concurrent_access() {
        let cache = std::sync::Arc::new(AnswerCache::new(true, 1 << 20));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let fp = PairFingerprint(t * 1000 + i);
                        cache.insert(fp, MatchLabel::from_bool(i % 2 == 0));
                        assert!(cache.get(fp).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1600);
        assert_eq!(cache.hits(), 1600);
    }
}
