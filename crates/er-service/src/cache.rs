//! The LLM answer cache: fingerprint → verdict, with hit/miss counters
//! and a bounded footprint.
//!
//! Repeated and symmetric questions are endemic in serving workloads
//! (retries, the same hot pair queried by many users, `(a,b)` vs
//! `(b,a)`), and every avoided LLM call is money saved — the cache is the
//! cheapest lever in the whole cost model. Disabled mode is kept so the
//! savings are measurable: the integration tests run the same workload
//! with the cache off and compare ledgers.
//!
//! **Eviction** is exact LRU over a slab-backed intrusive list: every
//! `get` promotes its entry to the front, inserts past capacity evict
//! the back, and each eviction is counted (`er_cache_evictions_total`).
//! All operations are O(1); the capacity is a hard bound, not the
//! high-water mark the previous generational scheme allowed — which is
//! what lets the sharded service split one budget into exact per-shard
//! partitions. Durable replay fills through the same `insert`, so a
//! recovered history larger than the bound retains its most recent
//! answers, exactly as the live path would have.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use er_core::MatchLabel;
use obs::{Counter, Gauge};

use crate::fingerprint::PairFingerprint;
use crate::sync::lock;

/// Slab-list null: no neighbor / no entry.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    fp: PairFingerprint,
    label: MatchLabel,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct LruState {
    map: HashMap<PairFingerprint, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (the eviction end).
    tail: usize,
}

impl LruState {
    fn new() -> Self {
        Self { map: HashMap::new(), nodes: Vec::new(), free: Vec::new(), head: NIL, tail: NIL }
    }

    /// Unlinks `slot` from the recency list (it stays in the slab).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    /// Links `slot` in as the most recently used entry.
    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.nodes[h].prev = slot,
        }
        self.head = slot;
    }

    fn promote(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }
}

/// Concurrent, capacity-bounded fingerprint-keyed answer store.
#[derive(Debug)]
pub struct AnswerCache {
    enabled: bool,
    /// Hard entry bound (LRU eviction past this).
    capacity: usize,
    state: Mutex<LruState>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    /// Live-entry mirror, maintained by add-deltas under the lock, so
    /// `/stats` and `/metrics` read a plain atomic — and so shard
    /// partitions sharing one gauge sum instead of clobbering each other.
    entries: Arc<Gauge>,
}

impl AnswerCache {
    /// A cache holding at most `capacity` entries (at least one). When
    /// `enabled` is false every lookup misses and inserts are dropped
    /// (the counters still run, so `/stats` stays honest).
    pub fn new(enabled: bool, capacity: usize) -> Self {
        Self {
            enabled,
            capacity: capacity.max(1),
            state: Mutex::new(LruState::new()),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions: Counter::detached(),
            entries: Gauge::detached(),
        }
    }

    /// Swaps in registry-backed metric handles: hit/miss/eviction
    /// counters and the live-entry gauge.
    pub fn with_metrics(
        mut self,
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        entries: Arc<Gauge>,
        evictions: Arc<Counter>,
    ) -> Self {
        self.hits = hits;
        self.misses = misses;
        self.entries = entries;
        self.evictions = evictions;
        self
    }

    /// Looks up a fingerprint, counting the hit or miss. A hit promotes
    /// the entry to most-recently-used.
    pub fn get(&self, fp: PairFingerprint) -> Option<MatchLabel> {
        if !self.enabled {
            self.misses.inc();
            return None;
        }
        let found = {
            let mut state = lock(&self.state);
            match state.map.get(&fp).copied() {
                Some(slot) => {
                    state.promote(slot);
                    Some(state.nodes[slot].label)
                }
                None => None,
            }
        };
        match found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    /// Peeks without touching the counters or the recency order (used by
    /// the flush path to filter questions answered while they sat in the
    /// queue — a scan that must not perturb what stays resident).
    pub fn peek(&self, fp: PairFingerprint) -> Option<MatchLabel> {
        if !self.enabled {
            return None;
        }
        let state = lock(&self.state);
        state.map.get(&fp).map(|&slot| state.nodes[slot].label)
    }

    /// Stores a verdict, evicting the least recently used entry when the
    /// bound is reached. Re-inserting an existing fingerprint updates it
    /// in place (and promotes it).
    pub fn insert(&self, fp: PairFingerprint, label: MatchLabel) {
        if !self.enabled {
            return;
        }
        let mut state = lock(&self.state);
        if let Some(&slot) = state.map.get(&fp) {
            state.nodes[slot].label = label;
            state.promote(slot);
            return;
        }
        if state.map.len() >= self.capacity {
            let victim = state.tail;
            debug_assert_ne!(victim, NIL, "full cache must have a tail");
            state.unlink(victim);
            let old_fp = state.nodes[victim].fp;
            state.map.remove(&old_fp);
            state.free.push(victim);
            self.evictions.inc();
            self.entries.add(-1);
        }
        let slot = match state.free.pop() {
            Some(slot) => {
                state.nodes[slot] = Node { fp, label, prev: NIL, next: NIL };
                slot
            }
            None => {
                state.nodes.push(Node { fp, label, prev: NIL, next: NIL });
                state.nodes.len() - 1
            }
        };
        state.map.insert(fp, slot);
        state.push_front(slot);
        self.entries.add(1);
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        lock(&self.state).map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 1024;

    #[test]
    fn hit_and_miss_counting() {
        let cache = AnswerCache::new(true, CAP);
        let fp = PairFingerprint(7);
        assert_eq!(cache.get(fp), None);
        cache.insert(fp, MatchLabel::Matching);
        assert_eq!(cache.get(fp), Some(MatchLabel::Matching));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = AnswerCache::new(false, CAP);
        let fp = PairFingerprint(9);
        cache.insert(fp, MatchLabel::Matching);
        assert_eq!(cache.get(fp), None);
        assert_eq!(cache.misses(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let cache = AnswerCache::new(true, CAP);
        let fp = PairFingerprint(3);
        cache.insert(fp, MatchLabel::NonMatching);
        assert_eq!(cache.peek(fp), Some(MatchLabel::NonMatching));
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn capacity_is_a_hard_bound_and_recent_entries_survive() {
        let cache = AnswerCache::new(true, 100);
        // A stream of 10k unique fingerprints — far beyond capacity.
        for i in 0..10_000u64 {
            cache.insert(PairFingerprint(i), MatchLabel::from_bool(i % 2 == 0));
        }
        assert_eq!(cache.len(), 100, "LRU keeps exactly the bound");
        assert_eq!(cache.evictions(), 9_900);
        // The most recent 100 inserts are all still present.
        for i in 9_900..10_000u64 {
            assert!(cache.peek(PairFingerprint(i)).is_some(), "missing {i}");
        }
        // Ancient entries were evicted.
        assert_eq!(cache.peek(PairFingerprint(0)), None);
    }

    #[test]
    fn entries_survive_subsequent_inserts_within_capacity() {
        let cache = AnswerCache::new(true, 8);
        cache.insert(PairFingerprint(1), MatchLabel::Matching);
        for i in 2..=4u64 {
            cache.insert(PairFingerprint(i), MatchLabel::NonMatching);
        }
        // Under capacity nothing is evicted, ever.
        assert_eq!(cache.peek(PairFingerprint(1)), Some(MatchLabel::Matching));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn get_promotes_against_eviction() {
        let cache = AnswerCache::new(true, 2);
        cache.insert(PairFingerprint(1), MatchLabel::Matching);
        cache.insert(PairFingerprint(2), MatchLabel::NonMatching);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(PairFingerprint(1)).is_some());
        cache.insert(PairFingerprint(3), MatchLabel::Matching);
        assert_eq!(cache.peek(PairFingerprint(1)), Some(MatchLabel::Matching));
        assert_eq!(cache.peek(PairFingerprint(2)), None);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let cache = AnswerCache::new(true, 2);
        cache.insert(PairFingerprint(1), MatchLabel::Matching);
        cache.insert(PairFingerprint(2), MatchLabel::Matching);
        cache.insert(PairFingerprint(1), MatchLabel::NonMatching);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(
            cache.peek(PairFingerprint(1)),
            Some(MatchLabel::NonMatching)
        );
    }

    #[test]
    fn concurrent_access() {
        let cache = std::sync::Arc::new(AnswerCache::new(true, 1 << 20));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let fp = PairFingerprint(t * 1000 + i);
                        cache.insert(fp, MatchLabel::from_bool(i % 2 == 0));
                        assert!(cache.get(fp).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1600);
        assert_eq!(cache.hits(), 1600);
    }
}
