//! The durable answer/ledger tier: what the service writes ahead, how a
//! restart replays it, and the conservation rules replay enforces.
//!
//! Everything the service must not re-buy after a crash goes through one
//! append-only [`wal::Wal`] as self-describing binary records
//! ([`DurableRecord`]): LLM answers (symmetric fingerprint + decision +
//! attributed cost, stamped with [`FINGERPRINT_VERSION`] so prompt or
//! normalization changes invalidate cleanly) and the governor's
//! reserve/settle/refund events. Replay ([`replay`]) rebuilds the answer
//! cache (last answer per fingerprint wins, stale versions skipped) and
//! the spend ledger (from settle records only — a reserve with no
//! matching settle or refund is crash evidence, counted and treated as
//! refunded, never as spend).
//!
//! Write-ahead ordering: a settle is journaled **before** the in-memory
//! ledger merge, and a batch's answers are journaled **before** the cache
//! fill and waiter resolution — so any answer a client ever observed is
//! on its way to disk, and replayed spend can only over-approximate,
//! never under-approximate, true spend.
//!
//! Journal failures degrade, not fail: an append error is counted,
//! flagged (surfaces as `status: "degraded"` on `/healthz`) and the
//! service keeps answering — availability over durability, since losing
//! future replay only costs money on the *next* restart.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use er_core::{CostLedger, MatchLabel, Money, TokenCount};
use obs::Counter;
use wal::{FaultSchedule, RecoveryStats, SyncPolicy, Wal, WalError, WalOptions, WalStatus};

use crate::fingerprint::{PairFingerprint, FINGERPRINT_VERSION};
use crate::telemetry::Telemetry;

/// Where and how the service journals its durable state.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Log directory (created if missing).
    pub dir: PathBuf,
    /// Fsync policy. [`SyncPolicy::Batched`] survives process kills with
    /// near-zero overhead; [`SyncPolicy::Always`] also survives power
    /// loss.
    pub sync: SyncPolicy,
    /// Segment roll threshold in bytes.
    pub segment_bytes: u64,
    /// Scripted write faults, for deterministic failure testing.
    pub faults: FaultSchedule,
}

impl WalConfig {
    /// Defaults at `dir`: batched fsync every 32 records, 8 MiB segments.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync: SyncPolicy::Batched { every: 32 },
            segment_bytes: 8 << 20,
            faults: FaultSchedule::none(),
        }
    }
}

/// One durable event. The encoding is a one-byte tag followed by
/// fixed-width little-endian fields — no self-description needed, the
/// tag is the schema version hook and unknown tags fail decoding loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableRecord {
    /// A process (re)opened the log; `run` disambiguates reservation ids
    /// across restarts.
    RunStart { run: u64 },
    /// One answered question: journaled before the cache fill.
    Answer {
        /// [`FINGERPRINT_VERSION`] at write time; replay skips others.
        version: u32,
        fp: PairFingerprint,
        label: MatchLabel,
        /// This answer's attributed share of its batch's settled cost.
        cost_micros: i64,
    },
    /// The governor granted a reservation.
    Reserve { run: u64, id: u64, micros: i64 },
    /// The reservation settled with actual spend.
    Settle {
        run: u64,
        id: u64,
        api_micros: i64,
        labeling_micros: i64,
        prompt_tokens: u64,
        completion_tokens: u64,
        api_calls: u64,
        pairs_labeled: u64,
    },
    /// The reservation was released without spend (abort or drop guard).
    Refund { run: u64, id: u64, micros: i64 },
    /// [`DurableRecord::Answer`] plus the shard that bought it. Replay
    /// treats both identically — recovery re-routes by fingerprint
    /// through the *current* router, so the stored shard is forensic
    /// (which partition wrote the record), not authoritative.
    AnswerSharded {
        /// [`FINGERPRINT_VERSION`] at write time; replay skips others.
        version: u32,
        fp: PairFingerprint,
        label: MatchLabel,
        /// This answer's attributed share of its batch's settled cost.
        cost_micros: i64,
        /// The shard that planned and executed the batch.
        shard: u32,
    },
}

const TAG_RUN_START: u8 = 0;
const TAG_ANSWER: u8 = 1;
const TAG_RESERVE: u8 = 2;
const TAG_SETTLE: u8 = 3;
const TAG_REFUND: u8 = 4;
const TAG_ANSWER_SHARDED: u8 = 5;

/// Encodes one record to its wire bytes.
pub fn encode(record: &DurableRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match *record {
        DurableRecord::RunStart { run } => {
            out.push(TAG_RUN_START);
            out.extend_from_slice(&run.to_le_bytes());
        }
        DurableRecord::Answer { version, fp, label, cost_micros } => {
            out.push(TAG_ANSWER);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&fp.0.to_le_bytes());
            out.push(label.is_match() as u8);
            out.extend_from_slice(&cost_micros.to_le_bytes());
        }
        DurableRecord::Reserve { run, id, micros } => {
            out.push(TAG_RESERVE);
            out.extend_from_slice(&run.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&micros.to_le_bytes());
        }
        DurableRecord::Settle {
            run,
            id,
            api_micros,
            labeling_micros,
            prompt_tokens,
            completion_tokens,
            api_calls,
            pairs_labeled,
        } => {
            out.push(TAG_SETTLE);
            out.extend_from_slice(&run.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&api_micros.to_le_bytes());
            out.extend_from_slice(&labeling_micros.to_le_bytes());
            out.extend_from_slice(&prompt_tokens.to_le_bytes());
            out.extend_from_slice(&completion_tokens.to_le_bytes());
            out.extend_from_slice(&api_calls.to_le_bytes());
            out.extend_from_slice(&pairs_labeled.to_le_bytes());
        }
        DurableRecord::Refund { run, id, micros } => {
            out.push(TAG_REFUND);
            out.extend_from_slice(&run.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&micros.to_le_bytes());
        }
        DurableRecord::AnswerSharded { version, fp, label, cost_micros, shard } => {
            out.push(TAG_ANSWER_SHARDED);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&fp.0.to_le_bytes());
            out.push(label.is_match() as u8);
            out.extend_from_slice(&cost_micros.to_le_bytes());
            out.extend_from_slice(&shard.to_le_bytes());
        }
    }
    out
}

/// Decodes one record from its wire bytes.
pub fn decode(bytes: &[u8]) -> Result<DurableRecord, String> {
    fn u64_at(b: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
    }
    fn i64_at(b: &[u8], at: usize) -> i64 {
        i64::from_le_bytes(b[at..at + 8].try_into().unwrap())
    }
    let (&tag, body) = bytes.split_first().ok_or("empty record")?;
    let want = |n: usize| -> Result<(), String> {
        if body.len() == n {
            Ok(())
        } else {
            Err(format!(
                "tag {tag}: expected {n} body bytes, got {}",
                body.len()
            ))
        }
    };
    match tag {
        TAG_RUN_START => {
            want(8)?;
            Ok(DurableRecord::RunStart { run: u64_at(body, 0) })
        }
        TAG_ANSWER => {
            want(4 + 8 + 1 + 8)?;
            Ok(DurableRecord::Answer {
                version: u32::from_le_bytes(body[0..4].try_into().unwrap()),
                fp: PairFingerprint(u64_at(body, 4)),
                label: MatchLabel::from_bool(body[12] != 0),
                cost_micros: i64_at(body, 13),
            })
        }
        TAG_RESERVE => {
            want(24)?;
            Ok(DurableRecord::Reserve {
                run: u64_at(body, 0),
                id: u64_at(body, 8),
                micros: i64_at(body, 16),
            })
        }
        TAG_SETTLE => {
            want(64)?;
            Ok(DurableRecord::Settle {
                run: u64_at(body, 0),
                id: u64_at(body, 8),
                api_micros: i64_at(body, 16),
                labeling_micros: i64_at(body, 24),
                prompt_tokens: u64_at(body, 32),
                completion_tokens: u64_at(body, 40),
                api_calls: u64_at(body, 48),
                pairs_labeled: u64_at(body, 56),
            })
        }
        TAG_REFUND => {
            want(24)?;
            Ok(DurableRecord::Refund {
                run: u64_at(body, 0),
                id: u64_at(body, 8),
                micros: i64_at(body, 16),
            })
        }
        TAG_ANSWER_SHARDED => {
            want(4 + 8 + 1 + 8 + 4)?;
            Ok(DurableRecord::AnswerSharded {
                version: u32::from_le_bytes(body[0..4].try_into().unwrap()),
                fp: PairFingerprint(u64_at(body, 4)),
                label: MatchLabel::from_bool(body[12] != 0),
                cost_micros: i64_at(body, 13),
                shard: u32::from_le_bytes(body[21..25].try_into().unwrap()),
            })
        }
        other => Err(format!("unknown record tag {other}")),
    }
}

/// What replaying the log reconstructed, plus its health accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid WAL records decoded and applied.
    pub records_replayed: u64,
    /// Torn-tail bytes physically truncated on open.
    pub truncated_bytes: u64,
    /// Whether a torn tail was found.
    pub torn_tail: bool,
    /// Segment files found.
    pub segments: u64,
    /// Distinct fingerprints restored into the cache.
    pub answers_restored: u64,
    /// Answer records skipped for carrying a stale fingerprint version.
    pub answers_stale: u64,
    /// Total settled spend reconstructed from settle records.
    pub settled: CostLedger,
    /// Reserves with no settle or refund — evidence of a crash
    /// mid-dispatch; their budget is treated as refunded.
    pub open_reservations: u64,
    /// Settles or refunds with no matching reserve (must be zero: the
    /// log is written reserve-first).
    pub unmatched_settlements: u64,
    /// Records that failed to decode (must be zero: framing already
    /// CRC-checks payloads).
    pub undecodable: u64,
    /// Prior runs recorded in the log.
    pub runs: u64,
}

impl RecoveryReport {
    /// The conservation violations `er_service_stress` would flag,
    /// checked against the replayed state: spend within budget, no
    /// settlement without a reservation, nothing undecodable. Empty
    /// means the log is consistent.
    pub fn conservation_violations(&self, budget: Money) -> Vec<String> {
        let mut violations = Vec::new();
        if self.settled.total() > budget {
            violations.push(format!(
                "replayed spend {} exceeds budget {budget}",
                self.settled.total()
            ));
        }
        if self.unmatched_settlements > 0 {
            violations.push(format!(
                "{} settlements without a matching reserve",
                self.unmatched_settlements
            ));
        }
        if self.undecodable > 0 {
            violations.push(format!("{} undecodable records", self.undecodable));
        }
        violations
    }
}

/// The state [`replay`] hands back to the service.
#[derive(Debug)]
pub struct Replay {
    pub report: RecoveryReport,
    /// Restored cache content: one `(fingerprint, label)` per distinct
    /// current-version fingerprint, last answer winning.
    pub answers: Vec<(PairFingerprint, MatchLabel)>,
    /// The run id the reopened process should stamp on its records.
    pub next_run: u64,
}

/// Opens the log at `config.dir` and replays every record. Pure replay:
/// nothing is appended, gauges are not touched — [`DurableLog::open`]
/// layers those on top.
pub fn replay(config: &WalConfig) -> Result<(Wal, Replay), WalError> {
    let options = WalOptions {
        segment_bytes: config.segment_bytes,
        sync: config.sync,
        faults: config.faults.clone(),
    };
    let mut report = RecoveryReport::default();
    let mut answers: std::collections::HashMap<PairFingerprint, MatchLabel> =
        std::collections::HashMap::new();
    // Insertion order of first sight, so restored cache fill is stable.
    let mut order: Vec<PairFingerprint> = Vec::new();
    let mut open: std::collections::HashMap<(u64, u64), i64> = std::collections::HashMap::new();
    let mut max_run = 0u64;

    let (wal, stats): (Wal, RecoveryStats) = Wal::open(&config.dir, options, |payload| {
        let record = match decode(payload) {
            Ok(r) => r,
            Err(_) => {
                report.undecodable += 1;
                return;
            }
        };
        report.records_replayed += 1;
        match record {
            DurableRecord::RunStart { run } => {
                report.runs += 1;
                max_run = max_run.max(run);
            }
            // Both answer shapes replay identically; the sharded record's
            // shard id is forensic, not routing state (the service
            // re-routes every restored answer through its current
            // router, so restarts may change the shard count freely).
            DurableRecord::Answer { version, fp, label, .. }
            | DurableRecord::AnswerSharded { version, fp, label, .. } => {
                if version == FINGERPRINT_VERSION {
                    if answers.insert(fp, label).is_none() {
                        order.push(fp);
                    }
                } else {
                    report.answers_stale += 1;
                }
            }
            DurableRecord::Reserve { run, id, micros } => {
                open.insert((run, id), micros);
            }
            DurableRecord::Settle {
                run,
                id,
                api_micros,
                labeling_micros,
                prompt_tokens,
                completion_tokens,
                api_calls,
                pairs_labeled,
            } => {
                if open.remove(&(run, id)).is_none() {
                    report.unmatched_settlements += 1;
                }
                report.settled.api += Money::from_micros(api_micros);
                report.settled.labeling += Money::from_micros(labeling_micros);
                report.settled.prompt_tokens += TokenCount(prompt_tokens);
                report.settled.completion_tokens += TokenCount(completion_tokens);
                report.settled.api_calls += api_calls;
                report.settled.pairs_labeled += pairs_labeled;
            }
            DurableRecord::Refund { run, id, .. } => {
                if open.remove(&(run, id)).is_none() {
                    report.unmatched_settlements += 1;
                }
            }
        }
    })?;

    // The WAL already counts only whole valid frames; undecodable counts
    // frames whose payload is gibberish despite a valid CRC.
    report.truncated_bytes = stats.truncated_bytes;
    report.torn_tail = stats.torn_tail;
    report.segments = stats.segments;
    report.open_reservations = open.len() as u64;
    report.answers_restored = answers.len() as u64;

    let answers = order.into_iter().map(|fp| (fp, answers[&fp])).collect();
    Ok((wal, Replay { report, answers, next_run: max_run + 1 }))
}

/// The service's journaling handle: the opened log, this process's run
/// id, a reservation-id allocator, and append-failure accounting.
#[derive(Debug)]
pub struct DurableLog {
    wal: Wal,
    run: u64,
    next_reservation: AtomicU64,
    /// Set after any append failure; `/healthz` reports `degraded`.
    failed: AtomicBool,
    appends: Arc<Counter>,
    append_errors: Arc<Counter>,
}

impl DurableLog {
    /// Opens the log, replays it, stamps a [`DurableRecord::RunStart`],
    /// and records recovery gauges on `telemetry`. Returns the handle and
    /// the replayed state.
    pub fn open(
        config: &WalConfig,
        telemetry: &Telemetry,
    ) -> Result<(Arc<Self>, Replay), WalError> {
        let (wal, replayed) = replay(config)?;
        let log = Arc::new(Self {
            wal,
            run: replayed.next_run,
            next_reservation: AtomicU64::new(1),
            failed: AtomicBool::new(false),
            appends: Arc::clone(&telemetry.wal_appends),
            append_errors: Arc::clone(&telemetry.wal_append_errors),
        });
        let report = &replayed.report;
        telemetry
            .recovery_records
            .set(report.records_replayed as i64);
        telemetry
            .recovery_truncated_bytes
            .set(report.truncated_bytes as i64);
        telemetry
            .recovery_answers_restored
            .set(report.answers_restored as i64);
        telemetry
            .recovery_open_reservations
            .set(report.open_reservations as i64);
        log.append(&DurableRecord::RunStart { run: log.run });
        Ok((log, replayed))
    }

    /// This process's run id.
    pub fn run(&self) -> u64 {
        self.run
    }

    /// Allocates the next reservation id (unique within this run).
    pub fn next_reservation_id(&self) -> u64 {
        self.next_reservation.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends one record; failures degrade (counted + flagged), never
    /// propagate — the service keeps serving without durability.
    pub fn append(&self, record: &DurableRecord) {
        self.append_group(std::slice::from_ref(record));
    }

    /// Appends a group of records as one physical write/fsync.
    pub fn append_group(&self, records: &[DurableRecord]) {
        if records.is_empty() {
            return;
        }
        let encoded: Vec<Vec<u8>> = records.iter().map(encode).collect();
        match self.wal.append_all(encoded.iter().map(Vec::as_slice)) {
            Ok(_) => self.appends.add(records.len() as u64),
            Err(e) => {
                self.append_errors.inc();
                self.failed.store(true, Ordering::Relaxed);
                eprintln!("er-service: wal append failed ({e}); serving without durability");
            }
        }
    }

    /// True after any append failure.
    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// The underlying log's write-path status.
    pub fn status(&self) -> WalStatus {
        self.wal.status()
    }

    /// Forces an fsync (used by tests and shutdown paths).
    pub fn sync(&self) -> Result<(), WalError> {
        self.wal.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: DurableRecord) {
        let bytes = encode(&record);
        assert_eq!(decode(&bytes).unwrap(), record);
    }

    #[test]
    fn every_record_shape_roundtrips() {
        roundtrip(DurableRecord::RunStart { run: 7 });
        roundtrip(DurableRecord::Answer {
            version: FINGERPRINT_VERSION,
            fp: PairFingerprint(0xdead_beef_cafe_f00d),
            label: MatchLabel::Matching,
            cost_micros: 1_234,
        });
        roundtrip(DurableRecord::Answer {
            version: 0,
            fp: PairFingerprint(1),
            label: MatchLabel::NonMatching,
            cost_micros: 0,
        });
        roundtrip(DurableRecord::Reserve { run: 1, id: 42, micros: 99_000 });
        roundtrip(DurableRecord::Settle {
            run: 1,
            id: 42,
            api_micros: 5_100,
            labeling_micros: 32_000,
            prompt_tokens: 900,
            completion_tokens: 120,
            api_calls: 2,
            pairs_labeled: 4,
        });
        roundtrip(DurableRecord::Refund { run: 1, id: 43, micros: 99_000 });
        roundtrip(DurableRecord::AnswerSharded {
            version: FINGERPRINT_VERSION,
            fp: PairFingerprint(0x1234_5678_9abc_def0),
            label: MatchLabel::Matching,
            cost_micros: 777,
            shard: 6,
        });
        roundtrip(DurableRecord::AnswerSharded {
            version: 0,
            fp: PairFingerprint(2),
            label: MatchLabel::NonMatching,
            cost_micros: 0,
            shard: 0,
        });
    }

    #[test]
    fn sharded_answers_replay_like_unsharded_ones() {
        let dir = std::env::temp_dir().join(format!(
            "er-durable-sharded-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = WalConfig::at(&dir);
        {
            let (wal, _) = replay(&config).unwrap();
            let history = [
                // A log mixing pre-shard and sharded answer records —
                // exactly what an upgraded service's directory contains.
                DurableRecord::Answer {
                    version: FINGERPRINT_VERSION,
                    fp: PairFingerprint(21),
                    label: MatchLabel::Matching,
                    cost_micros: 5,
                },
                DurableRecord::AnswerSharded {
                    version: FINGERPRINT_VERSION,
                    fp: PairFingerprint(22),
                    label: MatchLabel::NonMatching,
                    cost_micros: 5,
                    shard: 3,
                },
                // Sharded re-answer of the unsharded fingerprint: last
                // answer wins regardless of record shape.
                DurableRecord::AnswerSharded {
                    version: FINGERPRINT_VERSION,
                    fp: PairFingerprint(21),
                    label: MatchLabel::NonMatching,
                    cost_micros: 5,
                    shard: 1,
                },
                // Stale-version sharded answers are skipped like any
                // other stale answer.
                DurableRecord::AnswerSharded {
                    version: FINGERPRINT_VERSION + 1,
                    fp: PairFingerprint(23),
                    label: MatchLabel::Matching,
                    cost_micros: 5,
                    shard: 0,
                },
            ];
            for r in &history {
                wal.append(&encode(r)).unwrap();
            }
        }
        let (_wal, replayed) = replay(&config).unwrap();
        assert_eq!(replayed.report.answers_restored, 2);
        assert_eq!(replayed.report.answers_stale, 1);
        assert_eq!(
            replayed.answers,
            vec![
                (PairFingerprint(21), MatchLabel::NonMatching),
                (PairFingerprint(22), MatchLabel::NonMatching),
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_and_unknown_payloads_fail_loudly() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[TAG_SETTLE, 0, 0]).is_err());
        assert!(decode(&[99, 1, 2, 3]).is_err());
        let mut bytes = encode(&DurableRecord::RunStart { run: 1 });
        bytes.pop();
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn replay_rebuilds_cache_ledger_and_open_reservations() {
        let dir = std::env::temp_dir().join(format!(
            "er-durable-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = WalConfig::at(&dir);
        {
            let (wal, _) = replay(&config).unwrap();
            let history = [
                DurableRecord::RunStart { run: 1 },
                DurableRecord::Reserve { run: 1, id: 1, micros: 10_000 },
                DurableRecord::Settle {
                    run: 1,
                    id: 1,
                    api_micros: 4_000,
                    labeling_micros: 16_000,
                    prompt_tokens: 500,
                    completion_tokens: 60,
                    api_calls: 1,
                    pairs_labeled: 2,
                },
                DurableRecord::Answer {
                    version: FINGERPRINT_VERSION,
                    fp: PairFingerprint(11),
                    label: MatchLabel::NonMatching,
                    cost_micros: 2_000,
                },
                // Same fingerprint answered again: last one wins.
                DurableRecord::Answer {
                    version: FINGERPRINT_VERSION,
                    fp: PairFingerprint(11),
                    label: MatchLabel::Matching,
                    cost_micros: 2_000,
                },
                // Stale version: skipped.
                DurableRecord::Answer {
                    version: FINGERPRINT_VERSION + 1,
                    fp: PairFingerprint(12),
                    label: MatchLabel::Matching,
                    cost_micros: 9,
                },
                DurableRecord::Reserve { run: 1, id: 2, micros: 7_000 },
                DurableRecord::Refund { run: 1, id: 2, micros: 7_000 },
                // Crash evidence: reserved, never settled.
                DurableRecord::Reserve { run: 1, id: 3, micros: 5_000 },
            ];
            for r in &history {
                wal.append(&encode(r)).unwrap();
            }
        }
        let (_wal, replayed) = replay(&config).unwrap();
        let report = &replayed.report;
        assert_eq!(report.records_replayed, 9);
        assert_eq!(report.answers_restored, 1);
        assert_eq!(report.answers_stale, 1);
        assert_eq!(report.open_reservations, 1);
        assert_eq!(report.unmatched_settlements, 0);
        assert_eq!(report.runs, 1);
        assert_eq!(report.settled.total(), Money::from_micros(20_000));
        assert_eq!(report.settled.api_calls, 1);
        assert_eq!(
            replayed.answers,
            vec![(PairFingerprint(11), MatchLabel::Matching)]
        );
        assert_eq!(replayed.next_run, 2);
        assert!(report
            .conservation_violations(Money::from_micros(20_000))
            .is_empty());
        assert_eq!(
            report
                .conservation_violations(Money::from_micros(19_999))
                .len(),
            1
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
