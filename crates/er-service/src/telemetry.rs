//! The service's telemetry bundle: metric handles plus the lifecycle
//! trace log, wired once at startup and shared by every pipeline stage.
//!
//! Recording never takes the registry lock — handles are `Arc`'d atomics
//! (or per-thread histogram shards) folded only when `/metrics` renders.
//! With `ServiceConfig::telemetry` off every handle is a dark no-op, so
//! the serving bench can price the instrumentation itself.

use std::sync::Arc;

use obs::{Counter, Gauge, Histogram, Registry, Slo, SloStatus, TraceLog};

/// Latency objective: this fraction of answers must beat the configured
/// latency threshold ([`crate::ServiceConfig::slo_latency_us`]).
pub const SLO_LATENCY_OBJECTIVE: f64 = 0.95;
/// Availability objective: this fraction of answers must come from the
/// cache or the LLM, not the degraded logistic fallback.
pub const SLO_AVAILABILITY_OBJECTIVE: f64 = 0.99;
/// Budget objective: this fraction of batch reservations must be granted.
pub const SLO_BUDGET_OBJECTIVE: f64 = 0.90;

/// Every metric handle the service records into, plus the trace log.
///
/// Histogram families exposed at `/metrics` (all microseconds unless the
/// name says otherwise): queue wait, plan wall time (`kind` label —
/// full vs incremental), planner lock hold, per-call LLM latency,
/// governor reserve/settle, end-to-end answer latency (`source` label),
/// per-batch spend (micro-dollars) and prompt tokens.
#[derive(Debug)]
pub struct Telemetry {
    pub(crate) registry: Registry,
    pub(crate) trace: TraceLog,

    // Counters.
    pub(crate) submitted: Arc<Counter>,
    pub(crate) coalesced: Arc<Counter>,
    pub(crate) llm_answered: Arc<Counter>,
    pub(crate) fallback_answered: Arc<Counter>,
    pub(crate) batches_flushed: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) plans_full: Arc<Counter>,
    pub(crate) plans_incremental: Arc<Counter>,
    pub(crate) cache_hits: Arc<Counter>,
    pub(crate) cache_misses: Arc<Counter>,
    pub(crate) cache_evictions: Arc<Counter>,
    pub(crate) budget_denials: Arc<Counter>,
    pub(crate) governor_refunds: Arc<Counter>,
    pub(crate) wal_appends: Arc<Counter>,
    pub(crate) wal_append_errors: Arc<Counter>,
    pub(crate) breaker_trips: Arc<Counter>,
    pub(crate) breaker_short_circuits: Arc<Counter>,
    pub(crate) index_builds: Arc<Counter>,

    // Gauges.
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) cache_entries: Arc<Gauge>,
    pub(crate) governor_reserved_micros: Arc<Gauge>,
    pub(crate) plan_last_inserted: Arc<Gauge>,
    pub(crate) plan_last_retired: Arc<Gauge>,
    pub(crate) plan_last_us: Arc<Gauge>,
    pub(crate) breaker_state: Arc<Gauge>,
    pub(crate) slo_burn_milli: [Arc<Gauge>; 6],
    pub(crate) slo_fast_burn: [Arc<Gauge>; 3],
    pub(crate) recovery_records: Arc<Gauge>,
    pub(crate) recovery_truncated_bytes: Arc<Gauge>,
    pub(crate) recovery_answers_restored: Arc<Gauge>,
    pub(crate) recovery_open_reservations: Arc<Gauge>,
    pub(crate) index_pruned_bp: Arc<Gauge>,

    // Histograms.
    pub(crate) queue_wait_us: Arc<Histogram>,
    pub(crate) plan_full_us: Arc<Histogram>,
    pub(crate) plan_incremental_us: Arc<Histogram>,
    pub(crate) planner_lock_hold_us: Arc<Histogram>,
    pub(crate) llm_call_us: Arc<Histogram>,
    pub(crate) governor_reserve_us: Arc<Histogram>,
    pub(crate) governor_settle_us: Arc<Histogram>,
    pub(crate) answer_cache_us: Arc<Histogram>,
    pub(crate) answer_llm_us: Arc<Histogram>,
    pub(crate) answer_fallback_us: Arc<Histogram>,
    pub(crate) batch_spend_micros: Arc<Histogram>,
    pub(crate) batch_prompt_tokens: Arc<Histogram>,
    pub(crate) index_query_us: Arc<Histogram>,

    // SLO burn-rate engines (multi-window: 5m and 1h). Recording is
    // gated on the telemetry switch like every other handle.
    pub(crate) slo_latency: Slo,
    pub(crate) slo_availability: Slo,
    pub(crate) slo_budget: Slo,
}

impl Telemetry {
    /// Builds the bundle. Disabled mode registers the same families on a
    /// dark registry: every handle exists but records nothing.
    pub fn new(enabled: bool, trace_capacity: usize) -> Self {
        let registry = if enabled {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let trace = if enabled {
            TraceLog::new(trace_capacity)
        } else {
            TraceLog::disabled()
        };

        let submitted = registry.counter(
            "er_questions_submitted_total",
            "Questions submitted (including cache hits).",
            &[],
        );
        let coalesced = registry.counter(
            "er_coalesced_total",
            "Questions answered without their own LLM slot (duplicates, in-flight attaches, queue-time cache fills).",
            &[],
        );
        let llm_answered = registry.counter(
            "er_answered_total",
            "Questions answered, by decision source.",
            &[("source", "llm")],
        );
        let fallback_answered = registry.counter(
            "er_answered_total",
            "Questions answered, by decision source.",
            &[("source", "fallback")],
        );
        let batches_flushed = registry.counter(
            "er_batches_flushed_total",
            "Batches dispatched out of the coalescing queue.",
            &[],
        );
        let retries = registry.counter(
            "er_retries_total",
            "Executor retries (rate limits and malformed output).",
            &[],
        );
        let plans_full = registry.counter(
            "er_plans_total",
            "Planning passes, by planner path.",
            &[("kind", "full")],
        );
        let plans_incremental = registry.counter(
            "er_plans_total",
            "Planning passes, by planner path.",
            &[("kind", "incremental")],
        );
        let cache_hits = registry.counter(
            "er_cache_lookups_total",
            "Answer-cache lookups, by result.",
            &[("result", "hit")],
        );
        let cache_misses = registry.counter(
            "er_cache_lookups_total",
            "Answer-cache lookups, by result.",
            &[("result", "miss")],
        );
        let cache_evictions = registry.counter(
            "er_cache_evictions_total",
            "Answer-cache entries evicted by the LRU bound.",
            &[],
        );
        let budget_denials = registry.counter(
            "er_budget_denials_total",
            "Batch reservations denied by the cost governor.",
            &[],
        );
        let governor_refunds = registry.counter(
            "er_governor_refunds_total",
            "Reservations refunded without spend (aborts and drop guards).",
            &[],
        );
        let wal_appends = registry.counter(
            "er_wal_appends_total",
            "Records appended to the durable write-ahead log.",
            &[],
        );
        let wal_append_errors = registry.counter(
            "er_wal_append_errors_total",
            "WAL appends that failed (service degrades but keeps serving).",
            &[],
        );
        let breaker_trips = registry.counter(
            "er_breaker_trips_total",
            "Times the LLM circuit breaker opened.",
            &[],
        );
        let breaker_short_circuits = registry.counter(
            "er_breaker_short_circuits_total",
            "Batches routed to the fallback by an open circuit breaker.",
            &[],
        );
        let index_builds = registry.counter(
            "er_index_builds_total",
            "Metric-index builds (ε-graph, coverage, and top-k accelerators).",
            &[],
        );

        let queue_depth = registry.gauge(
            "er_queue_depth",
            "Questions currently waiting in the coalescing queue.",
            &[],
        );
        let cache_entries = registry.gauge(
            "er_cache_entries",
            "Entries currently held by the answer cache.",
            &[],
        );
        let governor_reserved_micros = registry.gauge(
            "er_governor_reserved_micros",
            "Budget committed to in-flight reservations, micro-dollars.",
            &[],
        );
        let plan_last_inserted = registry.gauge(
            "er_plan_last_inserted",
            "Questions inserted into the planner by the most recent pass.",
            &[],
        );
        let plan_last_retired = registry.gauge(
            "er_plan_last_retired",
            "Questions retired from the planner by the most recent pass.",
            &[],
        );
        let plan_last_us = registry.gauge(
            "er_plan_last_us",
            "Wall time of the most recent planning pass, microseconds.",
            &[],
        );
        let breaker_state = registry.gauge(
            "er_breaker_state",
            "LLM circuit breaker state: 0 closed, 1 open, 2 half-open.",
            &[],
        );
        let mut slo_burn_milli_vec = Vec::with_capacity(6);
        for slo_name in ["answer_latency", "availability", "budget"] {
            for window in ["5m", "1h"] {
                slo_burn_milli_vec.push(registry.gauge(
                    "er_slo_burn_rate_milli",
                    "SLO error-budget burn rate over the window, thousandths (1000 = burning exactly at budget).",
                    &[("slo", slo_name), ("window", window)],
                ));
            }
        }
        let slo_burn_milli: [Arc<Gauge>; 6] =
            slo_burn_milli_vec.try_into().expect("six burn gauges");
        let slo_fast_burn: [Arc<Gauge>; 3] =
            ["answer_latency", "availability", "budget"].map(|slo_name| {
                registry.gauge(
                    "er_slo_fast_burn",
                    "1 when both the 5m and 1h burn rates exceed the paging threshold.",
                    &[("slo", slo_name)],
                )
            });

        let recovery_records = registry.gauge(
            "er_recovery_records_replayed",
            "Durable records replayed at the last startup.",
            &[],
        );
        let recovery_truncated_bytes = registry.gauge(
            "er_recovery_truncated_bytes",
            "Torn-tail bytes truncated from the WAL at the last startup.",
            &[],
        );
        let recovery_answers_restored = registry.gauge(
            "er_recovery_answers_restored",
            "Distinct cached answers restored by recovery replay.",
            &[],
        );
        let recovery_open_reservations = registry.gauge(
            "er_recovery_open_reservations",
            "Reserves found without settle-or-refund at the last startup (crash evidence, treated as refunded).",
            &[],
        );
        let index_pruned_bp = registry.gauge(
            "er_index_candidates_pruned_bp",
            "Fraction of candidate comparisons the metric index eliminated via the triangle bound before any full distance computation, basis points (0-10000).",
            &[],
        );

        let queue_wait_us = registry.histogram(
            "er_queue_wait_us",
            "Time from submit to queue drain, microseconds.",
            &[],
        );
        let plan_full_us = registry.histogram(
            "er_plan_wall_us",
            "Planning pass wall time, microseconds, by planner path.",
            &[("kind", "full")],
        );
        let plan_incremental_us = registry.histogram(
            "er_plan_wall_us",
            "Planning pass wall time, microseconds, by planner path.",
            &[("kind", "incremental")],
        );
        let planner_lock_hold_us = registry.histogram(
            "er_planner_lock_hold_us",
            "Time the flush path holds the planner lock, microseconds.",
            &[],
        );
        let llm_call_us = registry.histogram(
            "er_llm_call_us",
            "Latency of one LLM API call (failed calls included), microseconds.",
            &[],
        );
        let governor_reserve_us = registry.histogram(
            "er_governor_reserve_us",
            "Cost-governor reservation latency, microseconds.",
            &[],
        );
        let governor_settle_us = registry.histogram(
            "er_governor_settle_us",
            "Cost-governor settlement latency, microseconds.",
            &[],
        );
        // Exemplar-armed: the top buckets carry the trace id of the last
        // sample that landed there, so a latency spike on a dashboard
        // links straight to its `/trace?id=` span tree.
        let answer_cache_us = registry.histogram_with_exemplars(
            "er_answer_us",
            "End-to-end submit-to-answer latency, microseconds, by source.",
            &[("source", "cache")],
        );
        let answer_llm_us = registry.histogram_with_exemplars(
            "er_answer_us",
            "End-to-end submit-to-answer latency, microseconds, by source.",
            &[("source", "llm")],
        );
        let answer_fallback_us = registry.histogram_with_exemplars(
            "er_answer_us",
            "End-to-end submit-to-answer latency, microseconds, by source.",
            &[("source", "fallback")],
        );
        let batch_spend_micros = registry.histogram(
            "er_batch_spend_micros",
            "Settled spend per executed batch, micro-dollars.",
            &[],
        );
        let batch_prompt_tokens = registry.histogram(
            "er_batch_prompt_tokens",
            "Prompt tokens sent per executed batch.",
            &[],
        );
        let index_query_us = registry.histogram(
            "er_index_query_us",
            "Mean metric-index query latency per planning pass (region, top-k, and pair-sweep queries folded), microseconds.",
            &[],
        );

        Self {
            registry,
            trace,
            submitted,
            coalesced,
            llm_answered,
            fallback_answered,
            batches_flushed,
            retries,
            plans_full,
            plans_incremental,
            cache_hits,
            cache_misses,
            cache_evictions,
            budget_denials,
            governor_refunds,
            wal_appends,
            wal_append_errors,
            breaker_trips,
            breaker_short_circuits,
            index_builds,
            queue_depth,
            cache_entries,
            governor_reserved_micros,
            plan_last_inserted,
            plan_last_retired,
            plan_last_us,
            breaker_state,
            slo_burn_milli,
            slo_fast_burn,
            recovery_records,
            recovery_truncated_bytes,
            recovery_answers_restored,
            recovery_open_reservations,
            index_pruned_bp,
            queue_wait_us,
            plan_full_us,
            plan_incremental_us,
            planner_lock_hold_us,
            llm_call_us,
            governor_reserve_us,
            governor_settle_us,
            answer_cache_us,
            answer_llm_us,
            answer_fallback_us,
            batch_spend_micros,
            batch_prompt_tokens,
            index_query_us,
            slo_latency: Slo::new("answer_latency", SLO_LATENCY_OBJECTIVE),
            slo_availability: Slo::new("availability", SLO_AVAILABILITY_OBJECTIVE),
            slo_budget: Slo::new("budget", SLO_BUDGET_OBJECTIVE),
        }
    }

    /// Registers one shard's metric handles: the `er_shard_*` families,
    /// labeled by shard index. Called once per shard at startup; the
    /// handles live on the shard and record lock-free like every other
    /// handle here.
    pub(crate) fn shard_handles(&self, shard: usize) -> ShardTelemetry {
        let idx = shard.to_string();
        let labels: [(&str, &str); 1] = [("shard", idx.as_str())];
        ShardTelemetry {
            queue_depth: self.registry.gauge(
                "er_shard_queue_depth",
                "Questions currently waiting in this shard's coalescing queue.",
                &labels,
            ),
            shed: self.registry.counter(
                "er_shard_shed_total",
                "Questions shed by this shard's admission bound.",
                &labels,
            ),
            lock_hold_us: self.registry.histogram(
                "er_shard_lock_hold_us",
                "Time the flush path holds this shard's planner lock, microseconds.",
                &labels,
            ),
        }
    }

    /// The three SLO engines paired with their names, in gauge order.
    fn slos(&self) -> [&Slo; 3] {
        [&self.slo_latency, &self.slo_availability, &self.slo_budget]
    }

    /// Evaluates every SLO and refreshes the burn-rate gauges. Called at
    /// render time so `/metrics` always scrapes current windows without a
    /// background thread.
    pub fn refresh_slo_gauges(&self) -> Vec<SloStatus> {
        let statuses: Vec<SloStatus> = self.slos().iter().map(|s| s.evaluate()).collect();
        for (i, status) in statuses.iter().enumerate() {
            self.slo_burn_milli[2 * i].set((status.short.burn_rate * 1000.0) as i64);
            self.slo_burn_milli[2 * i + 1].set((status.long.burn_rate * 1000.0) as i64);
            self.slo_fast_burn[i].set(i64::from(status.fast_burn));
        }
        statuses
    }

    /// Renders every metric family as Prometheus text, with the SLO
    /// gauges refreshed first.
    pub fn render_prometheus(&self) -> String {
        self.refresh_slo_gauges();
        self.registry.render_prometheus()
    }

    /// The `GET /slo` payload: every objective with both burn windows.
    pub fn slo_json(&self) -> String {
        let statuses = self.refresh_slo_gauges();
        let mut out = String::from("{\"slos\":[");
        for (i, (slo, status)) in self.slos().iter().zip(&statuses).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"objective\":{},\"short\":{},\"long\":{},\"fast_burn\":{}}}",
                slo.name(),
                status.objective,
                window_json(&status.short),
                window_json(&status.long),
                status.fast_burn
            ));
        }
        out.push_str("]}");
        out
    }

    /// True when any objective is in fast burn (both windows over the
    /// paging threshold) — the flight recorder's SLO trigger.
    pub fn any_fast_burn(&self) -> Option<&'static str> {
        const NAMES: [&str; 3] = ["answer_latency", "availability", "budget"];
        let statuses = self.refresh_slo_gauges();
        statuses.iter().position(|s| s.fast_burn).map(|i| NAMES[i])
    }

    /// The metric registry (render with
    /// [`Registry::render_prometheus`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-question lifecycle trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Whether recording is live (false = dark no-op mode).
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }
}

/// One shard's metric handles: the per-shard views of queue depth, shed
/// count and planner-lock hold time. The admission controller's signals.
#[derive(Debug)]
pub(crate) struct ShardTelemetry {
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) shed: Arc<Counter>,
    pub(crate) lock_hold_us: Arc<Histogram>,
}

fn window_json(w: &obs::WindowBurn) -> String {
    format!(
        "{{\"window_secs\":{},\"good\":{},\"bad\":{},\"burn_rate\":{:.3}}}",
        w.window_secs, w.good, w.bad, w.burn_rate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_bundle_renders_all_families() {
        let t = Telemetry::new(true, 16);
        t.submitted.inc();
        t.queue_wait_us.record(120);
        t.answer_llm_us.record(4_000);
        t.plan_incremental_us.record(90);
        t.index_builds.inc();
        t.index_pruned_bp.set(9_900);
        t.index_query_us.record(60);
        let text = t.registry().render_prometheus();
        for family in [
            "er_questions_submitted_total",
            "er_queue_wait_us",
            "er_answer_us",
            "er_plan_wall_us",
            "er_index_builds_total",
            "er_index_candidates_pruned_bp",
            "er_index_query_us",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        obs::lint(&text).expect("telemetry render is valid Prometheus text");
    }

    #[test]
    fn slo_gauges_and_json_render() {
        let t = Telemetry::new(true, 16);
        for _ in 0..20 {
            t.slo_latency.record(true);
            t.slo_availability.record(false); // 100% bad: fast burn
            t.slo_budget.record(true);
        }
        let text = t.render_prometheus();
        assert!(
            text.contains(r#"er_slo_burn_rate_milli{slo="answer_latency",window="5m"} 0"#),
            "{text}"
        );
        assert!(
            text.contains(r#"er_slo_fast_burn{slo="availability"} 1"#),
            "{text}"
        );
        obs::lint(&text).expect("slo gauges render as valid Prometheus text");

        let json = t.slo_json();
        assert!(json.contains(r#""name":"availability""#), "{json}");
        assert!(json.contains(r#""fast_burn":true"#), "{json}");
        assert_eq!(t.any_fast_burn(), Some("availability"));
    }

    #[test]
    fn answer_histograms_carry_exemplars() {
        let t = Telemetry::new(true, 16);
        t.answer_llm_us.record_with_exemplar(5_000, 91);
        let text = t.render_prometheus();
        assert!(text.contains(r#"# {trace_id="91"} 5000"#), "{text}");
        obs::lint(&text).expect("exemplar render is lint-clean");
    }

    #[test]
    fn disabled_bundle_is_dark() {
        let t = Telemetry::new(false, 16);
        t.submitted.inc();
        t.queue_wait_us.record(120);
        let id = t.trace().begin(1, "submitted");
        assert_eq!(id, 0);
        assert_eq!(t.submitted.get(), 0);
        assert!(!t.registry().is_enabled());
        // Families still render (zeroed) so scrapers need no mode branch.
        let text = t.registry().render_prometheus();
        assert!(text.contains("er_questions_submitted_total 0"), "{text}");
        assert_eq!(t.trace().opened(), 0);
    }
}
