//! The cost governor: a hard budget over a shared ledger, with
//! reserve-then-settle accounting so concurrent workers can never
//! collectively overshoot.
//!
//! Admission control happens **before** a batch is sent to the LLM:
//! a worker asks to reserve the batch's projected worst-case cost
//! (prompt tokens exactly known, completion and retries bounded). If the
//! reservation does not fit under the budget the batch is denied and the
//! service degrades to its local fallback matcher — requests still get
//! answers, they just stop costing money. Settling replaces the
//! reservation with the actual spend recorded by the executor.
//!
//! Every reserve/settle/refund is journaled to the durable log when one
//! is wired ([`CostGovernor::with_journal`]), settle written *before*
//! the in-memory merge so replayed spend can never under-count. Workers
//! hold reservations through a [`ReservationGuard`]: if the worker dies
//! between reserve and settle (panic, disconnect), the guard's drop
//! refunds the projection instead of stranding budget forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use er_core::{CostLedger, Money, SharedCostLedger};
use obs::{Counter, Gauge, Histogram};

use crate::durable::{DurableLog, DurableRecord};

/// Budget enforcement over a [`SharedCostLedger`].
#[derive(Debug)]
pub struct CostGovernor {
    ledger: SharedCostLedger,
    budget: Money,
    /// Committed-but-unsettled projections.
    reserved: Mutex<Money>,
    denials: Arc<Counter>,
    /// Reservations refunded without spend (aborts + drop guards).
    refunds: Arc<Counter>,
    /// Reservation / settlement latency (detached unless wired via
    /// [`CostGovernor::with_metrics`]).
    reserve_us: Arc<Histogram>,
    settle_us: Arc<Histogram>,
    /// Mirror of `reserved` in micro-dollars, for `/metrics`.
    reserved_gauge: Arc<Gauge>,
    /// Write-ahead journal for reserve/settle/refund events.
    journal: Option<Arc<DurableLog>>,
}

/// A granted budget reservation; must be settled exactly once.
#[derive(Debug)]
#[must_use = "an unsettled reservation permanently holds budget"]
pub struct Reservation {
    projected: Money,
    /// Journal id (unique within the log's run; 0 when unjournaled).
    id: u64,
}

impl CostGovernor {
    /// A governor enforcing `budget` over `ledger`. Metric handles start
    /// detached (recording, but not exported anywhere).
    pub fn new(ledger: SharedCostLedger, budget: Money) -> Self {
        Self {
            ledger,
            budget,
            reserved: Mutex::new(Money::ZERO),
            denials: Counter::detached(),
            refunds: Counter::detached(),
            reserve_us: Arc::new(Histogram::detached()),
            settle_us: Arc::new(Histogram::detached()),
            reserved_gauge: Gauge::detached(),
            journal: None,
        }
    }

    /// Swaps in registry-backed metric handles: the denial and refund
    /// counters, the reserve/settle latency histograms and the
    /// reserved-budget gauge.
    pub fn with_metrics(
        mut self,
        denials: Arc<Counter>,
        refunds: Arc<Counter>,
        reserve_us: Arc<Histogram>,
        settle_us: Arc<Histogram>,
        reserved_gauge: Arc<Gauge>,
    ) -> Self {
        self.denials = denials;
        self.refunds = refunds;
        self.reserve_us = reserve_us;
        self.settle_us = settle_us;
        self.reserved_gauge = reserved_gauge;
        self
    }

    /// Wires the durable journal: every grant, settlement and refund is
    /// appended to it from here on.
    pub fn with_journal(mut self, journal: Option<Arc<DurableLog>>) -> Self {
        self.journal = journal;
        self
    }

    /// The configured budget cap.
    pub fn budget(&self) -> Money {
        self.budget
    }

    /// The shared ledger this governor charges.
    pub fn ledger(&self) -> &SharedCostLedger {
        &self.ledger
    }

    /// Attempts to reserve `projected` spend; `None` means over budget.
    pub fn try_reserve(&self, projected: Money) -> Option<Reservation> {
        let _timer = self.reserve_us.start_timer();
        {
            let mut reserved = self.lock_reserved();
            let committed = self.ledger.total() + *reserved + projected;
            if committed > self.budget {
                drop(reserved);
                self.denials.inc();
                return None;
            }
            *reserved += projected;
            self.reserved_gauge.set(reserved.micros());
        }
        // Journaled after the grant, outside the lock: a crash between
        // grant and append loses nothing (no spend happened yet), and a
        // journaled reserve with no later settle replays as refunded.
        let id = match &self.journal {
            Some(journal) => {
                let id = journal.next_reservation_id();
                journal.append(&DurableRecord::Reserve {
                    run: journal.run(),
                    id,
                    micros: projected.micros(),
                });
                id
            }
            None => 0,
        };
        Some(Reservation { projected, id })
    }

    /// Like [`CostGovernor::try_reserve`], but the grant comes wrapped in
    /// a [`ReservationGuard`] that refunds on drop — the form workers use
    /// so a panic mid-dispatch cannot strand budget.
    pub fn try_reserve_guarded(&self, projected: Money) -> Option<ReservationGuard<'_>> {
        self.try_reserve(projected)
            .map(|reservation| ReservationGuard { governor: self, reservation: Some(reservation) })
    }

    /// Settles a reservation with the actual accounting of the executed
    /// batch (which must not exceed the projection — the projection is a
    /// worst-case bound by construction).
    pub fn settle(&self, reservation: Reservation, actual: &CostLedger) {
        let _timer = self.settle_us.start_timer();
        // Write-ahead: the spend already happened at the API call, so the
        // journal records it *before* the in-memory merge — a crash
        // in between replays the spend (correct) rather than losing it
        // (which would let the next run overshoot the budget).
        if let Some(journal) = &self.journal {
            journal.append(&DurableRecord::Settle {
                run: journal.run(),
                id: reservation.id,
                api_micros: actual.api.micros(),
                labeling_micros: actual.labeling.micros(),
                prompt_tokens: actual.prompt_tokens.get(),
                completion_tokens: actual.completion_tokens.get(),
                api_calls: actual.api_calls,
                pairs_labeled: actual.pairs_labeled,
            });
        }
        // The merge and the reservation release happen under the
        // `reserved` lock (the same lock `try_reserve` holds while it
        // reads the ledger), so no concurrent reservation can observe
        // the batch double-counted — as both actual spend and still-held
        // projection — and be spuriously denied.
        let mut reserved = self.lock_reserved();
        self.ledger.merge(actual);
        *reserved = *reserved - reservation.projected;
        self.reserved_gauge.set(reserved.micros());
    }

    /// Releases a reservation without any spend (batch aborted before the
    /// first API call).
    pub fn release(&self, reservation: Reservation) {
        if let Some(journal) = &self.journal {
            journal.append(&DurableRecord::Refund {
                run: journal.run(),
                id: reservation.id,
                micros: reservation.projected.micros(),
            });
        }
        let mut reserved = self.lock_reserved();
        *reserved = *reserved - reservation.projected;
        self.reserved_gauge.set(reserved.micros());
    }

    /// Like [`CostGovernor::try_reserve_guarded`], but the projection is
    /// drawn from a shard's [`ShardLease`] first, falling back to a
    /// global refill only when the lease runs dry — the sharded serving
    /// core's reserve path, which keeps the global `reserved` mutex off
    /// the per-batch critical path once leases are warm.
    ///
    /// With a zero-chunk lease this is byte-identical to
    /// [`CostGovernor::try_reserve_guarded`]: every batch reserves
    /// exactly its projection against the global pool, so quiesce-time
    /// conservation (`remaining + spent == budget`) holds without any
    /// lease return. A nonzero chunk trades that exactness for fewer
    /// global lock acquisitions; surplus must then be handed back via
    /// [`CostGovernor::return_lease`] before asserting conservation.
    pub fn try_reserve_leased(
        &self,
        lease: &ShardLease,
        projected: Money,
    ) -> Option<ReservationGuard<'_>> {
        if lease.chunk == Money::ZERO {
            return self.try_reserve_guarded(projected);
        }
        let _timer = self.reserve_us.start_timer();
        {
            let mut available = crate::sync::lock(&lease.available);
            if *available < projected {
                // Refill: move `max(chunk, shortfall)` — clamped to the
                // global headroom — from the unreserved pool into this
                // lease, under the same mutex `try_reserve` serializes
                // on, so concurrent refills can never jointly overshoot.
                let want = {
                    let shortfall = projected - *available;
                    if shortfall > lease.chunk {
                        shortfall
                    } else {
                        lease.chunk
                    }
                };
                let mut reserved = self.lock_reserved();
                let headroom = self.budget - self.ledger.total() - *reserved;
                let grant = if want <= headroom { want } else { headroom };
                if *available + grant < projected {
                    drop(reserved);
                    self.denials.inc();
                    return None;
                }
                *reserved += grant;
                self.reserved_gauge.set(reserved.micros());
                drop(reserved);
                *available += grant;
                lease.refills.fetch_add(1, Ordering::Relaxed);
            }
            *available = *available - projected;
        }
        // The batch-granularity journal record is identical to the
        // unleased path (lease refills are *not* journaled): replay sees
        // the same reserve/settle pairs either way, so the recovery
        // conservation rules need no shard awareness.
        let id = match &self.journal {
            Some(journal) => {
                let id = journal.next_reservation_id();
                journal.append(&DurableRecord::Reserve {
                    run: journal.run(),
                    id,
                    micros: projected.micros(),
                });
                id
            }
            None => 0,
        };
        Some(ReservationGuard { governor: self, reservation: Some(Reservation { projected, id }) })
    }

    /// Returns a lease's unconsumed budget to the global pool (shutdown
    /// and pre-conservation-assert paths for chunked leases; a no-op for
    /// zero-chunk leases, which never hold surplus).
    pub fn return_lease(&self, lease: &ShardLease) {
        let surplus = {
            let mut available = crate::sync::lock(&lease.available);
            std::mem::replace(&mut *available, Money::ZERO)
        };
        if surplus > Money::ZERO {
            let mut reserved = self.lock_reserved();
            *reserved = *reserved - surplus;
            self.reserved_gauge.set(reserved.micros());
        }
    }

    /// Budget not yet spent or reserved (floored at zero).
    pub fn remaining(&self) -> Money {
        let reserved = *self.lock_reserved();
        let left = self.budget - self.ledger.total() - reserved;
        if left < Money::ZERO {
            Money::ZERO
        } else {
            left
        }
    }

    /// Number of denied reservations so far.
    pub fn denials(&self) -> u64 {
        self.denials.get()
    }

    /// Number of reservations refunded without spend so far.
    pub fn refunds(&self) -> u64 {
        self.refunds.get()
    }

    fn lock_reserved(&self) -> std::sync::MutexGuard<'_, Money> {
        crate::sync::lock(&self.reserved)
    }
}

/// RAII holder of a granted reservation. Settling consumes it; dropping
/// it unsettled — the worker panicked or bailed between reserve and
/// settle — refunds the projection (journaled) so the budget can never
/// leak. Unwinding through the worker's `catch_unwind` runs this drop.
#[must_use = "dropping the guard immediately refunds the reservation"]
#[derive(Debug)]
pub struct ReservationGuard<'g> {
    governor: &'g CostGovernor,
    reservation: Option<Reservation>,
}

impl ReservationGuard<'_> {
    /// Settles the held reservation with the batch's actual spend.
    pub fn settle(mut self, actual: &CostLedger) {
        let reservation = self
            .reservation
            .take()
            .expect("a guard settles at most once");
        self.governor.settle(reservation, actual);
    }
}

impl Drop for ReservationGuard<'_> {
    fn drop(&mut self) {
        if let Some(reservation) = self.reservation.take() {
            self.governor.refunds.inc();
            self.governor.release(reservation);
        }
    }
}

/// One shard's slice of the budget: projections are drawn from
/// `available` without touching the global `reserved` mutex; when the
/// lease runs dry it refills `chunk` at a time from the governor
/// ([`CostGovernor::try_reserve_leased`]). Global conservation is
/// untouched — a lease's balance *is* reserved budget, tracked under the
/// governor's own mutex at refill time, so the invariant
/// `ledger + reserved + in-flight ≤ budget` holds across all shards.
///
/// A `chunk` of [`Money::ZERO`] (the default) disables local buffering
/// entirely: every reserve passes straight through to the governor and
/// the lease is a transparent alias for the unsharded behavior.
#[derive(Debug)]
pub struct ShardLease {
    /// Refilled-but-unconsumed budget (always zero for zero-chunk).
    available: Mutex<Money>,
    /// Refill granularity; `Money::ZERO` = pass-through.
    chunk: Money,
    /// Global refills taken, for `/stats` contention accounting.
    refills: AtomicU64,
}

impl ShardLease {
    /// A lease refilling `chunk` at a time ([`Money::ZERO`] =
    /// pass-through, the exact unsharded reserve path).
    pub fn new(chunk: Money) -> Self {
        Self { available: Mutex::new(Money::ZERO), chunk, refills: AtomicU64::new(0) }
    }

    /// Budget currently held by this lease.
    pub fn available(&self) -> Money {
        *crate::sync::lock(&self.available)
    }

    /// Global refills this lease has taken.
    pub fn refills(&self) -> u64 {
        self.refills.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::TokenCount;

    fn governor(budget_micros: i64) -> CostGovernor {
        CostGovernor::new(SharedCostLedger::new(), Money::from_micros(budget_micros))
    }

    fn spend(amount: i64) -> CostLedger {
        let mut l = CostLedger::new();
        l.record_api_call(TokenCount(10), TokenCount(2), Money::from_micros(amount));
        l
    }

    #[test]
    fn reserve_settle_cycle() {
        let g = governor(1_000);
        let r = g.try_reserve(Money::from_micros(600)).expect("fits");
        assert_eq!(g.remaining(), Money::from_micros(400));
        g.settle(r, &spend(500));
        assert_eq!(g.remaining(), Money::from_micros(500));
        assert_eq!(g.ledger().snapshot().api, Money::from_micros(500));
        assert_eq!(g.denials(), 0);
    }

    #[test]
    fn over_budget_reservations_denied() {
        let g = governor(1_000);
        let _held = g.try_reserve(Money::from_micros(900)).expect("fits");
        assert!(g.try_reserve(Money::from_micros(200)).is_none());
        assert_eq!(g.denials(), 1);
    }

    #[test]
    fn release_returns_budget() {
        let g = governor(1_000);
        let r = g.try_reserve(Money::from_micros(900)).expect("fits");
        g.release(r);
        assert!(g.try_reserve(Money::from_micros(1_000)).is_some());
    }

    #[test]
    fn concurrent_reservations_never_overshoot() {
        let g = std::sync::Arc::new(governor(10_000));
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let g = std::sync::Arc::clone(&g);
                scope.spawn(move || {
                    for _ in 0..50 {
                        if let Some(r) = g.try_reserve(Money::from_micros(100)) {
                            g.settle(r, &spend(100));
                        }
                    }
                });
            }
        });
        // Exactly 100 reservations of 100 micro-dollars fit under 10k.
        let total = g.ledger().total();
        assert!(total <= Money::from_micros(10_000), "overshot: {total}");
        assert_eq!(total, Money::from_micros(10_000));
        assert!(g.denials() > 0);
    }

    #[test]
    fn guard_drop_refunds_and_counts() {
        let g = governor(1_000);
        {
            let _guard = g
                .try_reserve_guarded(Money::from_micros(900))
                .expect("fits");
            assert_eq!(g.remaining(), Money::from_micros(100));
        } // dropped unsettled
        assert_eq!(g.remaining(), Money::from_micros(1_000));
        assert_eq!(g.refunds(), 1);
    }

    #[test]
    fn guard_settle_spends_without_refund() {
        let g = governor(1_000);
        let guard = g
            .try_reserve_guarded(Money::from_micros(600))
            .expect("fits");
        guard.settle(&spend(500));
        assert_eq!(g.remaining(), Money::from_micros(500));
        assert_eq!(g.refunds(), 0);
    }

    #[test]
    fn guard_survives_a_panic_unwind() {
        let g = governor(1_000);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = g
                .try_reserve_guarded(Money::from_micros(800))
                .expect("fits");
            panic!("worker dies mid-dispatch");
        }));
        assert!(result.is_err());
        assert_eq!(g.remaining(), Money::from_micros(1_000));
        assert_eq!(g.refunds(), 1);
    }

    #[test]
    fn remaining_floors_at_zero() {
        let g = governor(100);
        // Out-of-band spend pushes the ledger past the budget.
        g.ledger().merge(&spend(500));
        assert_eq!(g.remaining(), Money::ZERO);
    }

    #[test]
    fn zero_chunk_lease_is_passthrough() {
        let g = governor(1_000);
        let lease = ShardLease::new(Money::ZERO);
        let guard = g
            .try_reserve_leased(&lease, Money::from_micros(600))
            .expect("fits");
        assert_eq!(g.remaining(), Money::from_micros(400));
        assert_eq!(lease.available(), Money::ZERO);
        assert_eq!(lease.refills(), 0);
        guard.settle(&spend(500));
        assert_eq!(g.remaining(), Money::from_micros(500));
    }

    #[test]
    fn chunked_lease_refills_and_conserves() {
        let g = governor(10_000);
        let lease = ShardLease::new(Money::from_micros(1_000));
        // First reserve pulls a whole chunk; the surplus stays leased.
        let guard = g
            .try_reserve_leased(&lease, Money::from_micros(300))
            .expect("fits");
        assert_eq!(lease.available(), Money::from_micros(700));
        assert_eq!(lease.refills(), 1);
        // The chunk is globally reserved, so remaining reflects it all.
        assert_eq!(g.remaining(), Money::from_micros(9_000));
        guard.settle(&spend(250));
        // Settle releases the batch's projection back to the pool;
        // the lease keeps its surplus.
        assert_eq!(g.remaining(), Money::from_micros(9_050));
        // Second reserve is served lease-locally: no new refill.
        let guard2 = g
            .try_reserve_leased(&lease, Money::from_micros(500))
            .expect("fits");
        assert_eq!(lease.refills(), 1);
        assert_eq!(lease.available(), Money::from_micros(200));
        guard2.settle(&spend(500));
        // Returning the surplus restores exact conservation.
        g.return_lease(&lease);
        assert_eq!(lease.available(), Money::ZERO);
        assert_eq!(
            g.remaining() + g.ledger().total(),
            Money::from_micros(10_000)
        );
    }

    #[test]
    fn chunked_lease_denies_past_budget() {
        let g = governor(1_000);
        let lease = ShardLease::new(Money::from_micros(10_000));
        // The refill clamps to the headroom; a projection over it denies.
        assert!(g
            .try_reserve_leased(&lease, Money::from_micros(1_500))
            .is_none());
        assert_eq!(g.denials(), 1);
        assert_eq!(lease.available(), Money::ZERO);
        // A fitting projection drains the whole (clamped) headroom into
        // the lease.
        let guard = g
            .try_reserve_leased(&lease, Money::from_micros(400))
            .expect("fits");
        assert_eq!(lease.available(), Money::from_micros(600));
        assert_eq!(g.remaining(), Money::ZERO);
        drop(guard); // refunded
        g.return_lease(&lease);
        assert_eq!(g.remaining(), Money::from_micros(1_000));
    }

    #[test]
    fn concurrent_leases_never_overshoot_globally() {
        let g = std::sync::Arc::new(governor(10_000));
        let leases: Vec<ShardLease> = (0..4)
            .map(|_| ShardLease::new(Money::from_micros(500)))
            .collect();
        std::thread::scope(|scope| {
            for lease in &leases {
                let g = std::sync::Arc::clone(&g);
                scope.spawn(move || {
                    for _ in 0..100 {
                        if let Some(guard) = g.try_reserve_leased(lease, Money::from_micros(100)) {
                            guard.settle(&spend(100));
                        }
                    }
                });
            }
        });
        for lease in &leases {
            g.return_lease(lease);
        }
        let total = g.ledger().total();
        assert!(total <= Money::from_micros(10_000), "overshot: {total}");
        assert_eq!(
            g.remaining() + total,
            Money::from_micros(10_000),
            "lease surplus leaked"
        );
    }
}
