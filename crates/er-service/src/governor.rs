//! The cost governor: a hard budget over a shared ledger, with
//! reserve-then-settle accounting so concurrent workers can never
//! collectively overshoot.
//!
//! Admission control happens **before** a batch is sent to the LLM:
//! a worker asks to reserve the batch's projected worst-case cost
//! (prompt tokens exactly known, completion and retries bounded). If the
//! reservation does not fit under the budget the batch is denied and the
//! service degrades to its local fallback matcher — requests still get
//! answers, they just stop costing money. Settling replaces the
//! reservation with the actual spend recorded by the executor.
//!
//! Every reserve/settle/refund is journaled to the durable log when one
//! is wired ([`CostGovernor::with_journal`]), settle written *before*
//! the in-memory merge so replayed spend can never under-count. Workers
//! hold reservations through a [`ReservationGuard`]: if the worker dies
//! between reserve and settle (panic, disconnect), the guard's drop
//! refunds the projection instead of stranding budget forever.

use std::sync::{Arc, Mutex};

use er_core::{CostLedger, Money, SharedCostLedger};
use obs::{Counter, Gauge, Histogram};

use crate::durable::{DurableLog, DurableRecord};

/// Budget enforcement over a [`SharedCostLedger`].
#[derive(Debug)]
pub struct CostGovernor {
    ledger: SharedCostLedger,
    budget: Money,
    /// Committed-but-unsettled projections.
    reserved: Mutex<Money>,
    denials: Arc<Counter>,
    /// Reservations refunded without spend (aborts + drop guards).
    refunds: Arc<Counter>,
    /// Reservation / settlement latency (detached unless wired via
    /// [`CostGovernor::with_metrics`]).
    reserve_us: Arc<Histogram>,
    settle_us: Arc<Histogram>,
    /// Mirror of `reserved` in micro-dollars, for `/metrics`.
    reserved_gauge: Arc<Gauge>,
    /// Write-ahead journal for reserve/settle/refund events.
    journal: Option<Arc<DurableLog>>,
}

/// A granted budget reservation; must be settled exactly once.
#[derive(Debug)]
#[must_use = "an unsettled reservation permanently holds budget"]
pub struct Reservation {
    projected: Money,
    /// Journal id (unique within the log's run; 0 when unjournaled).
    id: u64,
}

impl CostGovernor {
    /// A governor enforcing `budget` over `ledger`. Metric handles start
    /// detached (recording, but not exported anywhere).
    pub fn new(ledger: SharedCostLedger, budget: Money) -> Self {
        Self {
            ledger,
            budget,
            reserved: Mutex::new(Money::ZERO),
            denials: Counter::detached(),
            refunds: Counter::detached(),
            reserve_us: Arc::new(Histogram::detached()),
            settle_us: Arc::new(Histogram::detached()),
            reserved_gauge: Gauge::detached(),
            journal: None,
        }
    }

    /// Swaps in registry-backed metric handles: the denial and refund
    /// counters, the reserve/settle latency histograms and the
    /// reserved-budget gauge.
    pub fn with_metrics(
        mut self,
        denials: Arc<Counter>,
        refunds: Arc<Counter>,
        reserve_us: Arc<Histogram>,
        settle_us: Arc<Histogram>,
        reserved_gauge: Arc<Gauge>,
    ) -> Self {
        self.denials = denials;
        self.refunds = refunds;
        self.reserve_us = reserve_us;
        self.settle_us = settle_us;
        self.reserved_gauge = reserved_gauge;
        self
    }

    /// Wires the durable journal: every grant, settlement and refund is
    /// appended to it from here on.
    pub fn with_journal(mut self, journal: Option<Arc<DurableLog>>) -> Self {
        self.journal = journal;
        self
    }

    /// The configured budget cap.
    pub fn budget(&self) -> Money {
        self.budget
    }

    /// The shared ledger this governor charges.
    pub fn ledger(&self) -> &SharedCostLedger {
        &self.ledger
    }

    /// Attempts to reserve `projected` spend; `None` means over budget.
    pub fn try_reserve(&self, projected: Money) -> Option<Reservation> {
        let _timer = self.reserve_us.start_timer();
        {
            let mut reserved = self.lock_reserved();
            let committed = self.ledger.total() + *reserved + projected;
            if committed > self.budget {
                drop(reserved);
                self.denials.inc();
                return None;
            }
            *reserved += projected;
            self.reserved_gauge.set(reserved.micros());
        }
        // Journaled after the grant, outside the lock: a crash between
        // grant and append loses nothing (no spend happened yet), and a
        // journaled reserve with no later settle replays as refunded.
        let id = match &self.journal {
            Some(journal) => {
                let id = journal.next_reservation_id();
                journal.append(&DurableRecord::Reserve {
                    run: journal.run(),
                    id,
                    micros: projected.micros(),
                });
                id
            }
            None => 0,
        };
        Some(Reservation { projected, id })
    }

    /// Like [`CostGovernor::try_reserve`], but the grant comes wrapped in
    /// a [`ReservationGuard`] that refunds on drop — the form workers use
    /// so a panic mid-dispatch cannot strand budget.
    pub fn try_reserve_guarded(&self, projected: Money) -> Option<ReservationGuard<'_>> {
        self.try_reserve(projected)
            .map(|reservation| ReservationGuard { governor: self, reservation: Some(reservation) })
    }

    /// Settles a reservation with the actual accounting of the executed
    /// batch (which must not exceed the projection — the projection is a
    /// worst-case bound by construction).
    pub fn settle(&self, reservation: Reservation, actual: &CostLedger) {
        let _timer = self.settle_us.start_timer();
        // Write-ahead: the spend already happened at the API call, so the
        // journal records it *before* the in-memory merge — a crash
        // in between replays the spend (correct) rather than losing it
        // (which would let the next run overshoot the budget).
        if let Some(journal) = &self.journal {
            journal.append(&DurableRecord::Settle {
                run: journal.run(),
                id: reservation.id,
                api_micros: actual.api.micros(),
                labeling_micros: actual.labeling.micros(),
                prompt_tokens: actual.prompt_tokens.get(),
                completion_tokens: actual.completion_tokens.get(),
                api_calls: actual.api_calls,
                pairs_labeled: actual.pairs_labeled,
            });
        }
        // The merge and the reservation release happen under the
        // `reserved` lock (the same lock `try_reserve` holds while it
        // reads the ledger), so no concurrent reservation can observe
        // the batch double-counted — as both actual spend and still-held
        // projection — and be spuriously denied.
        let mut reserved = self.lock_reserved();
        self.ledger.merge(actual);
        *reserved = *reserved - reservation.projected;
        self.reserved_gauge.set(reserved.micros());
    }

    /// Releases a reservation without any spend (batch aborted before the
    /// first API call).
    pub fn release(&self, reservation: Reservation) {
        if let Some(journal) = &self.journal {
            journal.append(&DurableRecord::Refund {
                run: journal.run(),
                id: reservation.id,
                micros: reservation.projected.micros(),
            });
        }
        let mut reserved = self.lock_reserved();
        *reserved = *reserved - reservation.projected;
        self.reserved_gauge.set(reserved.micros());
    }

    /// Budget not yet spent or reserved (floored at zero).
    pub fn remaining(&self) -> Money {
        let reserved = *self.lock_reserved();
        let left = self.budget - self.ledger.total() - reserved;
        if left < Money::ZERO {
            Money::ZERO
        } else {
            left
        }
    }

    /// Number of denied reservations so far.
    pub fn denials(&self) -> u64 {
        self.denials.get()
    }

    /// Number of reservations refunded without spend so far.
    pub fn refunds(&self) -> u64 {
        self.refunds.get()
    }

    fn lock_reserved(&self) -> std::sync::MutexGuard<'_, Money> {
        crate::sync::lock(&self.reserved)
    }
}

/// RAII holder of a granted reservation. Settling consumes it; dropping
/// it unsettled — the worker panicked or bailed between reserve and
/// settle — refunds the projection (journaled) so the budget can never
/// leak. Unwinding through the worker's `catch_unwind` runs this drop.
#[must_use = "dropping the guard immediately refunds the reservation"]
#[derive(Debug)]
pub struct ReservationGuard<'g> {
    governor: &'g CostGovernor,
    reservation: Option<Reservation>,
}

impl ReservationGuard<'_> {
    /// Settles the held reservation with the batch's actual spend.
    pub fn settle(mut self, actual: &CostLedger) {
        let reservation = self
            .reservation
            .take()
            .expect("a guard settles at most once");
        self.governor.settle(reservation, actual);
    }
}

impl Drop for ReservationGuard<'_> {
    fn drop(&mut self) {
        if let Some(reservation) = self.reservation.take() {
            self.governor.refunds.inc();
            self.governor.release(reservation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::TokenCount;

    fn governor(budget_micros: i64) -> CostGovernor {
        CostGovernor::new(SharedCostLedger::new(), Money::from_micros(budget_micros))
    }

    fn spend(amount: i64) -> CostLedger {
        let mut l = CostLedger::new();
        l.record_api_call(TokenCount(10), TokenCount(2), Money::from_micros(amount));
        l
    }

    #[test]
    fn reserve_settle_cycle() {
        let g = governor(1_000);
        let r = g.try_reserve(Money::from_micros(600)).expect("fits");
        assert_eq!(g.remaining(), Money::from_micros(400));
        g.settle(r, &spend(500));
        assert_eq!(g.remaining(), Money::from_micros(500));
        assert_eq!(g.ledger().snapshot().api, Money::from_micros(500));
        assert_eq!(g.denials(), 0);
    }

    #[test]
    fn over_budget_reservations_denied() {
        let g = governor(1_000);
        let _held = g.try_reserve(Money::from_micros(900)).expect("fits");
        assert!(g.try_reserve(Money::from_micros(200)).is_none());
        assert_eq!(g.denials(), 1);
    }

    #[test]
    fn release_returns_budget() {
        let g = governor(1_000);
        let r = g.try_reserve(Money::from_micros(900)).expect("fits");
        g.release(r);
        assert!(g.try_reserve(Money::from_micros(1_000)).is_some());
    }

    #[test]
    fn concurrent_reservations_never_overshoot() {
        let g = std::sync::Arc::new(governor(10_000));
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let g = std::sync::Arc::clone(&g);
                scope.spawn(move || {
                    for _ in 0..50 {
                        if let Some(r) = g.try_reserve(Money::from_micros(100)) {
                            g.settle(r, &spend(100));
                        }
                    }
                });
            }
        });
        // Exactly 100 reservations of 100 micro-dollars fit under 10k.
        let total = g.ledger().total();
        assert!(total <= Money::from_micros(10_000), "overshot: {total}");
        assert_eq!(total, Money::from_micros(10_000));
        assert!(g.denials() > 0);
    }

    #[test]
    fn guard_drop_refunds_and_counts() {
        let g = governor(1_000);
        {
            let _guard = g
                .try_reserve_guarded(Money::from_micros(900))
                .expect("fits");
            assert_eq!(g.remaining(), Money::from_micros(100));
        } // dropped unsettled
        assert_eq!(g.remaining(), Money::from_micros(1_000));
        assert_eq!(g.refunds(), 1);
    }

    #[test]
    fn guard_settle_spends_without_refund() {
        let g = governor(1_000);
        let guard = g
            .try_reserve_guarded(Money::from_micros(600))
            .expect("fits");
        guard.settle(&spend(500));
        assert_eq!(g.remaining(), Money::from_micros(500));
        assert_eq!(g.refunds(), 0);
    }

    #[test]
    fn guard_survives_a_panic_unwind() {
        let g = governor(1_000);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = g
                .try_reserve_guarded(Money::from_micros(800))
                .expect("fits");
            panic!("worker dies mid-dispatch");
        }));
        assert!(result.is_err());
        assert_eq!(g.remaining(), Money::from_micros(1_000));
        assert_eq!(g.refunds(), 1);
    }

    #[test]
    fn remaining_floors_at_zero() {
        let g = governor(100);
        // Out-of-band spend pushes the ledger past the budget.
        g.ledger().merge(&spend(500));
        assert_eq!(g.remaining(), Money::ZERO);
    }
}
