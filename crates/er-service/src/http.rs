//! HTTP front end for the matching service.
//!
//! Built on the same request/response plumbing and bounded accept loop as
//! the LLM loopback service (`llm_service::http` / `llm_service::serve`):
//!
//! * `POST /match` — body `{"schema": [...], "left": [...], "right": [...]}`;
//!   answers `{"label": "matching"|"non_matching", "source":
//!   "cache"|"llm"|"fallback", "fingerprint": "<hex>", "trace_id": n}`.
//!   When the owning shard's admission queue is full the request is shed
//!   with `429` + a JSON error body and a `Retry-After` header (seconds)
//!   instead of queueing without bound.
//! * `GET /stats` — the [`ServiceStats`] snapshot as JSON.
//! * `GET /metrics` — Prometheus text exposition of every metric family.
//! * `GET /trace?n=K` — the `K` most recent completed lifecycle spans as
//!   JSON, newest first (default 32, clamped to the ring capacity).
//! * `GET /trace?id=N` — the assembled cross-service span tree for one
//!   trace: the local span plus the llm-service child spans the
//!   propagated traceparent produced (or a `shared_llm_trace` reference
//!   for coalesced duplicates). `404` for unknown ids, `400` for
//!   unparsable ones.
//! * `GET /slo` — every objective's multi-window burn-rate status.
//! * `GET /debug/bundle` — the flight recorder's debug bundle, assembled
//!   on demand (the same document anomaly triggers dump to disk).
//! * `GET /healthz` — readiness + durability: WAL health and last-fsync
//!   age, circuit-breaker state, and startup-recovery counters (the
//!   [`crate::stats::HealthReport`] payload).

use std::sync::Arc;

use er_core::{EntityPair, MatchLabel, PairId, Record, RecordId, Schema};
use llm_service::http::{HttpRequest, HttpResponse};
use llm_service::serve::{spawn_http_server, HttpServerHandle, ServeOptions};
use serde::{Deserialize, Serialize};

use crate::service::{ErService, MatchDecision};
use crate::shard::SubmitOutcome;
use crate::stats::ServiceStats;

/// `POST /match` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchRequestWire {
    /// Attribute names shared by both records.
    pub schema: Vec<String>,
    /// Left record's values, aligned with `schema`.
    pub left: Vec<String>,
    /// Right record's values, aligned with `schema`.
    pub right: Vec<String>,
}

/// `POST /match` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchResponseWire {
    /// `"matching"` or `"non_matching"`.
    pub label: String,
    /// `"cache"`, `"llm"` or `"fallback"`.
    pub source: String,
    /// Canonical question fingerprint (hex), for client-side dedup.
    pub fingerprint: String,
    /// Lifecycle span id for `/trace` correlation (0 = tracing off).
    #[serde(default)]
    pub trace_id: u64,
}

/// Error body shared with the LLM service's wire dialect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorWire {
    /// Human-readable message.
    pub error: String,
}

impl MatchResponseWire {
    fn from_decision(decision: &MatchDecision) -> Self {
        Self {
            label: match decision.label {
                MatchLabel::Matching => "matching".to_owned(),
                MatchLabel::NonMatching => "non_matching".to_owned(),
            },
            source: decision.source.name().to_owned(),
            fingerprint: decision.fingerprint.to_string(),
            trace_id: decision.trace_id,
        }
    }
}

/// Converts a wire request into an [`EntityPair`].
pub fn wire_to_pair(wire: &MatchRequestWire) -> Result<EntityPair, String> {
    let schema =
        Arc::new(Schema::new(wire.schema.iter().cloned()).map_err(|e| format!("bad schema: {e}"))?);
    let left = Record::new(RecordId::a(0), Arc::clone(&schema), wire.left.clone())
        .map_err(|e| format!("bad left record: {e}"))?;
    let right = Record::new(RecordId::b(0), Arc::clone(&schema), wire.right.clone())
        .map_err(|e| format!("bad right record: {e}"))?;
    EntityPair::new(PairId(0), Arc::new(left), Arc::new(right))
        .map_err(|e| format!("bad pair: {e}"))
}

/// A running HTTP front end; dropping it stops the listener (the
/// underlying [`ErService`] keeps running until its own handle drops).
#[derive(Debug)]
pub struct MatchServer {
    server: HttpServerHandle,
}

impl MatchServer {
    /// Binds `127.0.0.1:0` and serves `service` with the given
    /// connection-pool limits.
    pub fn start(service: Arc<ErService>, options: ServeOptions) -> std::io::Result<Self> {
        let server = spawn_http_server(
            Arc::new(move |request: HttpRequest| route(&service, request)),
            options,
        )?;
        Ok(Self { server })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }
}

fn route(service: &ErService, request: HttpRequest) -> HttpResponse {
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("POST", "/match") => {
            let wire: MatchRequestWire = match serde_json::from_slice(&request.body) {
                Ok(w) => w,
                Err(e) => return error(400, &format!("invalid JSON body: {e}")),
            };
            let pair = match wire_to_pair(&wire) {
                Ok(p) => p,
                Err(message) => return error(400, &message),
            };
            match service.try_submit(&pair) {
                SubmitOutcome::Decided(decision) => {
                    json(200, &MatchResponseWire::from_decision(&decision))
                }
                SubmitOutcome::Shed { retry_after_ms } => {
                    let retry_secs = retry_after_ms.div_ceil(1000).max(1);
                    error(429, "shard queue full; retry later")
                        .with_header("Retry-After", retry_secs.to_string())
                }
            }
        }
        ("GET", "/stats") => {
            let stats: ServiceStats = service.stats();
            json(200, &stats)
        }
        ("GET", "/metrics") => HttpResponse::text(200, service.render_metrics().into_bytes()),
        ("GET", "/trace") => {
            // `?id=` assembles one cross-service span tree; `?n=` lists
            // recent spans. Unparsable values are client errors, not
            // silent defaults.
            if let Some(raw) = query_param(query, "id") {
                return match raw.parse::<u64>() {
                    Ok(id) => match service.trace_tree_json(id) {
                        Some(body) => HttpResponse::json(200, body.into_bytes()),
                        None => error(404, &format!("no retained span with trace id {id}")),
                    },
                    Err(_) => error(400, "trace id must be a decimal u64"),
                };
            }
            match query_param(query, "n").map(|v| v.parse::<usize>()) {
                None => HttpResponse::json(200, service.trace_json(32).into_bytes()),
                Some(Ok(n)) => HttpResponse::json(200, service.trace_json(n).into_bytes()),
                Some(Err(_)) => error(400, "trace count must be a non-negative integer"),
            }
        }
        ("GET", "/slo") => HttpResponse::json(200, service.slo_json().into_bytes()),
        ("GET", "/debug/bundle") => {
            HttpResponse::json(200, service.debug_bundle_json("on_demand").into_bytes())
        }
        ("GET", "/healthz") => json(200, &service.health()),
        ("GET", _) | ("POST", _) => error(404, &format!("no such route: {}", request.path)),
        _ => error(405, "method not allowed"),
    }
}

/// First value of `name` in a raw query string (`a=1&b=2`).
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

fn json<T: Serialize>(status: u16, value: &T) -> HttpResponse {
    HttpResponse::json(
        status,
        serde_json::to_vec(value).expect("wire types serialize"),
    )
}

fn error(status: u16, message: &str) -> HttpResponse {
    json(status, &ErrorWire { error: message.to_owned() })
}
