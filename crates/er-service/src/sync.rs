//! Poison-ignoring lock helpers shared across the crate.
//!
//! The service's invariants are all "counters and maps stay usable", not
//! "no observer sees a half-applied update across a panic", so a panic
//! while holding a lock should pass the lock on (parking_lot semantics)
//! rather than poison every later request. Centralized here so the
//! policy lives in one place.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, ignoring poisoning.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
