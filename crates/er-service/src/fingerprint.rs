//! Canonical pair fingerprints for answer caching and coalescing.
//!
//! Two requests ask "the same question" when their records carry the same
//! normalized content, regardless of attribute casing/punctuation noise
//! and of which record arrives on which side. The fingerprint therefore
//! hashes the [`text_sim::normalize`]d serialization of each record and
//! combines the two half-hashes **symmetrically**, so `(a, b)` and
//! `(b, a)` collide on purpose.

use er_core::{serialize_record, EntityPair};
use text_sim::normalize;

/// Version of the fingerprinting scheme, stamped on every durable answer
/// record. Bump it whenever [`pair_fingerprint`]'s inputs change meaning
/// — the normalization rules, the record serialization, or the hash
/// mixing — so recovery replay skips answers keyed under the old scheme
/// instead of silently serving them for different questions.
pub const FINGERPRINT_VERSION: u32 = 1;

/// A 64-bit canonical fingerprint of an entity pair question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairFingerprint(pub u64);

impl std::fmt::Display for PairFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Fingerprints a pair: normalization-stable and symmetric in the two
/// records.
pub fn pair_fingerprint(pair: &EntityPair) -> PairFingerprint {
    let ha = fnv1a(normalize(&serialize_record(pair.a())).as_bytes());
    let hb = fnv1a(normalize(&serialize_record(pair.b())).as_bytes());
    // Sort the half-hashes before mixing: order independence without the
    // collision-prone xor of equal halves (xor would send every self-pair
    // to 0).
    let (lo, hi) = if ha <= hb { (ha, hb) } else { (hb, ha) };
    PairFingerprint(mix(lo, hi))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn mix(lo: u64, hi: u64) -> u64 {
    let mut z = lo ^ hi.rotate_left(31);
    z = z.wrapping_add(hi.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{PairId, Record, RecordId, Schema};
    use std::sync::Arc;

    fn pair(left: &[&str], right: &[&str]) -> EntityPair {
        let schema = Arc::new(Schema::new((0..left.len()).map(|i| format!("attr{i}"))).unwrap());
        let a = Arc::new(
            Record::new(
                RecordId::a(0),
                Arc::clone(&schema),
                left.iter().map(|s| s.to_string()).collect(),
            )
            .unwrap(),
        );
        let b = Arc::new(
            Record::new(
                RecordId::b(0),
                Arc::clone(&schema),
                right.iter().map(|s| s.to_string()).collect(),
            )
            .unwrap(),
        );
        EntityPair::new(PairId(0), a, b).unwrap()
    }

    #[test]
    fn symmetric_in_record_order() {
        let fwd = pair(&["iPhone 13", "Apple"], &["Galaxy S21", "Samsung"]);
        let rev = pair(&["Galaxy S21", "Samsung"], &["iPhone 13", "Apple"]);
        assert_eq!(pair_fingerprint(&fwd), pair_fingerprint(&rev));
    }

    #[test]
    fn normalization_stable() {
        let noisy = pair(&["iPhone-13 (128GB)!"], &["Galaxy, S21"]);
        let clean = pair(&["iphone 13 128gb"], &["galaxy s21"]);
        assert_eq!(pair_fingerprint(&noisy), pair_fingerprint(&clean));
    }

    #[test]
    fn distinct_content_distinct_fingerprints() {
        let a = pair(&["iphone 13"], &["galaxy s21"]);
        let b = pair(&["iphone 13"], &["galaxy s22"]);
        let c = pair(&["iphone 12"], &["galaxy s21"]);
        assert_ne!(pair_fingerprint(&a), pair_fingerprint(&b));
        assert_ne!(pair_fingerprint(&a), pair_fingerprint(&c));
    }

    #[test]
    fn self_pairs_do_not_collapse_to_zero() {
        let same = pair(&["acoustic guitar"], &["acoustic guitar"]);
        let other_same = pair(&["drum kit"], &["drum kit"]);
        assert_ne!(pair_fingerprint(&same).0, 0);
        assert_ne!(pair_fingerprint(&same), pair_fingerprint(&other_same));
    }

    #[test]
    fn display_is_hex() {
        let fp = pair_fingerprint(&pair(&["x"], &["y"]));
        assert_eq!(fp.to_string().len(), 16);
    }
}
