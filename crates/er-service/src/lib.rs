//! # er-service — online entity matching, cost-effectively
//!
//! The BatchER framework (`batcher_core`) proves that batching questions
//! and reusing demonstrations makes LLM-based entity resolution cheap —
//! but only exercises it in offline, one-shot experiment runs. This crate
//! is the serving layer that turns those batch economics into a system
//! serving many concurrent clients, each asking individual "are these two
//! records the same entity?" questions:
//!
//! * **Coalescing queue** ([`service`]) — in-flight questions buffer
//!   until `batch_size` accumulate or a deadline expires, then flush as
//!   diversity batches planned by the paper's own machinery
//!   ([`batcher_core::plan_question_batches`]). Concurrent traffic gets
//!   batch prompting automatically; nobody waits longer than the flush
//!   deadline.
//! * **Answer cache** ([`cache`]) — keyed by a canonical, symmetric,
//!   normalization-stable pair fingerprint ([`fingerprint`]); repeated
//!   and mirrored questions never pay for a second LLM call. Bounded by
//!   an exact LRU with counted evictions.
//! * **Fingerprint sharding + admission control** ([`shard`]) — the
//!   serving core splits into `ServiceConfig::shards` independent
//!   partitions (own queue, planner, cache slice, governor lease) routed
//!   by the answer fingerprint; bounded per-shard queues shed overload
//!   (`try_submit` → 429 + `Retry-After` at the HTTP front end) instead
//!   of growing without bound.
//! * **Cost governor** ([`governor`]) — worst-case cost of every batch is
//!   reserved against a hard budget *before* the call; when the budget
//!   runs out the service degrades to an offline-trained logistic matcher
//!   (`baselines::logistic`) instead of failing.
//! * **Worker pool + HTTP front end** ([`http`]) — batches execute
//!   concurrently over any [`llm::ChatApi`]; the front end (`POST
//!   /match`, `GET /stats`, `GET /metrics`, `GET /trace`, `GET
//!   /healthz`) runs on the same bounded accept loop as the LLM loopback
//!   service (`llm_service::serve`).
//! * **Telemetry** ([`telemetry`]) — histogram-backed metrics (queue
//!   wait, plan wall time, LLM call latency, end-to-end answer latency,
//!   spend per batch) rendered as Prometheus text at `/metrics` with
//!   per-bucket trace exemplars on the answer histograms, plus a
//!   per-question lifecycle trace log served at `/trace`. Traces
//!   propagate across the LLM socket as `traceparent` headers, so
//!   `GET /trace?id=` assembles the cross-service span tree. Recording
//!   is lock-free; a scraper can never stall `submit`.
//! * **SLOs + flight recorder** ([`telemetry`], [`flight`]) — burn-rate
//!   evaluation of three objectives (answer latency, availability,
//!   budget) over 5m/1h windows at `GET /slo` and as gauges; anomalies
//!   (breaker open, WAL degraded, recovery violation, SLO fast burn)
//!   dump bounded flight-recorder debug bundles to disk and on demand
//!   at `GET /debug/bundle`.
//! * **Durable tier** ([`durable`]) — an embedded write-ahead log
//!   (`wal`) journals every answer and governor reserve/settle/refund
//!   event; startup replay rebuilds the cache and spend ledger so a
//!   restarted service re-buys **zero** settled answers. Enabled by
//!   setting [`ServiceConfig::wal`].
//! * **Failure hardening** — RAII reservation guards refund budget when
//!   a worker dies mid-batch ([`governor::ReservationGuard`]), and a
//!   circuit breaker ([`breaker`]) degrades to the logistic fallback
//!   during LLM outages instead of burning retries per batch. `GET
//!   /healthz` reports durability and breaker state.
//!
//! ```no_run
//! use std::sync::Arc;
//! use er_service::{ErService, ServiceConfig};
//!
//! let dataset = datagen::generate(datagen::DatasetKind::Beer, 42);
//! let api = Arc::new(llm::SimLlm::new());
//! let service = ErService::start(
//!     api,
//!     dataset.pairs()[..100].to_vec(),
//!     ServiceConfig::default(),
//! );
//! let decision = service.submit(&dataset.pairs()[100].pair);
//! println!("{:?} via {:?}", decision.label, decision.source);
//! println!("spent {} of {}", service.stats().spend(), service.stats().budget());
//! ```

pub mod breaker;
pub mod cache;
pub mod durable;
pub mod fingerprint;
pub mod flight;
pub mod governor;
pub mod http;
pub mod service;
pub mod shard;
pub mod stats;
mod sync;
pub mod telemetry;

pub use breaker::Breaker;
pub use cache::AnswerCache;
pub use durable::{DurableLog, DurableRecord, RecoveryReport, Replay, WalConfig};
pub use fingerprint::{pair_fingerprint, PairFingerprint, FINGERPRINT_VERSION};
pub use flight::FlightRecorder;
pub use governor::{CostGovernor, Reservation, ReservationGuard, ShardLease};
pub use http::{MatchRequestWire, MatchResponseWire, MatchServer};
pub use service::{DecisionSource, ErService, MatchDecision, ServiceConfig};
pub use shard::{ShardRouter, SubmitOutcome};
pub use stats::{HealthReport, ServiceStats};
pub use telemetry::Telemetry;
pub use wal::{FaultSchedule, SyncPolicy, WalFault};
