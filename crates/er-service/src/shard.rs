//! Fingerprint sharding: the router that partitions the serving core.
//!
//! One coalescing queue and one planner lock are the scalability ceiling
//! of the unsharded service: every flush serializes behind one mutex, so
//! lock hold time — not CPU — bounds throughput, and a burst on any pair
//! backs up every other pair. The [`ShardRouter`] splits the service into
//! `N` independent shards keyed by the *symmetric answer fingerprint*
//! ([`crate::fingerprint::pair_fingerprint`]): the same canonical hash
//! the answer cache dedupes on, so a question, its mirrored twin, and
//! every later duplicate all land on the same shard and keep the
//! exactly-once answer guarantees without any cross-shard coordination.
//!
//! Each shard owns its own coalescing queue, epoch-tracked incremental
//! planner, answer-cache partition and governor lease; only the cost
//! ledger, the LLM worker pool and the durable log stay global. Routing
//! is a mask over the fingerprint's low bits — `N` must be a power of
//! two so the mask is exact and resharding across restarts is a pure
//! re-partition (durable replay re-routes every recovered answer through
//! the *current* router, so a log written under 8 shards restores
//! cleanly into 2, and vice versa).

use crate::fingerprint::PairFingerprint;

/// Maps fingerprints to shard indices. Cheap to copy; the mask is the
/// whole state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    mask: u64,
}

impl ShardRouter {
    /// A router over `shards` partitions.
    ///
    /// # Panics
    /// Panics unless `shards` is a nonzero power of two — a configuration
    /// bug, not a runtime condition (the mask routing below is only
    /// uniform for exact powers of two).
    pub fn new(shards: usize) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count must be a nonzero power of two, got {shards}"
        );
        Self { mask: shards as u64 - 1 }
    }

    /// Number of shards this router partitions into.
    pub fn shards(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// The shard owning `fp`. Symmetric by construction: the fingerprint
    /// is already canonical over `(a,b)`/`(b,a)`, so mirrored questions
    /// route identically.
    pub fn route(&self, fp: PairFingerprint) -> usize {
        (fp.0 & self.mask) as usize
    }
}

/// Outcome of a non-blocking admission attempt ([`crate::ErService::try_submit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted and answered.
    Decided(crate::service::MatchDecision),
    /// Shed: the owning shard's queue was at capacity. The caller should
    /// retry after roughly `retry_after_ms` (one flush deadline — the
    /// time for the queue to drain a generation).
    Shed {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_stable_and_in_range() {
        let router = ShardRouter::new(8);
        assert_eq!(router.shards(), 8);
        for i in 0..1_000u64 {
            let fp = PairFingerprint(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let shard = router.route(fp);
            assert!(shard < 8);
            assert_eq!(shard, router.route(fp), "routing must be pure");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        for i in 0..64u64 {
            assert_eq!(router.route(PairFingerprint(i)), 0);
        }
    }

    #[test]
    fn low_bits_spread_across_shards() {
        let router = ShardRouter::new(4);
        let mut seen = [false; 4];
        for i in 0..16u64 {
            seen[router.route(PairFingerprint(i))] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "mask routing must cover all shards"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        let _ = ShardRouter::new(6);
    }

    #[test]
    fn resharding_is_a_pure_repartition() {
        // A fingerprint's 2-shard route is its 8-shard route modulo 2:
        // restart under a different power-of-two count re-partitions
        // cleanly (what durable replay relies on).
        let eight = ShardRouter::new(8);
        let two = ShardRouter::new(2);
        for i in 0..256u64 {
            let fp = PairFingerprint(i.wrapping_mul(0x517c_c1b7_2722_0a95));
            assert_eq!(eight.route(fp) % 2, two.route(fp));
        }
    }
}
